//! The secure channel run end-to-end over the *lossy simulated radio*:
//! handshake messages and records travel as frames with retries, exactly
//! as a deployment would run them.

use silvasec::prelude::*;

/// Transmits `payload` from `src` to `dst` with up to `retries` attempts;
/// returns the delivered bytes (from the receiver's inbox) if any attempt
/// got through.
fn send_with_retries(
    medium: &mut Medium,
    src: NodeId,
    dst: NodeId,
    payload: Vec<u8>,
    retries: u32,
    now: SimTime,
) -> Option<Vec<u8>> {
    for attempt in 0..retries {
        let frame = Frame::data(src, dst, payload.clone()).with_seq(u64::from(attempt));
        let outcome = medium.transmit(src, frame, now);
        if outcome.delivered {
            let rx = medium.drain_inbox(dst);
            return rx.into_iter().next_back().map(|r| r.frame.payload);
        }
    }
    None
}

fn pki_fixture() -> (HandshakePolicy, Identity, Identity) {
    let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 1_000_000));
    let store = TrustStore::with_roots([root.certificate().clone()]);
    let make = |id: &str, role, seed: u8, root: &mut CertificateAuthority| {
        let key = silvasec::crypto::schnorr::SigningKey::from_seed(&[seed; 32]);
        let cert = root.issue_mut(
            &Subject::new(id, role),
            &key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 500_000),
        );
        Identity::new(vec![cert], key)
    };
    let fw = make("forwarder-01", ComponentRole::Forwarder, 2, &mut root);
    let bs = make("base-01", ComponentRole::BaseStation, 3, &mut root);
    (HandshakePolicy::new(store, 100), fw, bs)
}

#[test]
fn handshake_and_records_over_lossy_link() {
    let (policy, fw, bs) = pki_fixture();
    let mut medium = Medium::new(MediumConfig::default(), SimRng::from_seed(9));
    // A 180 m link: lossy but workable with retries.
    let node_fw = medium.add_node(Vec3::new(0.0, 0.0, 3.0));
    let node_bs = medium.add_node(Vec3::new(180.0, 0.0, 6.0));
    let now = SimTime::ZERO;

    // Handshake over the air.
    let (init, hello) = Initiator::start(fw, [10u8; 32], [11u8; 32]);
    let hello_rx = send_with_retries(&mut medium, node_fw, node_bs, hello, 20, now)
        .expect("hello never arrived");
    let (resp, reply) =
        Responder::respond(bs, &policy, &hello_rx, [12u8; 32], [13u8; 32]).expect("respond");
    let reply_rx = send_with_retries(&mut medium, node_bs, node_fw, reply, 20, now)
        .expect("reply never arrived");
    let (mut fw_session, finished) = init.finish(&policy, &reply_rx).expect("finish");
    let finished_rx = send_with_retries(&mut medium, node_fw, node_bs, finished, 20, now)
        .expect("finished never arrived");
    let mut bs_session = resp.complete(&finished_rx).expect("complete");

    // Authenticated records over the same link, with per-record retries.
    let mut delivered = 0;
    for i in 0..50u32 {
        let msg = format!("telemetry {i}");
        let record = fw_session.seal(msg.as_bytes()).expect("seal");
        if let Some(rx) = send_with_retries(&mut medium, node_fw, node_bs, record, 10, now) {
            let plain = bs_session.open(&rx).expect("authentic record");
            assert_eq!(plain, msg.as_bytes());
            delivered += 1;
        }
    }
    assert!(delivered >= 45, "only {delivered}/50 records made it");
}

#[test]
fn attacker_cannot_impersonate_over_radio() {
    let (policy, fw, _bs) = pki_fixture();
    // An attacker with a self-signed certificate answers the hello.
    let mut rogue_root =
        CertificateAuthority::new_root("rogue", &[9u8; 32], Validity::new(0, 1_000_000));
    let rogue_key = silvasec::crypto::schnorr::SigningKey::from_seed(&[8u8; 32]);
    let rogue_cert = rogue_root.issue_mut(
        &Subject::new("base-01", ComponentRole::BaseStation), // even the right name!
        &rogue_key.verifying_key(),
        KeyUsage::AUTHENTICATION,
        Validity::new(0, 500_000),
    );
    let rogue = Identity::new(vec![rogue_cert], rogue_key);

    let (init, hello) = Initiator::start(fw, [10u8; 32], [11u8; 32]);
    // A real attacker skips validation entirely; emulate that with a
    // permissive policy (trusting every root it has seen) so the rogue
    // can produce a reply at all.
    let mut permissive_store = TrustStore::with_roots([rogue_root.certificate().clone()]);
    {
        // The rogue also "trusts" the genuine worksite root — it does not
        // care who it talks to.
        let genuine_root =
            CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 1_000_000));
        permissive_store
            .add_root(genuine_root.certificate().clone())
            .unwrap();
    }
    let rogue_policy = HandshakePolicy::new(permissive_store, 100);
    let (_, reply) = Responder::respond(rogue, &rogue_policy, &hello, [12u8; 32], [13u8; 32])
        .expect("rogue answers");
    // The forwarder rejects: the rogue's chain does not anchor in the
    // worksite root.
    assert!(matches!(
        init.finish(&policy, &reply),
        Err(ChannelError::Pki(_))
    ));
}

#[test]
fn replayed_records_rejected_after_radio_duplication() {
    let (policy, fw, bs) = pki_fixture();
    let (init, hello) = Initiator::start(fw, [10u8; 32], [11u8; 32]);
    let (resp, reply) =
        Responder::respond(bs, &policy, &hello, [12u8; 32], [13u8; 32]).expect("respond");
    let (mut fw_session, finished) = init.finish(&policy, &reply).expect("finish");
    let mut bs_session = resp.complete(&finished).expect("complete");

    let record = fw_session.seal(b"drive to waypoint 7").expect("seal");
    assert!(bs_session.open(&record).is_ok());
    // The radio (or an attacker) duplicates the frame.
    assert!(matches!(
        bs_session.open(&record),
        Err(ChannelError::Replay)
    ));
}
