//! End-to-end incident response over the real fleet: a sustained
//! fleet-wide deauthentication flood correlates into a SIEM campaign,
//! the ops engine contains it (site quarantine, rollout halt), the
//! critical campaign run waits at its review gate, an approve drives
//! the deferred OTA remediation through the staged rollout machinery,
//! SIEM-quiet verification passes, and every run closes — with the
//! whole audit trail replaying byte-identically from the fleet's
//! security trace.

use silvasec::experiments::run_fleet_ops_scenario;
use silvasec::ops::{GateDecision, RunStore, Step, FLEET_SITE};
use silvasec::sim::time::SimDuration;

#[test]
fn campaign_is_contained_reviewed_remediated_and_verified_closed() {
    let mut fleet = run_fleet_ops_scenario(4, 11);

    // The flood correlated into a coordinated campaign...
    assert!(
        !fleet.siem().campaigns().is_empty(),
        "deauth flood must correlate into a campaign"
    );
    // ...whose reporting sites containment quarantined, so their
    // subsequent alerts were withheld from the SIEM.
    assert!(
        !fleet.quarantined_sites().is_empty(),
        "containment quarantines the reporting sites"
    );
    assert!(
        fleet.ops_withheld_alerts() > 0,
        "quarantined sites stop feeding the SIEM"
    );

    // The critical campaign run is blocked at its review gate; the
    // High-severity per-site runs auto-approved and parked their OTA
    // remediations for the driver.
    let reviews = fleet.ops_pending_reviews();
    assert!(!reviews.is_empty(), "campaign run awaits explicit review");
    for run in reviews {
        fleet.ops_review(run, GateDecision::Approve);
    }
    assert!(
        fleet.ops_pending_remediations() > 0,
        "approved runs queue OTA remediations"
    );

    // Remediate: every parked rollout runs to completion (clearing the
    // containment halt first), and verification re-checks the SIEM.
    let reports = fleet.run_ops_remediations();
    assert!(!reports.is_empty());
    assert!(
        reports.iter().all(|r| r.completed),
        "remediation rollouts must complete: {reports:?}"
    );
    assert!(fleet.installed_version(0) >= 2, "sites took the fix");

    // Drain the tail: runs opened by alerts near the end of the window
    // (or parked on a backoff redelivery) still need engine ticks, which
    // the fleet drives from its own clock. Keep the operator loop going
    // — review, remediate, advance — until the engine is idle.
    for _ in 0..20 {
        if fleet.ops().expect("ops enabled").idle() {
            break;
        }
        fleet.run(SimDuration::from_secs(10));
        for run in fleet.ops_pending_reviews() {
            fleet.ops_review(run, GateDecision::Approve);
        }
        if fleet.ops_pending_remediations() > 0 {
            fleet.run_ops_remediations();
        }
    }

    // Every opened run settled; the campaign run took the full arc
    // through containment, review, remediation and verification.
    let engine = fleet.ops().expect("ops enabled");
    let counters = engine.store().counters();
    assert!(counters.closed > 0, "verified closes: {counters:?}");
    assert_eq!(
        counters.settled(),
        counters.opened,
        "no runs left open: {counters:?}"
    );
    assert!(engine.idle());
    assert!(engine.queue_conserves());
    let campaign_run = engine
        .store()
        .runs()
        .find(|r| r.site == FLEET_SITE)
        .expect("fleet-scope campaign run recorded");
    assert_eq!(campaign_run.state, Step::Close);
    assert_eq!(
        campaign_run.gate,
        Some(("approve".to_string(), false)),
        "campaign gate decided by the explicit reviewer, not auto-policy"
    );
    assert!(
        campaign_run
            .transitions
            .iter()
            .any(|t| t.from == Step::Remediate && t.to == Step::Verify && t.ok),
        "remediation verified before close"
    );

    // The audit trail lands in the same fleet security trace as the
    // IDS/SIEM events, and rebuilds the run store byte-identically.
    let replayed = RunStore::replay_from_jsonl(&fleet.export_trace_jsonl()).expect("trace replays");
    assert_eq!(replayed.digest(), engine.store().digest());
    assert_eq!(engine.store().first_divergence(&replayed), None);
}

#[test]
fn rejected_review_escalates_instead_of_remediating() {
    let mut fleet = run_fleet_ops_scenario(4, 17);
    let reviews = fleet.ops_pending_reviews();
    assert!(!reviews.is_empty(), "campaign run awaits explicit review");
    let before = fleet.ops_pending_remediations();
    for run in &reviews {
        fleet.ops_review(*run, GateDecision::Reject);
    }
    assert_eq!(
        fleet.ops_pending_remediations(),
        before,
        "a rejected run must not queue remediation"
    );
    let engine = fleet.ops().expect("ops enabled");
    for run in reviews {
        let record = engine.store().run(run).expect("reviewed run recorded");
        assert_eq!(record.state, Step::Escalate);
        assert_eq!(record.gate, Some(("reject".to_string(), false)));
    }
    assert!(engine.store().counters().escalated >= 1);
}
