//! Fleet OTA rollout and fleet security operations, end to end.
//!
//! Small fleets (2–4 sites) keep these affordable in debug mode; the
//! 64-site scaling assertions live in the release-mode `exp10_fleet`
//! bench binary.

use serde::Serialize;
use silvasec::experiments::{fleet_config, run_fleet_rollout, FleetScenario};
use silvasec::fleet::Fleet;
use silvasec::prelude::*;

fn total_risk(fleet: &Fleet) -> u32 {
    fleet
        .risk()
        .report()
        .risks
        .iter()
        .map(|r| u32::from(r.risk.0))
        .sum()
}

#[test]
fn same_seed_fleet_traces_byte_identical() {
    let (report_a, trace_a) = run_fleet_rollout(3, 7, FleetScenario::Clean);
    let (report_b, trace_b) = run_fleet_rollout(3, 7, FleetScenario::Clean);
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "same seed must replay byte-identically");
    assert_eq!(
        serde_json::to_string(&report_a.serialize()).unwrap(),
        serde_json::to_string(&report_b.serialize()).unwrap()
    );
    // A different seed schedules differently (uplink ranges, chunk loss).
    let (_, trace_c) = run_fleet_rollout(3, 8, FleetScenario::Clean);
    assert_ne!(trace_a, trace_c, "different seeds must differ somewhere");
}

#[test]
fn clean_rollout_updates_every_site_and_lowers_risk() {
    let mut fleet = Fleet::new(fleet_config(3), 42);
    let baseline = total_risk(&fleet);

    // Field evidence first: a disclosed firmware vulnerability raises
    // fleet risk, which is what motivates the rollout.
    fleet.disclose_vulnerability("firmware-tampering");
    let disclosed = total_risk(&fleet);
    assert!(
        disclosed > baseline,
        "disclosure must raise fleet risk ({baseline} -> {disclosed})"
    );

    let report = fleet.run_rollout(2);
    assert!(report.completed, "{report:?}");
    assert_eq!(report.applied_sites, 3);
    assert_eq!(report.rejected_sites, 0);
    for site in 0..fleet.len() {
        assert_eq!(fleet.installed_version(site), 2);
    }

    // The completed rollout withdraws the escalation.
    let patched = total_risk(&fleet);
    assert!(
        patched < disclosed,
        "completed rollout must lower fleet risk ({disclosed} -> {patched})"
    );
}

#[test]
fn tampered_bundle_rejected_on_every_site() {
    let (report, _) = run_fleet_rollout(3, 42, FleetScenario::Tampered);
    assert_eq!(report.applied_sites, 0, "{report:?}");
    assert_eq!(report.rejected_sites, 3, "{report:?}");

    // No site moved off the baseline firmware.
    let mut fleet = Fleet::new(fleet_config(3), 42);
    if let Some(campaign) = FleetScenario::Tampered.campaign() {
        fleet.schedule_fleet_attack(campaign);
    }
    let _ = fleet.run_rollout(2);
    for site in 0..fleet.len() {
        assert_eq!(fleet.installed_version(site), 1);
    }
}

#[test]
fn downgrade_rejected_on_every_site() {
    let (report, _) = run_fleet_rollout(3, 42, FleetScenario::Downgrade);
    assert_eq!(report.applied_sites, 0, "{report:?}");
    assert_eq!(report.rejected_sites, 3, "{report:?}");
    assert_eq!(
        report.reject_reasons.get("downgrade"),
        Some(&3),
        "{report:?}"
    );
}

#[test]
fn device_anti_rollback_is_the_second_line_of_defence() {
    // Even if the bundle-level version check were bypassed, the secure
    // boot device itself refuses firmware older than what it has run.
    let mut fleet = Fleet::new(fleet_config(1), 42);
    let report = fleet.run_rollout(2);
    assert!(report.completed);
    assert_eq!(fleet.installed_version(0), 2);

    let old = &fleet.backend().published()[0];
    assert_eq!(old.manifest.version, 1);
    let err = old
        .verify(
            fleet.backend().trust_store(),
            fleet.now().as_millis(),
            silvasec::fleet::FLEET_COMPONENT,
            fleet.installed_version(0),
        )
        .unwrap_err();
    assert_eq!(err.reason(), "downgrade");
}

#[test]
fn poisoned_rollout_halts_after_canary_spike() {
    let (report, trace) = run_fleet_rollout(4, 42, FleetScenario::Poisoned);
    assert!(!report.completed, "{report:?}");
    assert_eq!(report.halted_at_wave, Some(0), "{report:?}");
    assert_eq!(
        report.applied_sites, 1,
        "only the canary may be exposed: {report:?}"
    );
    let detect_to_halt = report.detect_to_halt_ms.expect("halt carries timing");
    assert!(detect_to_halt < 30_000, "{detect_to_halt} ms");
    assert!(
        trace.contains("\"phase\":\"halt\"") || trace.contains("halt"),
        "the halt must be on the fleet security trace"
    );
}

#[test]
fn siem_correlates_same_class_across_sites() {
    let mut fleet = Fleet::new(fleet_config(3), 42);
    // The same deauth campaign hits every site: three local incidents
    // that the fleet SIEM must recognise as one coordinated campaign.
    fleet.schedule_fleet_attack(silvasec::experiments::campaign_for(
        AttackKind::DeauthFlood,
        SimTime::from_secs(5),
        SimDuration::from_secs(60),
    ));
    fleet.run(SimDuration::from_secs(90));
    assert!(
        !fleet.siem().campaigns().is_empty(),
        "3 sites reporting the same class within the window must correlate"
    );
    let campaign = &fleet.siem().campaigns()[0];
    assert_eq!(campaign.sites, 3);
    // The coordinated campaign and its risk escalation are both on the
    // fleet security trace.
    let trace = fleet.export_trace_jsonl();
    assert!(trace.contains("CampaignAlert"), "{trace}");
    assert!(trace.contains("RiskDelta"), "{trace}");
}
