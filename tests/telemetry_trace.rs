//! Trace-based integration tests: the flight recorder's security trace
//! must tell the attack → detection → risk-escalation story end to end,
//! and identically-seeded runs must export byte-identical JSON Lines.

use proptest::prelude::*;
use silvasec::experiments::{figure1_trace, run_worksite_traced};
use silvasec::prelude::*;
use silvasec::risk::catalog;
use silvasec::risk::continuous::ContinuousAssessment;
use silvasec::telemetry::first_divergence_jsonl;

/// The recorded security trace of an attacked run contains, in causal
/// order: the attack campaign starting, the matching IDS alert, and the
/// commanded response.
#[test]
fn trace_tells_the_attack_detection_story() {
    let (_metrics, trace) = run_worksite_traced(
        SecurityPosture::secure(),
        Some(AttackKind::RfJamming),
        21,
        SimDuration::from_secs(240),
    );

    let attack_seq = trace
        .iter()
        .find(|r| matches!(r.event, Event::AttackPhase { started: true, .. }))
        .map(|r| r.seq)
        .expect("attack phase recorded");
    let alert_seq = trace
        .iter()
        .find(|r| matches!(&r.event, Event::IdsAlert { class, .. } if class.as_str() == "jamming"))
        .map(|r| r.seq)
        .expect("jamming alert recorded");
    let response_seq = trace
        .iter()
        .find(|r| matches!(r.event, Event::Response { .. }))
        .map(|r| r.seq)
        .expect("response recorded");

    assert!(
        attack_seq < alert_seq,
        "attack ({attack_seq}) must precede its detection ({alert_seq})"
    );
    assert!(
        alert_seq <= response_seq,
        "detection ({alert_seq}) must precede the response ({response_seq})"
    );
}

/// Feeding the recorded trace into the continuous assessment escalates
/// the risk of the matching threat — the full attack → IDS alert →
/// risk-update loop, driven entirely by recorded events. Camera blinding
/// is used because its static feasibility is low (a targeted on-site
/// attack), so field evidence of it actually moves the risk ranking; the
/// IDS reports it as `sensor-blinding`, exercising the alert-class →
/// attack-class alias table.
#[test]
fn recorded_alerts_drive_continuous_risk() {
    let (_metrics, trace) = run_worksite_traced(
        SecurityPosture::secure(),
        Some(AttackKind::CameraBlinding),
        3,
        SimDuration::from_secs(240),
    );
    assert!(
        trace.iter().any(|r| matches!(
            &r.event,
            Event::IdsAlert { class, .. } if class.as_str() == "sensor-blinding"
        )),
        "blinding alert missing from trace"
    );
    let mut continuous = ContinuousAssessment::new(catalog::worksite_model());
    let blinding_risk = |ca: &ContinuousAssessment| {
        ca.report()
            .risks
            .iter()
            .find(|r| {
                catalog::worksite_model().threats.iter().any(|t| {
                    t.id == r.threat_id && t.attack_class.as_deref() == Some("camera-blinding")
                })
            })
            .map(|r| r.risk.0)
            .expect("camera-blinding threat in catalog")
    };
    let before = blinding_risk(&continuous);
    let mut changes = 0;
    for record in &trace {
        changes += continuous.ingest_record(record).len();
    }
    let after = blinding_risk(&continuous);
    assert!(changes > 0, "trace produced no risk changes");
    assert!(
        after > before,
        "recorded blinding alerts must escalate camera-blinding risk ({before} -> {after})"
    );
}

/// Same seed, same trace — to the byte. Different seeds diverge, and the
/// divergence reporter pinpoints where.
#[test]
fn figure1_traces_compare_clean_and_divergent() {
    let total = SimDuration::from_secs(180);
    let a = figure1_trace(SecurityPosture::secure(), 11, total);
    let b = figure1_trace(SecurityPosture::secure(), 11, total);
    assert!(!a.is_empty());
    assert_eq!(
        first_divergence_jsonl(&a, &b).unwrap(),
        None,
        "same-seed figure1 traces must be identical"
    );

    let c = figure1_trace(SecurityPosture::secure(), 12, total);
    let div = first_divergence_jsonl(&a, &c)
        .unwrap()
        .expect("different seeds must diverge somewhere");
    assert!(!div.field.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Byte-identical JSONL exports for identically-seeded runs, across
    /// seeds and attack classes.
    #[test]
    fn identical_seeds_export_identical_jsonl(seed in 1u64..500,
                                              attacked in any::<bool>()) {
        let attack = attacked.then_some(AttackKind::DeauthFlood);
        let total = SimDuration::from_secs(90);
        let export = |seed| {
            let (_m, trace) = run_worksite_traced(
                SecurityPosture::secure(), attack, seed, total);
            let mut out = String::new();
            for r in &trace {
                out.push_str(&serde_json::to_string(&r).unwrap());
                out.push('\n');
            }
            out
        };
        prop_assert_eq!(export(seed), export(seed));
    }
}
