//! Robustness fuzzing: every network-facing decoder must reject arbitrary
//! bytes gracefully — no panics, no unbounded allocation — because the
//! radio medium delivers whatever an attacker transmits.

use proptest::prelude::*;
use silvasec::channel::messages::{Finished, Hello, Reply};
use silvasec::crypto::edwards::EdwardsPoint;
use silvasec::crypto::schnorr::{Signature, VerifyingKey};
use silvasec::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn handshake_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Hello::decode(&bytes);
        let _ = Reply::decode(&bytes);
        let _ = Finished::decode(&bytes);
    }

    #[test]
    fn record_layer_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let keys = silvasec::channel::session::SessionKeys {
            send_key: [1u8; 32],
            recv_key: [2u8; 32],
        };
        let mut session = Session::new(keys, "peer".into());
        prop_assert!(session.open(&bytes).is_err(), "random bytes must never authenticate");
    }

    #[test]
    fn point_decoding_never_panics(bytes in any::<[u8; 64]>()) {
        let _ = EdwardsPoint::decode(&bytes);
        let _ = VerifyingKey::from_bytes(&bytes);
    }

    #[test]
    fn signature_parsing_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Signature::from_bytes(&bytes);
    }

    #[test]
    fn random_signatures_never_verify(
        seed in any::<[u8; 32]>(),
        sig_bytes in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Construct a structurally valid signature from a random point and
        // scalar; it must still fail verification.
        let sk = silvasec::crypto::schnorr::SigningKey::from_seed(&seed);
        let vk = sk.verifying_key();
        let r_point = EdwardsPoint::basepoint()
            .scalar_mul(&silvasec::crypto::scalar::Scalar::from_bytes_mod_order(&sig_bytes));
        let forged = Signature {
            r_bytes: r_point.encode(),
            s_bytes: silvasec::crypto::scalar::Scalar::from_bytes_mod_order(&sig_bytes).to_bytes(),
        };
        prop_assert!(vk.verify(&msg, &forged).is_err());
    }

}

proptest! {
    // A full PKI + handshake per case: keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn corrupted_handshake_replies_rejected(
        flip in any::<usize>(),
        bit in 0u8..8,
    ) {
        // A bit-flipped (but structurally plausible) reply must never
        // complete a handshake.
        let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 1_000));
        let store = TrustStore::with_roots([root.certificate().clone()]);
        let make = |id: &str, role, s: u8, root: &mut CertificateAuthority| {
            let key = silvasec::crypto::schnorr::SigningKey::from_seed(&[s; 32]);
            let cert = root.issue_mut(
                &Subject::new(id, role),
                &key.verifying_key(),
                KeyUsage::AUTHENTICATION,
                Validity::new(0, 500),
            );
            Identity::new(vec![cert], key)
        };
        let a = make("a", ComponentRole::Forwarder, 2, &mut root);
        let b = make("b", ComponentRole::BaseStation, 3, &mut root);
        let policy = HandshakePolicy::new(store, 100);
        let (init, hello) = Initiator::start(a, [4u8; 32], [5u8; 32]);
        let (_, reply) = Responder::respond(b, &policy, &hello, [6u8; 32], [7u8; 32]).unwrap();
        let mut bad = reply.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 1 << bit;
        prop_assert!(bad == reply || init.finish(&policy, &bad).is_err());
    }
}
