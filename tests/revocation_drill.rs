//! The revocation drill: a constituent of the system of systems is
//! compromised, its certificate is revoked, and the worksite must stop
//! trusting it — the SoS "evolutionary development" and "management
//! independence" concerns (paper Sec. IV-E) made operational.

use silvasec::prelude::*;
use silvasec::sos::pki_setup::WorksitePki;

struct Drill {
    pki: WorksitePki,
    drone: silvasec::sos::pki_setup::MachineCredentials,
    forwarder: silvasec::sos::pki_setup::MachineCredentials,
}

fn commission() -> Drill {
    let mut rng = SimRng::from_seed(77);
    let mut pki = WorksitePki::commission(&mut rng, 1_000_000);
    let drone = pki.commission_machine(
        "drone-01",
        ComponentRole::Drone,
        1,
        &mut rng,
        Validity::new(0, 500_000),
    );
    let forwarder = pki.commission_machine(
        "forwarder-01",
        ComponentRole::Forwarder,
        1,
        &mut rng,
        Validity::new(0, 500_000),
    );
    Drill {
        pki,
        drone,
        forwarder,
    }
}

fn handshake(
    policy: &HandshakePolicy,
    initiator: &Identity,
    responder: &Identity,
) -> Result<(), ChannelError> {
    let (init, hello) = Initiator::start(initiator.clone(), [1u8; 32], [2u8; 32]);
    let (resp, reply) =
        Responder::respond(responder.clone(), policy, &hello, [3u8; 32], [4u8; 32])?;
    let (_, finished) = init.finish(policy, &reply)?;
    let _ = resp.complete(&finished)?;
    Ok(())
}

#[test]
fn compromised_drone_is_evicted_by_revocation() {
    let mut drill = commission();
    let policy = HandshakePolicy::new(drill.pki.store.clone(), 1_000);

    // Before revocation the drone authenticates fine.
    assert!(handshake(&policy, &drill.drone.identity, &drill.forwarder.identity).is_ok());

    // The drone is found compromised at t=2000; the CA revokes serial 1
    // (the drone was the first machine commissioned).
    drill.pki.root.revoke(1, 2_000);
    let crl = drill.pki.root.sign_crl(2_100);

    let policy_after =
        HandshakePolicy::new(drill.pki.store.clone(), 3_000).with_crls(vec![crl.clone()]);

    // The drone can no longer open channels in either role.
    assert!(matches!(
        handshake(
            &policy_after,
            &drill.drone.identity,
            &drill.forwarder.identity
        ),
        Err(ChannelError::Pki(PkiError::Revoked { .. }))
    ));
    assert!(matches!(
        handshake(
            &policy_after,
            &drill.forwarder.identity,
            &drill.drone.identity
        ),
        Err(ChannelError::Pki(PkiError::Revoked { .. }))
    ));

    // The forwarder (serial 2) is unaffected: it still authenticates to a
    // freshly commissioned replacement drone.
    let mut rng = SimRng::from_seed(78);
    let replacement = drill.pki.commission_machine(
        "drone-02",
        ComponentRole::Drone,
        1,
        &mut rng,
        Validity::new(0, 500_000),
    );
    assert!(handshake(
        &policy_after,
        &drill.forwarder.identity,
        &replacement.identity
    )
    .is_ok());
}

#[test]
fn stale_crl_policy_forces_fresh_revocation_data() {
    // Table I's remote-location characteristic: machines offline for long
    // periods must not keep trusting ancient CRLs.
    let mut drill = commission();
    drill.pki.root.revoke(1, 2_000);
    let old_crl = drill.pki.root.sign_crl(2_100);

    let mut strict_store = drill.pki.store.clone();
    strict_store.set_max_crl_age(1_000);

    // At t=10_000 the CRL is 7_900 old — validation must refuse to
    // conclude anything from it.
    let policy = HandshakePolicy::new(strict_store, 10_000).with_crls(vec![old_crl]);
    assert!(matches!(
        handshake(&policy, &drill.forwarder.identity, &drill.drone.identity),
        Err(ChannelError::Pki(PkiError::BadCrl))
    ));

    // A fresh CRL restores decidability (and still rejects the drone).
    let fresh_crl = drill.pki.root.sign_crl(9_800);
    let mut strict_store = drill.pki.store.clone();
    strict_store.set_max_crl_age(1_000);
    let policy = HandshakePolicy::new(strict_store, 10_000).with_crls(vec![fresh_crl]);
    assert!(matches!(
        handshake(&policy, &drill.drone.identity, &drill.forwarder.identity),
        Err(ChannelError::Pki(PkiError::Revoked { .. }))
    ));
}
