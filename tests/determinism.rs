//! The architectural invariant of the whole simulator: identical seeds
//! give identical traces, across every subsystem and their composition.

use silvasec::experiments::{occlusion_point, run_worksite, standard_config};
use silvasec::prelude::*;

#[test]
fn worksite_runs_are_bit_identical() {
    let run = |seed: u64| {
        let m = run_worksite(
            SecurityPosture::secure(),
            Some(AttackKind::RfJamming),
            seed,
            SimDuration::from_secs(180),
        );
        (
            m.ticks,
            m.loads_delivered,
            m.distance_m.to_bits(),
            m.messages_delivered,
            m.danger_zone_ticks,
            m.alerts.clone(),
        )
    };
    assert_eq!(run(101), run(101));
}

#[test]
fn different_seeds_differ() {
    let a = run_worksite(
        SecurityPosture::secure(),
        None,
        1,
        SimDuration::from_secs(120),
    );
    let b = run_worksite(
        SecurityPosture::secure(),
        None,
        2,
        SimDuration::from_secs(120),
    );
    // At least one observable differs (positions, channel noise, walks).
    assert!(
        a.distance_m.to_bits() != b.distance_m.to_bits()
            || a.messages_delivered != b.messages_delivered
            || a.danger_zone_ticks != b.danger_zone_ticks
    );
}

#[test]
fn experiment_rows_are_reproducible() {
    let a = occlusion_point(400.0, 15.0, 7, SimDuration::from_secs(120));
    let b = occlusion_point(400.0, 15.0, 7, SimDuration::from_secs(120));
    assert_eq!(
        a.forwarder_coverage.to_bits(),
        b.forwarder_coverage.to_bits()
    );
    assert_eq!(a.combined_coverage.to_bits(), b.combined_coverage.to_bits());
}

#[test]
fn rng_stream_isolation() {
    // Consuming one subsystem's stream must not perturb another's.
    let root = SimRng::from_seed(5);
    let mut comms_a = root.fork("comms");
    let mut attacks = root.fork("attacks");
    let attack_vals: Vec<u64> = (0..10).map(|_| attacks.next_u64()).collect();

    // Re-derive, but this time drain the comms stream heavily first.
    let root2 = SimRng::from_seed(5);
    let mut comms_b = root2.fork("comms");
    for _ in 0..1000 {
        let _ = comms_b.next_u64();
    }
    let mut attacks2 = root2.fork("attacks");
    let attack_vals2: Vec<u64> = (0..10).map(|_| attacks2.next_u64()).collect();
    assert_eq!(attack_vals, attack_vals2);
    let _ = comms_a.next_u64();
}

#[test]
fn sites_with_same_config_and_seed_share_attack_ground_truth() {
    let config = standard_config(SecurityPosture::secure());
    let build = || {
        let mut site = Worksite::new(&config, 77);
        site.attack_engine_mut()
            .add_campaign(silvasec::experiments::campaign_for(
                AttackKind::CameraBlinding,
                SimTime::from_secs(30),
                SimDuration::from_secs(60),
            ));
        site.run(SimDuration::from_secs(120));
        site.metrics().first_alert_at.clone()
    };
    assert_eq!(build(), build());
}
