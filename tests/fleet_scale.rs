//! Fleet-scale two-fidelity control plane: decision equivalence,
//! tamper parity through the per-shard batched verify, and shard
//! determinism.
//!
//! Small populations keep these affordable in debug mode; the
//! million-site assertions (throughput, peak bytes/site ceiling, the
//! pinned legacy trace hash) live in the release-mode
//! `exp12_fleet_scale` bench binary.

use proptest::prelude::*;
use silvasec::experiments::{
    fleet_config, fleet_decisions, fleet_scale_config, run_fleet_scale_point,
    run_fleet_scale_scenario, FleetScenario,
};
use silvasec::fleet::{ShadowConfig, SiteSlot};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// At overlap scales the shadow-fidelity fleet must make the same
    /// security decisions as the all-full-fidelity reference: the same
    /// correlated campaign classes in the same order, and the same risk
    /// trajectory `(threat, from, to)`. Timestamps are excluded by
    /// design — shadow alert latencies are modeled, not simulated.
    #[test]
    fn shadow_and_full_fidelity_agree_on_decisions(seed in 1u64..200, sites in 8usize..=20) {
        let (full_report, full) = run_fleet_scale_scenario(fleet_config(sites), seed);
        let mut config = fleet_config(sites);
        config.shadow = Some(ShadowConfig {
            full_sites: 4,
            shard_sites: 4,
            sequential: false,
        });
        let (shadow_report, shadow) = run_fleet_scale_scenario(config, seed);
        prop_assert_eq!(full_report.applied_sites, shadow_report.applied_sites);
        prop_assert_eq!(full_report.rejected_sites, shadow_report.rejected_sites);
        let (full_campaigns, full_risk) = fleet_decisions(&full);
        let (shadow_campaigns, shadow_risk) = fleet_decisions(&shadow);
        prop_assert!(!full_campaigns.is_empty(),
            "the equivalence scenario must correlate at least one campaign");
        prop_assert_eq!(full_campaigns, shadow_campaigns);
        prop_assert_eq!(full_risk, shadow_risk);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// A tampered bundle must be rejected by every site even though
    /// shadow shards share one batched verification verdict — tampered
    /// sites fall off the shared-verdict fast path and are verified
    /// individually.
    #[test]
    fn tampered_bundles_reject_through_batched_verify(seed in 1u64..100) {
        let (report, _) = run_fleet_scale_point(64, seed, FleetScenario::Tampered, false);
        prop_assert_eq!(report.applied_sites, 0);
        prop_assert_eq!(report.rejected_sites, 64);
        prop_assert!(report.individually_verified_sites > 0,
            "tampered shadow sites must be verified individually: {:?}", report);
    }

    /// The anti-rollback rule survives the shared-verdict split: a
    /// downgraded bundle is rejected fleet-wide, for the right reason.
    #[test]
    fn downgrade_rejected_through_batched_verify(seed in 1u64..100) {
        let (report, _) = run_fleet_scale_point(64, seed, FleetScenario::Downgrade, false);
        prop_assert_eq!(report.applied_sites, 0);
        prop_assert_eq!(
            report.reject_reasons.get("downgrade").copied().unwrap_or(0), 64,
            "every site must reject the rollback as a downgrade: {:?}", report);
    }
}

/// Parallel shadow shards, sequential shards and a same-seed twin all
/// export byte-identical fleet traces — the order-preserving merge is
/// indistinguishable from the sequential reference.
#[test]
fn sharded_traces_match_sequential_reference_byte_for_byte() {
    let (par_report, par) = run_fleet_scale_point(128, 11, FleetScenario::Clean, false);
    let (_, seq) = run_fleet_scale_point(128, 11, FleetScenario::Clean, true);
    let (_, twin) = run_fleet_scale_point(128, 11, FleetScenario::Clean, false);
    assert!(par_report.completed, "{par_report:?}");
    assert_eq!(par_report.applied_sites, 128);
    let par_trace = par.export_trace_jsonl();
    assert!(!par_trace.is_empty());
    assert_eq!(
        par_trace,
        seq.export_trace_jsonl(),
        "parallel shards must merge byte-identically to the sequential reference"
    );
    assert_eq!(
        par_trace,
        twin.export_trace_jsonl(),
        "same seed must replay byte-identically"
    );
}

/// A clean shadow rollout amortizes signature verification: far fewer
/// batched calls than sites, and no per-site fallback verifies.
#[test]
fn batched_verify_amortizes_across_shadow_sites() {
    let (report, fleet) = run_fleet_scale_point(128, 7, FleetScenario::Clean, false);
    assert!(report.completed, "{report:?}");
    let shadow_sites = fleet
        .shadows()
        .expect("scale config has a shadow population")
        .layout
        .shadow_count() as u64;
    assert_eq!(report.batch_verified_sites, shadow_sites);
    assert_eq!(report.individually_verified_sites, 0);
    assert!(
        report.batch_verify_calls < shadow_sites / 4,
        "batched verify must amortize: {} calls for {} shadow sites",
        report.batch_verify_calls,
        shadow_sites
    );
}

/// The security snapshot surfaces the population split and the places
/// alerts can be lost (SIEM windows, trace ring) as observable
/// counters.
#[test]
fn security_snapshot_surfaces_population_and_loss_counters() {
    let (_, fleet) = run_fleet_scale_scenario(fleet_scale_config(64, false), 11);
    let snapshot = fleet.security_snapshot();
    assert_eq!(snapshot.sites, 64);
    assert_eq!(snapshot.full_sites, 4);
    assert_eq!(snapshot.shadow_sites, 60);
    assert_eq!(snapshot.full_sites + snapshot.shadow_sites, snapshot.sites);
    assert!(snapshot.siem_records_ingested > 0);
    assert!(snapshot.trace_pushed > 0);
    assert!(snapshot.shadow_mem_bytes > 0);
    // No drops at this scale — the counters exist and read zero, which
    // is itself the observable claim (loss would be counted, not
    // silent). Zero-drop classes are listed on purpose.
    assert_eq!(snapshot.siem_window_drops, 0);
    assert!(!snapshot.siem_window_drops_by_class.is_empty());
    assert!(snapshot
        .siem_window_drops_by_class
        .iter()
        .all(|(_, dropped)| *dropped == 0));
}

/// Every site index resolves to exactly one slot, shadow members
/// report installed versions through the compact path, and asking for
/// a shadow member's full worksite is a clear panic, not a wrong
/// answer.
#[test]
fn site_slots_partition_the_fleet() {
    let (_, fleet) = run_fleet_scale_point(64, 11, FleetScenario::Clean, false);
    let mut full = 0usize;
    let mut shadow = 0usize;
    for site in 0..64u32 {
        match fleet.site_slot(site) {
            SiteSlot::Full(_) => full += 1,
            SiteSlot::Shadow { .. } => shadow += 1,
        }
        assert_eq!(fleet.installed_version(site as usize), 2);
    }
    assert_eq!(full, 4);
    assert_eq!(shadow, 60);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let SiteSlot::Shadow { .. } = fleet.site_slot(1) else {
            // Site 1 is a shadow member under the 4-of-64 stride; if
            // the layout ever changes, fail loudly rather than probing
            // the wrong site.
            panic!("site 1 must be a shadow member under full_sites=4");
        };
        let _ = fleet.worksite(1);
    }));
    assert!(
        panicked.is_err(),
        "worksite() on a shadow member must panic rather than fabricate state"
    );
}
