//! End-to-end integration: the full chain from attack injection through
//! detection, response, continuous risk assessment and assurance-case
//! invalidation — the paper's whole story in one test file.

use silvasec::certify::{certify_worksite, Verdict};
use silvasec::experiments::{campaign_for, standard_config};
use silvasec::prelude::*;
use silvasec::risk::catalog;
use silvasec::risk::continuous::{ContinuousAssessment, IncidentReport};

#[test]
fn certification_pipeline_distinguishes_postures() {
    let hardened = certify_worksite(true);
    let undefended = certify_worksite(false);
    assert_eq!(hardened.verdict, Verdict::Pass);
    assert_ne!(undefended.verdict, Verdict::Pass);
    // Both assessed the same model.
    assert_eq!(hardened.risk_count, undefended.risk_count);
}

#[test]
fn attack_to_assurance_chain() {
    // 1. Run the hardened worksite under GNSS spoofing.
    let mut site = Worksite::new(&standard_config(SecurityPosture::secure()), 21);
    site.attack_engine_mut().add_campaign(campaign_for(
        AttackKind::GnssSpoofing,
        SimTime::from_secs(60),
        SimDuration::from_secs(150),
    ));
    site.run(SimDuration::from_secs(300));
    let metrics = site.metrics().clone();

    // 2. The IDS detected the spoof.
    let first_alert = metrics
        .first_alert_at
        .get("gnss-spoofing")
        .copied()
        .expect("gnss spoofing must be detected");
    assert!(first_alert >= SimTime::from_secs(60), "alert before onset");
    assert!(
        first_alert <= SimTime::from_secs(210),
        "alert too late: {first_alert}"
    );

    // 3. The incident escalates the matching risk in continuous
    //    assessment.
    let mut continuous = ContinuousAssessment::new(catalog::worksite_model());
    let before = continuous
        .report()
        .risks
        .iter()
        .find(|r| r.threat_id == "ts.gnss-spoofing")
        .unwrap()
        .risk;
    let changes = continuous.ingest(&IncidentReport {
        attack_class: "gnss-spoofing".into(),
        at_ms: first_alert.as_millis(),
    });
    assert!(!changes.is_empty(), "incident must change the risk picture");
    let after = continuous
        .report()
        .risks
        .iter()
        .find(|r| r.threat_id == "ts.gnss-spoofing")
        .unwrap()
        .risk;
    assert!(after > before);

    // 4. The assurance case flags the affected claims when the
    //    corresponding evidence class is invalidated.
    let tara = Tara::assess(&catalog::worksite_model());
    let mut case = build_security_case(&tara, "worksite");
    assert!(case.check().is_empty());
    let hit = case.invalidate_evidence_tagged("nav-consistency");
    assert!(hit > 0);
    let doubted = case.goals_in_doubt(first_alert.as_millis());
    assert!(doubted.iter().any(|g| g.0 == "G.ts.gnss-spoofing"));
    assert!(doubted.iter().any(|g| g.0 == "G.root"));
}

#[test]
fn safety_function_keeps_working_under_deauth_with_mfp() {
    // The collaborative drone feed runs over the radio; a de-auth attack
    // tries to sever it. With MFP the feed survives.
    let run = |posture: SecurityPosture| {
        let mut site = Worksite::new(&standard_config(posture), 22);
        site.attack_engine_mut().add_campaign(campaign_for(
            AttackKind::DeauthFlood,
            SimTime::from_secs(30),
            SimDuration::from_secs(200),
        ));
        site.run(SimDuration::from_secs(260));
        site.metrics().drone_feed_ratio()
    };
    let with_mfp = run(SecurityPosture::secure());
    let without_mfp = run(SecurityPosture::insecure());
    assert!(
        with_mfp > 0.7,
        "MFP should keep the drone feed up (got {with_mfp:.2})"
    );
    // Note: de-auth targets the forwarder↔bs association; the drone→fw
    // feed frames are data frames from the drone, so the undefended case
    // mainly loses telemetry. Verify telemetry instead for the contrast.
    let _ = without_mfp;
}

#[test]
fn deauth_breaks_telemetry_without_mfp_only() {
    let run = |posture: SecurityPosture| {
        let mut site = Worksite::new(&standard_config(posture), 23);
        site.attack_engine_mut().add_campaign(campaign_for(
            AttackKind::DeauthFlood,
            SimTime::from_secs(30),
            SimDuration::from_secs(200),
        ));
        site.run(SimDuration::from_secs(260));
        site.metrics().delivery_ratio()
    };
    let protected = run(SecurityPosture::secure());
    let unprotected = run(SecurityPosture::insecure());
    assert!(
        unprotected < protected - 0.2,
        "de-auth should gut unprotected telemetry: protected {protected:.2}, unprotected {unprotected:.2}"
    );
}

#[test]
fn firmware_tampering_blocked_at_boot() {
    use silvasec::sos::pki_setup::WorksitePki;
    let mut rng = SimRng::from_seed(31);
    let mut pki = WorksitePki::commission(&mut rng, 1_000_000);
    let mut creds = pki.commission_machine(
        "forwarder-01",
        ComponentRole::Forwarder,
        3,
        &mut rng,
        Validity::new(0, 500_000),
    );
    assert!(creds.boot_report.success);

    // Supply-chain attack: swap the application payload. The installed
    // chain is `Arc`-shared, so the attacker works on a private copy.
    let mut tampered = creds.firmware.as_ref().clone();
    tampered[1].image.payload[100] ^= 0x5a;
    let report = creds.device.boot(&tampered);
    assert!(!report.success, "tampered image must not boot");

    // Rollback attack: ship an old (validly signed) version.
    let old = vec![
        FirmwareImage::new(
            "forwarder-01",
            FirmwareStage::Bootloader,
            1,
            b"old-bl".to_vec(),
        )
        .sign(&pki.firmware_signer),
        FirmwareImage::new(
            "forwarder-01",
            FirmwareStage::Application,
            1,
            b"old-app".to_vec(),
        )
        .sign(&pki.firmware_signer),
    ];
    let report = creds.device.boot(&old);
    assert!(!report.success, "rollback must be rejected");
}

#[test]
fn methodology_finds_more_risk_than_safety_only_view() {
    // Baseline comparison (ii): a safety-only HARA sees the hazards at
    // their engineered exposure; the combined methodology surfaces the
    // security-induced escalations on top.
    let model = catalog::worksite_model();
    let report = Tara::assess(&model);

    let safety_only_worst = model
        .hazards
        .iter()
        .map(silvasec::risk::hara::Hazard::required_pl)
        .max()
        .unwrap();
    let combined_worst = report
        .interplay_findings
        .iter()
        .map(|f| f.compromised_pl)
        .max()
        .unwrap();
    assert!(combined_worst >= safety_only_worst);

    // And strictly more findings: every interplay link is a risk item a
    // safety-only view has no row for.
    assert!(!report.interplay_findings.is_empty());
    let defeated = report
        .interplay_findings
        .iter()
        .filter(|f| f.safety_function_defeated)
        .count();
    assert!(
        defeated >= 3,
        "expected multiple safety-function-defeating threats"
    );
}
