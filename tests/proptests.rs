//! Property-based tests over the core invariants of every substrate.

use proptest::prelude::*;
use silvasec::crypto::aead::ChaCha20Poly1305;
use silvasec::crypto::edwards::EdwardsPoint;
use silvasec::crypto::field::FieldElement;
use silvasec::crypto::scalar::Scalar;
use silvasec::crypto::schnorr::{self, BatchItem, SigningKey};
use silvasec::crypto::{chacha20, hkdf, sha256};
use silvasec::prelude::*;
use silvasec::risk::feasibility::{AttackFeasibility, AttackPotential};
use silvasec::risk::impact::ImpactLevel;
use silvasec::risk::RiskLevel;
use silvasec_channel::replay::ReplayWindow;

/// Edge-heavy length schedule for the data-plane parity tests: empty,
/// single byte, around the Poly1305 16-byte boundary, the ChaCha20
/// 64-byte block boundary, and the 512-byte wide-chunk boundary.
const KEYSTREAM_EDGE_LENS: [usize; 12] = [0, 1, 15, 16, 17, 63, 64, 65, 511, 512, 513, 1537];

proptest! {
    // ---------------- crypto ----------------

    #[test]
    fn aead_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                      aad in proptest::collection::vec(any::<u8>(), 0..64),
                      pt in proptest::collection::vec(any::<u8>(), 0..512)) {
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &aad, &pt);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn aead_tamper_always_detected(key in any::<[u8; 32]>(),
                                   pt in proptest::collection::vec(any::<u8>(), 1..128),
                                   flip_byte in any::<usize>(), flip_bit in 0u8..8) {
        let aead = ChaCha20Poly1305::new(&key);
        let mut sealed = aead.seal(&[0u8; 12], b"", &pt);
        let idx = flip_byte % sealed.len();
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(aead.open(&[0u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn keystream_wide_path_matches_naive(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                         counter in 0u32..1_000_000,
                                         len_i in 0usize..KEYSTREAM_EDGE_LENS.len(),
                                         extra in 0usize..1600) {
        // The multi-block keystream must match the frozen per-block
        // reference at every chunking edge: around the 64-byte block
        // boundary, around the 512-byte wide-chunk boundary, and on
        // arbitrary lengths.
        let cipher = chacha20::ChaCha20::new(&key);
        for len in [KEYSTREAM_EDGE_LENS[len_i], extra] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut fast = pt.clone();
            let mut naive = pt;
            cipher.apply_keystream_inplace(&nonce, counter, &mut fast);
            cipher.apply_keystream_naive(&nonce, counter, &mut naive);
            prop_assert_eq!(fast, naive, "len {}", len);
        }
    }

    #[test]
    fn aead_in_place_matches_two_pass(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                      aad in proptest::collection::vec(any::<u8>(), 0..48),
                                      len_i in 0usize..KEYSTREAM_EDGE_LENS.len(),
                                      extra in 0usize..1600,
                                      flip_byte in any::<usize>(), flip_bit in 0u8..8) {
        // One-pass seal/open over a caller buffer must be byte-identical
        // to (and interoperable with) the allocating two-pass API, and
        // must reject exactly the same forgeries.
        let aead = ChaCha20Poly1305::new(&key);
        for len in [KEYSTREAM_EDGE_LENS[len_i], extra] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
            let mut buf = pt.clone();
            aead.seal_in_place(&nonce, &aad, &mut buf);
            let sealed = aead.seal(&nonce, &aad, &pt);
            prop_assert_eq!(&buf, &sealed, "seal len {}", len);

            // Cross-open: in-place opens the two-pass record and
            // vice versa.
            let mut opened = sealed.clone();
            aead.open_in_place(&nonce, &aad, &mut opened).unwrap();
            prop_assert_eq!(&opened, &pt, "open len {}", len);
            prop_assert_eq!(&aead.open(&nonce, &aad, &buf).unwrap(), &pt);

            // Tamper-rejection parity: both paths reject the same flip,
            // and the in-place path clears the buffer.
            let mut forged = sealed.clone();
            let idx = flip_byte % forged.len();
            forged[idx] ^= 1 << flip_bit;
            let mut forged_in_place = forged.clone();
            prop_assert!(aead.open(&nonce, &aad, &forged).is_err());
            prop_assert!(aead.open_in_place(&nonce, &aad, &mut forged_in_place).is_err());
            prop_assert!(forged_in_place.is_empty());
        }
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                         split in any::<usize>()) {
        let s = split % (data.len() + 1);
        let mut h = sha256::Sha256::new();
        h.update(&data[..s]);
        h.update(&data[s..]);
        prop_assert_eq!(h.finalize(), sha256::digest(&data));
    }

    #[test]
    fn hkdf_prefix_stability(ikm in any::<[u8; 32]>(), len_a in 1usize..100, len_b in 1usize..100) {
        // Expanding to different lengths agrees on the common prefix.
        let prk = hkdf::extract(b"salt", &ikm);
        let mut a = vec![0u8; len_a];
        let mut b = vec![0u8; len_b];
        hkdf::expand(&prk, b"info", &mut a);
        hkdf::expand(&prk, b"info", &mut b);
        let n = len_a.min(len_b);
        prop_assert_eq!(&a[..n], &b[..n]);
    }

    #[test]
    fn field_algebra(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (fa, fb, fc) = (FieldElement::from_u64(a), FieldElement::from_u64(b), FieldElement::from_u64(c));
        prop_assert_eq!(fa.add(&fb), fb.add(&fa));
        prop_assert_eq!(fa.mul(&fb), fb.mul(&fa));
        prop_assert_eq!(fa.mul(&fb.add(&fc)), fa.mul(&fb).add(&fa.mul(&fc)));
        prop_assert_eq!(fa.sub(&fa), FieldElement::ZERO);
    }

    #[test]
    fn field_inverse(a in 1u64..) {
        let fa = FieldElement::from_u64(a);
        prop_assert_eq!(fa.mul(&fa.invert()), FieldElement::ONE);
    }

    #[test]
    fn scalar_ring_axioms(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let sa = Scalar::from_bytes_mod_order(&a);
        let sb = Scalar::from_bytes_mod_order(&b);
        prop_assert_eq!(sa.add(&sb), sb.add(&sa));
        prop_assert_eq!(sa.mul(&sb), sb.mul(&sa));
        prop_assert_eq!(sa.sub(&sa), Scalar::ZERO);
        prop_assert_eq!(sa.add(&sa.neg()), Scalar::ZERO);
    }

    #[test]
    fn edwards_group_homomorphism(a in any::<u64>(), b in any::<u64>()) {
        let base = EdwardsPoint::basepoint();
        let sa = Scalar::from_u64(a);
        let sb = Scalar::from_u64(b);
        prop_assert_eq!(
            base.scalar_mul(&sa.add(&sb)),
            base.scalar_mul(&sa).add(&base.scalar_mul(&sb))
        );
    }

    #[test]
    fn signatures_roundtrip(seed in any::<[u8; 32]>(),
                            msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let sk = SigningKey::from_seed(&seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
        // A different message never verifies.
        let mut other = msg.clone();
        other.push(0x55);
        prop_assert!(sk.verifying_key().verify(&other, &sig).is_err());
    }

    // ---------------- channel ----------------

    #[test]
    fn replay_window_accepts_each_seq_once(seqs in proptest::collection::vec(0u64..5000, 1..200)) {
        let mut window = ReplayWindow::new();
        let mut accepted = std::collections::HashSet::new();
        for seq in seqs {
            let result = window.accept(seq);
            if result.is_ok() {
                prop_assert!(accepted.insert(seq), "seq {} accepted twice", seq);
            }
        }
    }

    #[test]
    fn replay_window_never_rejects_fresh_in_order(start in 0u64..1000, n in 1u64..300) {
        let mut window = ReplayWindow::new();
        for seq in start..start + n {
            prop_assert!(window.accept(seq).is_ok());
        }
    }

    // ---------------- sim ----------------

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn terrain_height_bounded_and_symmetric_los(seed in any::<u64>()) {
        let terrain = silvasec::sim::terrain::Terrain::generate(
            &silvasec::sim::terrain::TerrainConfig {
                size_m: 200.0, ..silvasec::sim::terrain::TerrainConfig::default()
            },
            &mut SimRng::from_seed(seed),
        );
        let stand = silvasec::sim::vegetation::TreeStand::from_trees(Vec::new(), 200.0);
        let a = Vec3::new(20.0, 30.0, terrain.height_at(Vec2::new(20.0, 30.0)) + 2.0);
        let b = Vec3::new(170.0, 150.0, terrain.height_at(Vec2::new(170.0, 150.0)) + 2.0);
        let ab = silvasec::sim::los::line_of_sight(&terrain, &stand, a, b);
        let ba = silvasec::sim::los::line_of_sight(&terrain, &stand, b, a);
        // LoS over terrain-only occluders is symmetric.
        prop_assert_eq!(ab.is_blocked(), ba.is_blocked());
    }

    // ---------------- sweep ----------------

    #[test]
    fn par_sweep_bit_identical_to_sequential_map(points in proptest::collection::vec(any::<u64>(), 0..200)) {
        // The determinism contract of the parallel sweep engine: for any
        // point set, the result is the sequential map, bit for bit —
        // including floating-point outputs.
        let eval = |&p: &u64| {
            let mut acc = (p as f64).sin();
            let mut h = p;
            for i in 0..50u64 {
                h = h.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
                acc = (acc * 1.0001 + (h >> 11) as f64 * 1e-12).cos();
            }
            (acc, h)
        };
        let par = silvasec::sweep::par_sweep(&points, eval);
        let seq: Vec<(f64, u64)> = points.iter().map(eval).collect();
        prop_assert_eq!(par.len(), seq.len());
        for ((pa, ph), (sa, sh)) in par.iter().zip(&seq) {
            prop_assert_eq!(pa.to_bits(), sa.to_bits());
            prop_assert_eq!(ph, sh);
        }
    }

    #[test]
    fn par_sweep_order_preserved_under_uneven_load(spins in proptest::collection::vec(0u64..2000, 1..64)) {
        // Uneven per-point cost shuffles completion order; the scatter
        // by input index must still return input order.
        let out = silvasec::sweep::par_sweep(&spins, |&spin| {
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ spin);
            }
            (spin, acc)
        });
        for (i, (spin, _)) in out.iter().enumerate() {
            prop_assert_eq!(*spin, spins[i]);
        }
    }

    // ---------------- risk ----------------

    #[test]
    fn risk_matrix_monotone(i1 in 0u8..4, i2 in 0u8..4, f1 in 0u8..4, f2 in 0u8..4) {
        let impact = |v: u8| match v {
            0 => ImpactLevel::Negligible,
            1 => ImpactLevel::Moderate,
            2 => ImpactLevel::Major,
            _ => ImpactLevel::Severe,
        };
        let feas = |v: u8| match v {
            0 => AttackFeasibility::VeryLow,
            1 => AttackFeasibility::Low,
            2 => AttackFeasibility::Medium,
            _ => AttackFeasibility::High,
        };
        if i1 <= i2 && f1 <= f2 {
            prop_assert!(
                RiskLevel::from_matrix(impact(i1), feas(f1))
                    <= RiskLevel::from_matrix(impact(i2), feas(f2))
            );
        }
    }

    #[test]
    fn attack_potential_feasibility_antitone(t1 in 0u8..20, e1 in 0u8..9, t2 in 0u8..20, e2 in 0u8..9) {
        let p1 = AttackPotential::new(t1, e1, 0, 0, 0);
        let p2 = AttackPotential::new(t2, e2, 0, 0, 0);
        if p1.total() <= p2.total() {
            prop_assert!(p1.feasibility() >= p2.feasibility());
        }
    }

    // ---------------- assurance ----------------

    #[test]
    fn random_goal_trees_are_well_formed(n in 1usize..30) {
        // A generated strict tree of goals with solutions at the leaves
        // must always pass the checker.
        let mut case = AssuranceCase::new("generated");
        let root = case.add_node(NodeKind::Goal, "G0", "root");
        let mut parents = vec![root.clone()];
        for i in 1..=n {
            let parent = parents[i % parents.len()].clone();
            let goal = case.add_node(NodeKind::Goal, format!("G{i}"), "sub");
            case.supported_by(&parent, &goal);
            let sol = case.add_node(NodeKind::Solution, format!("Sn{i}"), "evidence");
            case.supported_by(&goal, &sol);
            parents.push(goal);
        }
        prop_assert!(case.check().is_empty());
        prop_assert_eq!(case.goal_coverage(), 1.0);
    }
}

// ---------------- fleet OTA bundles ----------------

/// A signed update bundle over arbitrary manifest fields and payloads,
/// plus the trust store that anchors it.
fn arbitrary_bundle(
    version: u32,
    channel: &str,
    released_at_ms: u64,
    boot_payload: Vec<u8>,
    app_payload: Vec<u8>,
) -> (silvasec::fleet::UpdateBundle, TrustStore) {
    use silvasec::fleet::{UpdateBundle, UpdateManifest};
    let mut ca =
        CertificateAuthority::new_root("fleet-root", &[1u8; 32], Validity::new(0, u64::MAX / 2));
    let signer = SigningKey::from_seed(&[2u8; 32]);
    let leaf = ca.issue_mut(
        &Subject::new("fleet-fw-signer", ComponentRole::FirmwareSigner),
        &signer.verifying_key(),
        KeyUsage::FIRMWARE_SIGNING,
        Validity::new(0, u64::MAX / 2),
    );
    let store = TrustStore::with_roots([ca.certificate().clone()]);
    let images = vec![
        FirmwareImage::new(
            "forwarder-fw",
            FirmwareStage::Bootloader,
            version,
            boot_payload,
        )
        .sign(&signer),
        FirmwareImage::new(
            "forwarder-fw",
            FirmwareStage::Application,
            version,
            app_payload,
        )
        .sign(&signer),
    ];
    let manifest = UpdateManifest {
        component_id: "forwarder-fw".into(),
        version,
        channel: channel.into(),
        released_at_ms,
    };
    (
        UpdateBundle::build(manifest, images, vec![leaf], &signer),
        store,
    )
}

proptest! {
    // Chain building + three signatures per case: keep the case count
    // low enough for debug-mode CI.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn update_bundle_encode_decode_roundtrip(
        version in 2u32..1_000,
        channel_i in 0usize..3,
        released_at_ms in 0u64..1_000_000_000,
        boot_payload in proptest::collection::vec(any::<u8>(), 1..256),
        app_payload in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let channel = ["stable", "beta", "nightly"][channel_i];
        let (bundle, store) =
            arbitrary_bundle(version, channel, released_at_ms, boot_payload, app_payload);
        let bytes = bundle.encode();
        let back = silvasec::fleet::UpdateBundle::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &bundle);
        // The decoded bundle verifies against the anchoring store and
        // any strictly older installed version...
        prop_assert!(back
            .verify(&store, released_at_ms, "forwarder-fw", version - 1)
            .is_ok());
        // ... and is a rejected downgrade against itself or anything newer.
        prop_assert!(back
            .verify(&store, released_at_ms, "forwarder-fw", version)
            .is_err());
    }

    #[test]
    fn update_bundle_bitflip_never_verifies(
        version in 2u32..100,
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let (bundle, store) =
            arbitrary_bundle(version, "stable", 1_000, vec![0xAA; 64], vec![0xBB; 128]);
        let mut bytes = bundle.encode();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match silvasec::fleet::UpdateBundle::decode(&bytes) {
            Err(_) => {}
            Ok(back) => {
                // A flip that still parses but changed any content must
                // fail verification. (A flip can land in redundant JSON
                // encoding and leave the value unchanged — that decodes
                // to an equal bundle and is not a forgery.)
                if back != bundle {
                    prop_assert!(back
                        .verify(&store, 1_000, "forwarder-fw", version - 1)
                        .is_err());
                }
            }
        }
    }
}

// ---------------- fast-path crypto vs the frozen naive oracle ----------------

proptest! {
    // Every case runs several full scalar multiplications against the
    // frozen seed ladder (or builds a chain and signs a CRL); keep the
    // case count debug-CI friendly.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scalar_mul_fast_paths_encode_identical_to_naive(
        s_bytes in any::<[u8; 32]>(),
        p_seed in any::<u64>(),
    ) {
        let s = Scalar::from_bytes_mod_order(&s_bytes);
        let base = EdwardsPoint::basepoint();
        // Basepoint dispatch (shared precomputed table)...
        prop_assert_eq!(base.scalar_mul(&s).encode(), base.scalar_mul_naive(&s).encode());
        // ...and the constant-time fixed-window ladder on an arbitrary
        // point (p_seed = 0 exercises the identity).
        let p = base.scalar_mul_naive(&Scalar::from_u64(p_seed));
        prop_assert_eq!(p.scalar_mul(&s).encode(), p.scalar_mul_naive(&s).encode());
    }

    #[test]
    fn double_scalar_mul_encodes_identical_to_naive(
        a_bytes in any::<[u8; 32]>(),
        b_bytes in any::<[u8; 32]>(),
        p_seed in any::<u64>(),
        q_seed in any::<u64>(),
    ) {
        let a = Scalar::from_bytes_mod_order(&a_bytes);
        let b = Scalar::from_bytes_mod_order(&b_bytes);
        let base = EdwardsPoint::basepoint();
        let p = base.scalar_mul_naive(&Scalar::from_u64(p_seed));
        let q = base.scalar_mul_naive(&Scalar::from_u64(q_seed));
        // All three dispatch shapes: basepoint first (the verification
        // equation), basepoint second, and fully generic.
        prop_assert_eq!(
            base.double_scalar_mul(&a, &p, &b).encode(),
            base.double_scalar_mul_naive(&a, &p, &b).encode()
        );
        prop_assert_eq!(
            p.double_scalar_mul(&a, &base, &b).encode(),
            p.double_scalar_mul_naive(&a, &base, &b).encode()
        );
        prop_assert_eq!(
            p.double_scalar_mul(&a, &q, &b).encode(),
            p.double_scalar_mul_naive(&a, &q, &b).encode()
        );
    }

    #[test]
    fn batch_verify_accepts_iff_every_individual_verifies(
        msg_salt in any::<u64>(),
        corrupt_idx in 0usize..16,
        corrupt_sig in any::<bool>(),
    ) {
        const N: usize = 16;
        let keys: Vec<SigningKey> = (0..N)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[..8].copy_from_slice(&msg_salt.to_le_bytes());
                seed[8] = i as u8;
                SigningKey::from_seed(&seed)
            })
            .collect();
        let mut messages: Vec<Vec<u8>> = (0..N)
            .map(|i| format!("batch proptest {msg_salt} {i}").into_bytes())
            .collect();
        let mut signatures: Vec<_> = keys
            .iter()
            .zip(&messages)
            .map(|(k, m)| k.sign(m))
            .collect();
        let verifiers: Vec<_> = keys.iter().map(SigningKey::verifying_key).collect();

        let batch_ok = |messages: &[Vec<u8>], sigs: &[schnorr::Signature]| {
            let items: Vec<BatchItem<'_>> = (0..N)
                .map(|i| BatchItem {
                    message: &messages[i],
                    signature: &sigs[i],
                    key: &verifiers[i],
                })
                .collect();
            schnorr::verify_batch(&items)
        };

        // All-valid set: the batch accepts.
        prop_assert!(batch_ok(&messages, &signatures));

        // Corrupt exactly one of the sixteen (signature or message).
        if corrupt_sig {
            let mut bytes = signatures[corrupt_idx].to_bytes();
            bytes[17] ^= 0x40;
            match schnorr::Signature::from_bytes(&bytes) {
                Ok(sig) => signatures[corrupt_idx] = sig,
                // A flipped bit can make the encoding undecodable
                // (non-canonical); corrupt the message instead.
                Err(_) => messages[corrupt_idx].push(0x99),
            }
        } else {
            messages[corrupt_idx][0] ^= 0x01;
        }

        // The batch rejects, and individual verification pinpoints
        // exactly the corrupted index.
        prop_assert!(!batch_ok(&messages, &signatures));
        for i in 0..N {
            let individual = verifiers[i].verify(&messages[i], &signatures[i]).is_ok();
            prop_assert_eq!(individual, i != corrupt_idx, "index {}", i);
        }
    }

    #[test]
    fn field_mul_prescaled_matches_widening_reference(
        a_bytes in any::<[u8; 32]>(),
        b_bytes in any::<[u8; 32]>(),
    ) {
        // The u64-prescaled `mul` must be bit-identical to the frozen
        // u128-widening reference, including on the widened limbs that
        // `add` chains produce (inputs up to ~2^54 per limb).
        let a = FieldElement::from_bytes(&a_bytes);
        let b = FieldElement::from_bytes(&b_bytes);
        prop_assert_eq!(a.mul(&b), a.mul_reference(&b));
        // Push the limbs off canonical form via unreduced sums.
        let wide_a = a.add(&a).add(&a).add(&b);
        let wide_b = b.add(&b).add(&a).add(&b);
        prop_assert_eq!(wide_a.mul(&wide_b), wide_a.mul_reference(&wide_b));
    }

    #[test]
    fn chain_cache_never_survives_a_crl_revocation(
        validate_t in 10u64..900,
        revoke_at in 1_000u64..5_000,
    ) {
        let mut ca = CertificateAuthority::new_root(
            "prop-root",
            &[7u8; 32],
            Validity::new(0, 10_000),
        );
        let end_key = SigningKey::from_seed(&[8u8; 32]);
        let end = ca.issue_mut(
            &Subject::new("prop-end", ComponentRole::Sensor),
            &end_key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 10_000),
        );
        let store = TrustStore::with_roots([ca.certificate().clone()]);
        let chain = vec![end.clone()];

        // Warm the verified-chain cache (second call is the cached hit).
        prop_assert!(store.validate_chain(&chain, validate_t, &[]).is_ok());
        prop_assert!(store.validate_chain(&chain, validate_t, &[]).is_ok());
        prop_assert!(store.chain_cache_len() >= 1);

        // A CRL revoking the leaf changes the cache key (CRL bytes are
        // part of the fingerprint), so the warm cache cannot mask the
        // revocation.
        ca.revoke(end.serial, revoke_at);
        let crl = ca.sign_crl(revoke_at + 1);
        prop_assert!(matches!(
            store.validate_chain(&chain, revoke_at + 10, std::slice::from_ref(&crl)),
            Err(PkiError::Revoked { .. })
        ));

        // The CRL-free verdict at the original time is still served.
        prop_assert!(store.validate_chain(&chain, validate_t, &[]).is_ok());
    }
}

// ---------------- episode engine (pooled worksite reuse) ----------------

/// A compact worksite for the episode-engine properties (the shared
/// episode-sweep configuration), so each case stays debug-CI friendly.
fn episode_test_config(secure: bool) -> WorksiteConfig {
    silvasec::experiments::compact_config(if secure {
        SecurityPosture::secure()
    } else {
        SecurityPosture::insecure()
    })
}

/// The attack rotation used by the episode properties (allocation-free
/// campaign targets only, matching the exp14 sweep).
const EPISODE_ATTACKS: [Option<AttackKind>; 4] = [
    None,
    Some(AttackKind::RfJamming),
    Some(AttackKind::DeauthFlood),
    Some(AttackKind::Replay),
];

proptest! {
    // Each case runs several full worksite episodes (PKI, worldgen,
    // simulation); keep the case count debug-CI friendly.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn worksite_reset_is_byte_identical_to_fresh_build(
        dirty_seed in 0u64..50,
        seed in 0u64..50,
        dirty_attack_i in 0usize..4,
        attack_i in 0usize..4,
        dirty_secure in any::<bool>(),
        secure in any::<bool>(),
    ) {
        use silvasec::experiments::EpisodeSpec;

        let dirty_spec = EpisodeSpec {
            config: episode_test_config(dirty_secure),
            seed: dirty_seed,
            attack: EPISODE_ATTACKS[dirty_attack_i],
            duration: SimDuration::from_secs(40),
        };
        let spec = EpisodeSpec {
            config: episode_test_config(secure),
            seed,
            attack: EPISODE_ATTACKS[attack_i],
            duration: SimDuration::from_secs(40),
        };

        // Dirty the pooled worksite with an arbitrary first episode,
        // then reset it onto the probed spec...
        let mut pooled = Worksite::new(&dirty_spec.config, dirty_spec.seed);
        dirty_spec.arm(&mut pooled);
        pooled.run(dirty_spec.duration);
        pooled.reset_for_episode(&spec.config, spec.seed);
        spec.arm(&mut pooled);
        pooled.run(spec.duration);

        // ...and run the same spec on a fresh build. Every exported
        // trace must be byte-identical — same seed, same bytes.
        let mut fresh = Worksite::new(&spec.config, spec.seed);
        spec.arm(&mut fresh);
        fresh.run(spec.duration);

        prop_assert_eq!(pooled.export_security_jsonl(), fresh.export_security_jsonl());
        prop_assert_eq!(pooled.export_flight_jsonl(), fresh.export_flight_jsonl());
        prop_assert_eq!(pooled.metrics().ticks, fresh.metrics().ticks);
        prop_assert_eq!(
            pooled.metrics().distance_m.to_bits(),
            fresh.metrics().distance_m.to_bits()
        );
    }

    #[test]
    fn episode_runner_parallel_matches_sequential(
        seeds in proptest::collection::vec(0u64..40, 2..5),
        workers in 2usize..5,
    ) {
        use silvasec::experiments::{EpisodeRunner, EpisodeSpec};

        let episodes: Vec<EpisodeSpec> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| EpisodeSpec {
                config: episode_test_config(true),
                seed,
                attack: EPISODE_ATTACKS[i % EPISODE_ATTACKS.len()],
                duration: SimDuration::from_secs(30),
            })
            .collect();

        let sequential = EpisodeRunner::with_workers(1).run(&episodes);
        let parallel = EpisodeRunner::with_workers(workers).run(&episodes);
        prop_assert_eq!(&parallel, &sequential, "workers = {}", workers);
        // Input order is preserved regardless of completion order.
        for (outcome, spec) in sequential.iter().zip(&episodes) {
            prop_assert_eq!(outcome.seed, spec.seed);
        }
    }
}

// ---------------- tick hot path (zero-alloc perception + culling) ----------------

/// A generated compact world for the perception/culling parity
/// properties (forest stand + worker roster + entity grid).
fn hotpath_world(seed: u64) -> World {
    let config = silvasec::experiments::compact_config(SecurityPosture::secure());
    World::generate(&config.world, SimRng::from_seed(seed))
}

/// Decodes one fuzzed detection from 64 raw bits (the vendored proptest
/// has integer strategies only; floats are derived in-test).
fn detection_from_bits(bits: u64) -> Detection {
    Detection {
        human_id: silvasec::sim::humans::HumanId((bits & 7) as u32),
        position: Vec2::new(
            ((bits >> 3) % 1000) as f64 / 10.0 - 50.0,
            ((bits >> 13) % 1000) as f64 / 10.0 - 50.0,
        ),
        confidence: ((bits >> 23) % 1001) as f64 / 1000.0,
        distance_m: 0.5 + ((bits >> 33) % 400) as f64 / 10.0,
    }
}

proptest! {
    // Each case generates a world (stand + roster); keep the count
    // debug-CI friendly.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn detect_into_matches_detect(
        seed in 0u64..500,
        kind_i in 0usize..2,
        xi in 0u32..1500,
        yi in 0u32..1500,
        heading_i in 0u32..628,
        steps in 0u32..40,
    ) {
        let mut world = hotpath_world(seed);
        for _ in 0..steps {
            world.step(SimDuration::from_millis(500));
        }
        let kind = [SensorKind::Camera, SensorKind::Lidar][kind_i];
        let sensor = PeopleSensor::new(kind, 2.8);
        let pos = Vec2::new(f64::from(xi) / 10.0, f64::from(yi) / 10.0);
        let heading = f64::from(heading_i) / 100.0;
        let mut oracle_rng = SimRng::from_seed(seed ^ 0x9e37_79b9);
        let mut hot_rng = oracle_rng.clone();
        let oracle = sensor.detect(&world, pos, heading, &mut oracle_rng);
        let (mut candidates, mut out) = (Vec::new(), Vec::new());
        sensor.detect_into(&world, pos, heading, &mut hot_rng, &mut candidates, &mut out);
        prop_assert_eq!(&out, &oracle);
        // Both forms must consume the exact same RNG draws, or every
        // later draw in a tick would diverge.
        prop_assert_eq!(
            oracle_rng.uniform_range(0.0, 1.0).to_bits(),
            hot_rng.uniform_range(0.0, 1.0).to_bits()
        );
    }

    #[test]
    fn fuse_into_matches_fuse(
        raw in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..8),
            0..4,
        ),
    ) {
        let sources: Vec<Vec<Detection>> = raw
            .iter()
            .map(|l| l.iter().copied().map(detection_from_bits).collect())
            .collect();
        let oracle = fuse_detections(&sources);
        let views: Vec<&[Detection]> = sources.iter().map(Vec::as_slice).collect();
        let mut out = Vec::new();
        fuse_detections_into(&views, &mut out);
        prop_assert_eq!(out, oracle);
    }

    #[test]
    fn grid_candidates_match_linear_scan(
        seed in 0u64..500,
        steps in 0u32..40,
        xi in 0u32..1500,
        yi in 0u32..1500,
        radius_i in 1u32..800,
    ) {
        let mut world = hotpath_world(seed);
        for _ in 0..steps {
            world.step(SimDuration::from_millis(500));
        }
        let center = Vec2::new(f64::from(xi) / 10.0, f64::from(yi) / 10.0);
        let radius = f64::from(radius_i) / 10.0;
        let mut candidates = Vec::new();
        world.human_grid().fill_candidates(center, radius, &mut candidates);
        prop_assert!(candidates.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        let linear: Vec<u32> = world
            .humans()
            .iter()
            .enumerate()
            .filter(|(_, h)| h.position.distance(center) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        // Conservative superset of everyone in range...
        for i in &linear {
            prop_assert!(candidates.binary_search(i).is_ok(), "missing index {}", i);
        }
        // ...and exactly the linear scan once the true range filter
        // re-applies (same members, same ascending order).
        let culled: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|&i| world.humans()[i as usize].position.distance(center) <= radius)
            .collect();
        prop_assert_eq!(culled, linear);
    }

    #[test]
    fn culled_segment_query_matches_frozen_reference(
        seed in 0u64..500,
        axi in 0u32..1500,
        ayi in 0u32..1500,
        bxi in 0u32..1500,
        byi in 0u32..1500,
        margin_i in 1u32..300,
    ) {
        let world = hotpath_world(seed);
        let stand = world.stand();
        let a = Vec2::new(f64::from(axi) / 10.0, f64::from(ayi) / 10.0);
        let b = Vec2::new(f64::from(bxi) / 10.0, f64::from(byi) / 10.0);
        let margin = f64::from(margin_i) / 10.0;
        let oracle = stand.trees_near_segment_reference(a, b, margin);
        let culled = stand.trees_near_segment(a, b, margin);
        // Same trees (by identity) in the same order as the frozen
        // full-rectangle scan — the cell cull may only skip cells that
        // contain no matching tree.
        prop_assert_eq!(culled.len(), oracle.len());
        for (c, o) in culled.iter().zip(&oracle) {
            prop_assert!(std::ptr::eq(*c, *o));
        }
        prop_assert_eq!(stand.count_trees_near_segment(a, b, margin), oracle.len());
    }

    #[test]
    fn foliage_loss_matches_frozen_reference(
        seed in 0u64..500,
        axi in 0u32..1500,
        ayi in 0u32..1500,
        azi in 10u32..600,
        bxi in 0u32..1500,
        byi in 0u32..1500,
        bzi in 10u32..600,
    ) {
        use silvasec::comms::propagation::{
            foliage_loss_db, foliage_loss_db_reference, PropagationConfig,
        };
        use silvasec::sim::geom::Vec3;
        let world = hotpath_world(seed);
        let config = PropagationConfig::default();
        let from = Vec3::new(f64::from(axi) / 10.0, f64::from(ayi) / 10.0, f64::from(azi) / 10.0);
        let to = Vec3::new(f64::from(bxi) / 10.0, f64::from(byi) / 10.0, f64::from(bzi) / 10.0);
        // The capped early-exit and distance reuse must not move the
        // loss by a single bit.
        prop_assert_eq!(
            foliage_loss_db(&config, world.stand(), from, to).to_bits(),
            foliage_loss_db_reference(&config, world.stand(), from, to).to_bits()
        );
    }
}
