//! The Figure 2 use case: how much people-detection coverage does the
//! collaborative drone add, as terrain occlusion grows?
//!
//! Run with: `cargo run --release -p silvasec --example drone_escort`

use silvasec::experiments::occlusion_sweep;
use silvasec::prelude::*;

fn main() {
    println!("Figure 2: drone point-of-view vs terrain occlusion");
    println!("(300 m stand, 300 trees/ha, 4 workers, 400 s per point)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "relief(m)", "fw cover", "fw+drone", "gain", "fw ttd(s)", "fw+drone ttd"
    );
    for relief in [0.5, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0] {
        let rows = occlusion_sweep(&[300.0], relief, &[5, 17], SimDuration::from_secs(400));
        let r = &rows[0];
        println!(
            "{:>10.1} {:>11.1}% {:>11.1}% {:>7.1}% {:>12.2} {:>12.2}",
            relief,
            r.forwarder_coverage * 100.0,
            r.combined_coverage * 100.0,
            (r.combined_coverage - r.forwarder_coverage) * 100.0,
            r.forwarder_ttd_s,
            r.combined_ttd_s
        );
    }
    println!("\nthe drone's vantage point recovers the coverage terrain takes away —");
    println!("exactly the claim of the paper's Figure 2.");
}
