//! Runs the paper's combined risk-assessment methodology over the
//! built-in worksite model and prints the TARA table, the
//! safety–security interplay findings, the IEC 62443 zone gaps and the
//! generated assurance-case outline.
//!
//! Run with: `cargo run -p silvasec --example risk_assessment`

use silvasec::prelude::*;
use silvasec::risk::catalog;
use silvasec::risk::iec62443::control_catalog;

fn main() {
    let model = catalog::worksite_model();
    let report = Tara::assess(&model);

    println!("=== TARA: threat scenarios, ranked by risk ===");
    println!(
        "{:<22} {:<22} {:>8} {:>12} {:>5}  treatment",
        "threat", "damage scenario", "impact", "feasibility", "risk"
    );
    for r in &report.risks {
        println!(
            "{:<22} {:<22} {:>8} {:>12} {:>5}  {:?}",
            r.threat_id,
            r.damage_scenario_id,
            format!("{:?}", r.impact),
            format!("{:?}", r.feasibility),
            r.risk.0,
            r.treatment
        );
    }

    println!("\n=== derived security requirements ===");
    for req in report.requirements() {
        println!("  {}: controls {:?}", req.id, req.candidate_controls);
    }

    println!("\n=== safety–security interplay (IEC TS 63074) ===");
    for f in &report.interplay_findings {
        println!(
            "  {} → {}: required {} → {}{}",
            f.threat_id,
            f.hazard_id,
            f.baseline_pl,
            f.compromised_pl,
            if f.safety_function_defeated {
                "  [safety function DEFEATED]"
            } else {
                ""
            }
        );
    }

    println!("\n=== IEC 62443 zone gap analysis ===");
    let controls = control_catalog();
    for deployed in [false, true] {
        let label = if deployed {
            "with controls"
        } else {
            "undefended"
        };
        println!("  {label}:");
        for zone in catalog::worksite_zones(deployed) {
            let gap = zone.gap(&controls);
            println!("    {:<24} {} FR gaps", zone.id, gap.len());
        }
    }

    println!("\n=== generated security assurance case (GSN outline) ===");
    let case = build_security_case(&report, "forestry worksite");
    let text = case.render_text();
    // Print the first levels only; the full case is large.
    for line in text.lines().take(26) {
        println!("{line}");
    }
    let total = text.lines().count();
    println!("  … ({} more lines)", total.saturating_sub(26));
    println!(
        "\ncase: {} nodes, {} evidence items, goal coverage {:.0}%, structural defects: {}",
        case.nodes().len(),
        case.evidence().len(),
        case.goal_coverage() * 100.0,
        case.check().len()
    );
}
