//! Quickstart: commission a worksite PKI, establish a secure channel,
//! run the worksite for ten simulated minutes, and print the
//! CE-certification verdict.
//!
//! Run with: `cargo run -p silvasec --example quickstart`

use silvasec::certify::certify_worksite;
use silvasec::prelude::*;

fn main() {
    // --- 1. The security substrate in isolation ---------------------
    // A root CA, two certified machines, and an authenticated channel.
    let mut root =
        CertificateAuthority::new_root("worksite-root", &[1u8; 32], Validity::new(0, 1_000_000));
    let store = TrustStore::with_roots([root.certificate().clone()]);

    let fw_key = silvasec::crypto::schnorr::SigningKey::from_seed(&[2u8; 32]);
    let fw_cert = root.issue_mut(
        &Subject::new("forwarder-01", ComponentRole::Forwarder),
        &fw_key.verifying_key(),
        KeyUsage::AUTHENTICATION,
        Validity::new(0, 500_000),
    );
    let bs_key = silvasec::crypto::schnorr::SigningKey::from_seed(&[3u8; 32]);
    let bs_cert = root.issue_mut(
        &Subject::new("base-01", ComponentRole::BaseStation),
        &bs_key.verifying_key(),
        KeyUsage::AUTHENTICATION,
        Validity::new(0, 500_000),
    );

    let policy = HandshakePolicy::new(store, 100);
    let (init, hello) =
        Initiator::start(Identity::new(vec![fw_cert], fw_key), [4u8; 32], [5u8; 32]);
    let (resp, reply) = Responder::respond(
        Identity::new(vec![bs_cert], bs_key),
        &policy,
        &hello,
        [6u8; 32],
        [7u8; 32],
    )
    .expect("responder accepts certified peer");
    let (mut fw_session, finished) = init.finish(&policy, &reply).expect("initiator accepts");
    let mut bs_session = resp.complete(&finished).expect("handshake completes");

    let record = fw_session.seal(b"loads=3;pos=120.5,88.2").expect("seal");
    let plain = bs_session.open(&record).expect("authentic record opens");
    println!(
        "secure channel up: base station authenticated '{}'",
        bs_session.peer_id()
    );
    println!("  telemetry: {}", String::from_utf8_lossy(&plain));

    // --- 2. The full worksite ----------------------------------------
    let mut site = Worksite::new(&WorksiteConfig::default(), 42);
    site.run(SimDuration::from_secs(600));
    let m = site.metrics();
    println!("\nten simulated minutes of operation:");
    println!("  loads delivered:    {}", m.loads_delivered);
    println!("  distance driven:    {:.0} m", m.distance_m);
    println!("  telemetry delivery: {:.1}%", m.delivery_ratio() * 100.0);
    println!("  safety incidents:   {}", m.safety_incidents.len());
    println!("  supervisor stops:   {}", m.stop_events);

    // --- 3. The certification pipeline --------------------------------
    let report = certify_worksite(true);
    println!("\ncertification pipeline over the hardened worksite:");
    println!("  risks assessed:     {}", report.risk_count);
    println!("  high risks:         {}", report.high_risk_count);
    println!("  requirements:       {}", report.requirement_count);
    println!("  goal coverage:      {:.0}%", report.goal_coverage * 100.0);
    println!("  verdict:            {:?}", report.verdict);
}
