//! The Figure 1 worksite under a multi-phase attack campaign, run twice:
//! once undefended (the paper's implicit baseline) and once with the full
//! security posture. Prints a side-by-side comparison.
//!
//! Run with: `cargo run --release -p silvasec --example worksite_under_attack`

use silvasec::experiments::standard_config;
use silvasec::prelude::*;

fn scripted_attacks(site: &mut Worksite) {
    // Phase 1: de-auth flood against the forwarder.
    site.attack_engine_mut().add_campaign(AttackCampaign {
        kind: AttackKind::DeauthFlood,
        target: AttackTarget::Link {
            spoof_as: NodeId(0),
            victim: NodeId(1),
        },
        start: SimTime::from_secs(120),
        duration: SimDuration::from_secs(90),
        intensity: 1.0,
    });
    // Phase 2: broadband jamming over the stand.
    site.attack_engine_mut().add_campaign(AttackCampaign {
        kind: AttackKind::RfJamming,
        target: AttackTarget::Area {
            center: Vec2::new(150.0, 150.0),
            radius_m: 400.0,
        },
        start: SimTime::from_secs(300),
        duration: SimDuration::from_secs(120),
        intensity: 0.9,
    });
    // Phase 3: camera blinding while the machine works.
    site.attack_engine_mut().add_campaign(AttackCampaign {
        kind: AttackKind::CameraBlinding,
        target: AttackTarget::Machine {
            label: "forwarder-01".into(),
        },
        start: SimTime::from_secs(480),
        duration: SimDuration::from_secs(120),
        intensity: 1.0,
    });
    // Phase 4: replay of captured traffic.
    site.attack_engine_mut().add_campaign(AttackCampaign {
        kind: AttackKind::Replay,
        target: AttackTarget::Network,
        start: SimTime::from_secs(660),
        duration: SimDuration::from_secs(90),
        intensity: 1.0,
    });
}

fn run(posture: SecurityPosture, label: &str) -> silvasec::sos::metrics::WorksiteMetrics {
    let mut site = Worksite::new(&standard_config(posture), 7);
    scripted_attacks(&mut site);
    site.run(SimDuration::from_secs(900));
    let m = site.metrics().clone();
    println!("--- {label} ---");
    println!("  loads delivered:      {}", m.loads_delivered);
    println!("  telemetry delivery:   {:.1}%", m.delivery_ratio() * 100.0);
    println!(
        "  drone feed available: {:.1}%",
        m.drone_feed_ratio() * 100.0
    );
    println!("  forged msgs accepted: {}", m.forged_accepted);
    println!("  auth failures (rej.): {}", m.auth_failures);
    println!("  safety incidents:     {}", m.safety_incidents.len());
    println!("  danger-zone exposure: {} ticks", m.danger_zone_ticks);
    println!("  protective stops:     {}", m.security_stops);
    if m.alerts.is_empty() {
        println!("  IDS alerts:           (none — IDS disabled or silent)");
    } else {
        for (kind, count) in &m.alerts {
            let first = m
                .first_alert_at
                .get(kind)
                .map(|t| format!("first at {t}"))
                .unwrap_or_default();
            println!("  IDS alert {kind}: ×{count} ({first})");
        }
    }
    println!();
    m
}

fn main() {
    println!("fifteen simulated minutes, four attack phases\n");
    let insecure = run(SecurityPosture::insecure(), "undefended worksite");
    let secure = run(SecurityPosture::secure(), "hardened worksite");

    println!("--- comparison ---");
    println!(
        "  forged traffic:  {} accepted undefended vs {} hardened",
        insecure.forged_accepted, secure.forged_accepted
    );
    println!(
        "  attacks visible: {} alert kinds undefended vs {} hardened",
        insecure.alerts.len(),
        secure.alerts.len()
    );
}
