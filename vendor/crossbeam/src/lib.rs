//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::thread::scope` API surface the workspace
//! uses for its parallel sweep engine, implemented on top of
//! `std::thread::scope` (stabilized since Rust 1.63, so the standard
//! library can carry the whole load). Semantics match crossbeam's: the
//! closure receives a [`thread::Scope`] handle, spawned threads may
//! borrow from the enclosing stack frame, and every thread is joined
//! before `scope` returns.

pub use thread::scope;

/// Scoped thread spawning.
pub mod thread {
    /// A handle for spawning threads that may borrow from the caller's
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so workers can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads; all spawned
    /// threads are joined before this returns. Mirrors
    /// `crossbeam::thread::scope`, which reports closure panics through
    /// the `Err` variant — with `std::thread::scope` underneath, a panic
    /// in the closure or an unjoined thread propagates instead, so the
    /// result here is always `Ok`.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this vendored implementation (kept for
    /// crossbeam API compatibility).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn workers_can_spawn_siblings() {
        let n = super::thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
