//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` value-tree data model, parsing the item directly
//! from the token stream (no `syn`/`quote` available offline).
//!
//! Supported shapes — everything this workspace derives on:
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, wider tuple
//!   structs as arrays),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, the
//!   upstream serde default).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// A parsed field list.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// A parsed enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed derive input item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` for structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for structs and enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    skip_generics(&mut tokens);

    match kind.as_str() {
        "struct" => {
            // Body is `{ named }`, `( tuple );` or `;`.
            let fields = match tokens.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let g = expect_group(&mut tokens);
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let g = expect_group(&mut tokens);
                    Fields::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                // `struct Foo where ...;` — not used in this workspace.
                other => panic!("serde_derive: unsupported struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let g = expect_group(&mut tokens);
            Item::Enum {
                name,
                variants: parse_variants(g),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attributes(tokens: &mut Tokens) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde_derive: malformed attribute: {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Skips a `<...>` generic parameter list (balanced on angle depth).
fn skip_generics(tokens: &mut Tokens) {
    let starts = matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<');
    if !starts {
        return;
    }
    let mut depth = 0i32;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }
    panic!("serde_derive: unbalanced generics");
}

fn expect_group(tokens: &mut Tokens) -> proc_macro::Group {
    match tokens.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde_derive: expected a delimited group, got {other:?}"),
    }
}

/// Parses `name: Type, ...` out of a brace group, skipping attributes,
/// visibility and the type tokens.
fn parse_named_fields(group: proc_macro::Group) -> Vec<String> {
    let mut tokens: Tokens = group.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_top_level_comma(&mut tokens);
        fields.push(name);
    }
    fields
}

/// Counts the fields of a paren group (`(A, B<C, D>, E)` → 3).
fn count_tuple_fields(group: proc_macro::Group) -> usize {
    let mut tokens: Tokens = group.stream().into_iter().peekable();
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut depth = 0i32;
    for tok in tokens.by_ref() {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

/// Consumes type (or expression) tokens up to and including a top-level
/// `,`, balancing `<...>` nesting. Delimited groups are atomic tokens, so
/// only angle brackets need tracking.
fn skip_until_top_level_comma(tokens: &mut Tokens) {
    let mut depth = 0i32;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_variants(group: proc_macro::Group) -> Vec<Variant> {
    let mut tokens: Tokens = group.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = expect_group(&mut tokens);
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = expect_group(&mut tokens);
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_until_top_level_comma(&mut tokens);
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

const ALLOW: &str =
    "#[automatically_derived]\n#[allow(clippy::all, clippy::pedantic, unused_variables)]\n";

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let mut pushes = String::new();
            for f in names {
                pushes.push_str(&format!(
                    "pairs.push((\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            format!(
                "let mut pairs: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(pairs)"
            )
        }
        Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "{ALLOW}impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let mut inits = String::new();
            for f in names {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(v.get_field(\"{f}\"))?,\n"
                ));
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "match v.as_array() {{\n\
                 ::std::option::Option::Some(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}({items})),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected a {n}-element array for {name}\")),\n}}",
                items = items.join(", ")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "{ALLOW}impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                 ::serde::Serialize::serialize(f0))]),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(f{i})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                     ::serde::Value::Array(vec![{items}]))]),\n",
                    binds = binds.join(", "),
                    items = items.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let binds = fields.join(", ");
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\
                     \"{vn}\".to_string(), ::serde::Value::Object(vec![{items}]))]),\n",
                    items = items.join(", ")
                ));
            }
        }
    }
    format!(
        "{ALLOW}impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            Fields::Tuple(1) => data_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                 ::serde::Deserialize::deserialize(inner)?)),\n"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => match inner.as_array() {{\n\
                     ::std::option::Option::Some(items) if items.len() == {n} => \
                     ::std::result::Result::Ok({name}::{vn}({items})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected a {n}-element array for variant {vn}\")),\n}},\n",
                    items = items.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::Deserialize::deserialize(inner.get_field(\"{f}\"))?")
                    })
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),\n",
                    inits = inits.join(", ")
                ));
            }
        }
    }
    format!(
        "{ALLOW}impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         match v {{\n\
         ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
         _ => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown variant {{s}} for {name}\"))),\n}},\n\
         ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
         let (tag, inner) = &pairs[0];\n\
         match tag.as_str() {{\n{data_arms}\
         _ => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown variant {{tag}} for {name}\"))),\n}}\n}},\n\
         _ => ::std::result::Result::Err(::serde::Error::custom(\
         \"expected a string or single-key object for enum {name}\")),\n}}\n}}\n}}"
    )
}
