//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the workspace vendors a small, self-consistent serialization
//! framework under the familiar `serde` names. The data model is a JSON
//! value tree ([`Value`]): `Serialize` renders a type into a [`Value`],
//! `Deserialize` reconstructs the type from one, and the companion
//! `serde_json` vendor crate prints/parses that tree as real JSON.
//!
//! The `#[derive(Serialize, Deserialize)]` macros (from the vendored
//! `serde_derive`) cover the shapes this workspace uses: structs with
//! named fields, tuple/newtype structs, and enums with unit, tuple and
//! struct variants (externally tagged, like upstream serde).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept exact for the integer kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative (or generally signed) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for large integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The value as `u64`, if exactly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if exactly representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks up a field of an object; missing fields read as `Null` so
    /// that `Option` fields deserialize to `None`.
    #[must_use]
    pub fn get_field(&self, name: &str) -> &Value {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    other => type_error(stringify!($t), other),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let i = i64::from(*self);
                if i >= 0 { Value::Number(Number::U(i as u64)) } else { Value::Number(Number::I(i)) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    other => type_error(stringify!($t), other),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::Number(Number::U(*self as u64))
    }
}
impl Deserialize for usize {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        u64::deserialize(v).and_then(|u| {
            usize::try_from(u).map_err(|_| Error::custom("number out of range for usize"))
        })
    }
}

impl Serialize for isize {
    fn serialize(&self) -> Value {
        (*self as i64).serialize()
    }
}
impl Deserialize for isize {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        i64::deserialize(v).and_then(|i| {
            isize::try_from(i).map_err(|_| Error::custom("number out of range for isize"))
        })
    }
}

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        match u64::try_from(*self) {
            Ok(u) => Value::Number(Number::U(u)),
            Err(_) => Value::String(self.to_string()),
        }
    }
}
impl Deserialize for u128 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => n
                .as_u64()
                .map(u128::from)
                .ok_or_else(|| Error::custom("invalid u128")),
            Value::String(s) => s.parse().map_err(|_| Error::custom("invalid u128 string")),
            other => type_error("u128", other),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let f = f64::from(*self);
                if f.is_finite() { Value::Number(Number::F(f)) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // Non-finite floats serialize to null; restore as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    other => type_error("float", other),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_error("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::deserialize(item)?;
                }
                Ok(out)
            }
            other => type_error("fixed-size array", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => type_error("tuple array", other),
                }
            }
        }
    )+};
}
impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Renders a map key: JSON object keys must be strings, so keys are
/// accepted when they serialize to a string or a number (numbers are
/// stringified, as upstream `serde_json` does).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.serialize() {
        Value::String(s) => s,
        Value::Number(Number::U(u)) => u.to_string(),
        Value::Number(Number::I(i)) => i.to_string(),
        Value::Number(Number::F(f)) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!(
            "map key must serialize to a string or number, got {}",
            other.kind()
        ),
    }
}

/// Reconstructs a map key from its string form: first as a string value,
/// then (for numeric key types) as a parsed number.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(f) = s.parse::<f64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::F(f))) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!(
        "cannot reconstruct map key from {s:?}"
    )))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.serialize()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sorted by key so serialized output is deterministic even though
        // HashMap iteration order is not.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
