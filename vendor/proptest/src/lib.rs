//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]` header),
//! [`any`], integer-range strategies, [`collection::vec`],
//! [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Generation is a fixed-seed xorshift stream, so every run explores the
//! same cases: failures are reproducible by construction (the upstream
//! crate persists regressions to disk instead; offline we prefer full
//! determinism). There is no shrinking — the failing inputs are printed
//! as generated.

use std::fmt;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A test-case failure raised by `prop_assert!`/`prop_assert_eq!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic generator for case number `case` of test `name`.
    #[must_use]
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng { state: h.max(1) }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Marker for types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// An unconstrained strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (u128::from(rng.next_u64()) % span) as $t;
                self.start.wrapping_add(offset)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                let offset = (u128::from(rng.next_u64()) % span) as $t;
                self.start.wrapping_add(offset)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                let offset = (u128::from(rng.next_u64()) % span) as $t;
                self.start().wrapping_add(offset)
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_signed_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a broad range; property tests here do
        // not rely on NaN/infinity inputs.
        let mantissa = rng.next_u64() as f64 / u64::MAX as f64;
        let exp = (rng.next_u64() % 41) as i32 - 20;
        (mantissa * 2.0 - 1.0) * 10f64.powi(exp)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let v = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        out
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy generating `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.len, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn prop(x in 0u64..100, bytes in any::<[u8; 32]>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::deterministic(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}
