//! Offline stand-in for `serde_json`: prints and parses the vendored
//! `serde` value tree as JSON text.
//!
//! Supports the workspace's full usage surface: [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`] and [`from_slice`],
//! with proper string escaping, `\uXXXX` decoding, exact integer
//! round-trips and a recursion depth limit on the parser.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Number, Value};
use std::fmt::Write as _;

/// A specialized `Result` for JSON conversions.
pub type Result<T> = std::result::Result<T, Error>;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::deserialize(&value)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) => {
            if f.is_finite() {
                // `{}` prints the shortest representation that round-trips.
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{kw}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::custom("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected byte `{}` at {}",
                char::from(b),
                self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 character. The input came from a
                    // validated &str and pos stays on char boundaries, so
                    // decoding the next 1–4 bytes always succeeds.
                    let width = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = chunk
                        .chars()
                        .next()
                        .ok_or_else(|| Error::custom("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>(&to_string(&0.1f64).unwrap()).unwrap(), 0.1);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v).unwrap()).unwrap(), v);
        let m: std::collections::HashMap<String, u64> =
            [("a".to_string(), 1u64), ("b".to_string(), 2)]
                .into_iter()
                .collect();
        let round: std::collections::HashMap<String, u64> =
            from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(round, m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u8>>("[1,2,").is_err());
    }

    #[test]
    fn pretty_has_indentation() {
        let s = to_string_pretty(&vec![1u8]).unwrap();
        assert!(s.contains("\n  1"));
    }
}
