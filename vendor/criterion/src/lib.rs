//! Offline stand-in for the `criterion` crate.
//!
//! The offline build environment cannot fetch the real statistical
//! harness, so this vendored shim keeps every bench target compiling and
//! runnable: each registered benchmark body executes a small fixed number
//! of iterations and reports its mean wall time. That keeps
//! `cargo test`/`cargo bench` fast while still exercising the bench code
//! paths end to end. The workspace's real performance trajectory is
//! tracked by the `perf_snapshot` binary instead (see `BENCH_*.json`).

use std::fmt::Display;
use std::time::Instant;

/// How many times each benchmark body runs (enough for a smoke signal,
/// cheap enough for CI).
const ITERATIONS: u32 = 3;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher { total_iters: 0 };
    let start = Instant::now();
    f(&mut bencher);
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_secs_f64() / f64::from(ITERATIONS.max(1));
    println!(
        "bench {label}: {:.3} ms/iter (shim, {ITERATIONS} iters)",
        per_iter * 1e3
    );
}

/// Passed to benchmark bodies to drive the measured code.
#[derive(Debug)]
pub struct Bencher {
    total_iters: u64,
}

impl Bencher {
    /// Runs the measured closure a fixed number of times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERATIONS {
            std::hint::black_box(f());
            self.total_iters += 1;
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput hint for a benchmark (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Prevents the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness-less bench binary is invoked
            // with `--test`; run the benches anyway — they are cheap in
            // this shim — unless listing was requested.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}
