//! Fleet operations for autonomous forestry machines: secure OTA update
//! distribution and fleet-scale security operations.
//!
//! Every other crate in the workspace operates at the scale of one
//! worksite. This crate manages *N* worksites from a central backend and
//! adds the two capabilities a certified fleet operator needs:
//!
//! * **Secure OTA updates** — update bundles (firmware images + manifest
//!   with a monotone version) signed under the fleet PKI
//!   ([`bundle`]), distributed in chunks over the simulated radio
//!   uplink with retransmission under loss and jamming ([`transport`]),
//!   verified and applied through secure-boot update authorization with
//!   anti-rollback, staged canary-then-waves rollout with an automatic
//!   halt on an IDS alert spike ([`rollout`], [`Fleet::run_rollout`]);
//! * **Fleet security operations** — a SIEM-style aggregator draining
//!   each worksite's security-event ring into cross-site correlation
//!   (same attack class on *k* sites within a window ⇒ coordinated
//!   campaign, [`siem`]) feeding the continuous risk assessment, so a
//!   disclosed vulnerability raises fleet risk and a completed rollout
//!   lowers it again. The SIEM correlator streams: it holds bounded
//!   per-class sliding windows (with observable drop counters), not a
//!   global alert vector, so memory is O(sites + window).
//! * **Two-fidelity fleet scaling** — a deterministically sampled subset
//!   of sites runs as full [`Worksite`] simulations while the rest live
//!   as a compact struct-of-arrays shadow population ([`shadow`]),
//!   sharded across the deterministic sweep worker pool with an
//!   order-preserving merge and one Fiat–Shamir batched bundle
//!   verification per shard, so a million-site control plane stays
//!   tractable and byte-identical to a sequential reference.
//! * **Live TARA hypotheses** — with [`FleetConfig::tara`] set, the
//!   generative TARA of `silvasec-tara` ranks the worksite's threat
//!   scenarios at commissioning and the fleet carries the top-k as
//!   live hypotheses: SIEM-correlated campaigns confirm them,
//!   completed mitigations retire them, and every transition lands in
//!   the fleet trace as a `TaraHypothesis` event.
//!
//! [`Worksite`]: silvasec_sos::Worksite
//!
//! Everything is deterministic: the same seed yields a byte-identical
//! fleet trace ([`Fleet::export_trace_jsonl`]).
//!
//! ```
//! use silvasec_fleet::{Fleet, FleetConfig};
//!
//! let mut fleet = Fleet::new(FleetConfig { sites: 2, ..FleetConfig::default() }, 7);
//! let report = fleet.run_rollout(2);
//! assert!(report.completed);
//! assert_eq!(fleet.installed_version(0), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod fleet;
pub mod rollout;
pub mod shadow;
pub mod siem;
pub mod transport;

pub use bundle::{BundleError, UpdateBundle, UpdateManifest};
pub use fleet::{
    Fleet, FleetBackend, FleetConfig, FleetSecuritySnapshot, TaraConfig, FLEET_COMPONENT,
};
pub use rollout::{RolloutPhase, RolloutPolicy, RolloutReport};
pub use shadow::{ShadowConfig, ShadowLayout, ShadowPopulation, SiteSlot};
pub use siem::{CorrelatedCampaign, FleetSiem, SiemConfig};
pub use transport::{chunk_payloads, ChunkHeader, Delivery, Reassembly, Uplink};

/// Convenient glob import for fleet scenarios.
pub mod prelude {
    pub use crate::bundle::{BundleError, UpdateBundle, UpdateManifest};
    pub use crate::fleet::{
        Fleet, FleetBackend, FleetConfig, FleetSecuritySnapshot, TaraConfig, FLEET_COMPONENT,
    };
    pub use crate::rollout::{RolloutPolicy, RolloutReport};
    pub use crate::shadow::{ShadowConfig, ShadowLayout, ShadowPopulation, SiteSlot};
    pub use crate::siem::{CorrelatedCampaign, FleetSiem, SiemConfig};
}
