//! Fleet SIEM: streaming cross-site correlation of worksite security
//! telemetry.
//!
//! Each worksite already keeps a security-event ring (IDS alerts,
//! handshake failures, boot measurements). The fleet backend drains
//! those rings and correlates across sites: the same attack class
//! reported by `k` distinct sites inside a sliding window is no longer
//! k local incidents — it is one coordinated campaign against the
//! fleet, and is escalated as such into the continuous risk assessment.
//!
//! # Memory model
//!
//! The correlator is *streaming*: each alert class keeps one bounded
//! sliding window ([`SiemConfig::window_capacity`] observations) instead
//! of an unbounded per-class alert vector, so correlator memory is
//! `O(classes × window)` no matter how many alerts a million-site fleet
//! produces. When a window overflows, the oldest observation is evicted
//! and counted in [`FleetSiem::window_drops`] — loss is observable,
//! never silent. As long as no window overflows (every fleet of the
//! sizes the tier-1 tests cover), correlation decisions are *identical*
//! to the unbounded reference the correlator replaced, which is what
//! keeps the historical 64-site fleet traces byte-stable.

use silvasec_telemetry::{Event, Record};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Correlation tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiemConfig {
    /// Sliding correlation window in milliseconds.
    pub window_ms: u64,
    /// Distinct sites reporting the same class within the window that
    /// constitute a coordinated campaign.
    pub k_sites: usize,
    /// Maximum observations held per alert class. The oldest observation
    /// is evicted (and counted as a drop) when a class window is full,
    /// bounding correlator memory at fleet scale.
    pub window_capacity: usize,
}

impl Default for SiemConfig {
    fn default() -> Self {
        SiemConfig {
            window_ms: 30_000,
            k_sites: 3,
            window_capacity: 4_096,
        }
    }
}

/// A correlated fleet-level campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelatedCampaign {
    /// The correlated alert class.
    pub class: String,
    /// Distinct sites reporting the class inside the window.
    pub sites: u32,
    /// Correlation instant in fleet milliseconds.
    pub at_ms: u64,
}

/// One alert class's bounded sliding window.
#[derive(Debug, Default)]
struct ClassWindow {
    /// `(site, alert time)` observations in ingest order.
    ring: VecDeque<(u32, u64)>,
    /// Observations evicted because the window was full.
    dropped: u64,
    /// When the class last fired a campaign alert (cooldown of one
    /// window so a sustained campaign is one alert, not hundreds).
    last_fired: Option<u64>,
}

/// The fleet-level streaming aggregator.
#[derive(Debug)]
pub struct FleetSiem {
    config: SiemConfig,
    windows: BTreeMap<String, ClassWindow>,
    campaigns: Vec<CorrelatedCampaign>,
    ingested: u64,
    /// Scratch buffer for distinct-site counting, reused across
    /// [`FleetSiem::correlate`] calls so the hot path stays off the
    /// allocator once warm.
    scratch: Vec<u32>,
}

impl FleetSiem {
    /// Creates an aggregator.
    ///
    /// # Panics
    ///
    /// Panics if `config.window_capacity` is zero — a correlator that
    /// can hold no observations is a configuration bug.
    #[must_use]
    pub fn new(config: SiemConfig) -> Self {
        assert!(config.window_capacity > 0, "window capacity must be > 0");
        FleetSiem {
            config,
            windows: BTreeMap::new(),
            campaigns: Vec::new(),
            ingested: 0,
            scratch: Vec::new(),
        }
    }

    /// Ingests one security record drained from `site`'s ring. Only IDS
    /// alerts participate in correlation; everything else is counted and
    /// dropped. Returns the alert class when the record was an alert.
    pub fn ingest(&mut self, site: u32, record: &Record) -> Option<String> {
        if let Event::IdsAlert { class, .. } = &record.event {
            let class = class.as_str().to_string();
            self.ingest_alert(site, &class, record.at.as_millis());
            Some(class)
        } else {
            self.ingested += 1;
            None
        }
    }

    /// Ingests one alert by class directly — the non-allocating fast
    /// path the shadow population feeds (no `Record` is ever built for a
    /// shadow alert). Allocates only the first time a class is seen.
    pub fn ingest_alert(&mut self, site: u32, class: &str, at_ms: u64) {
        self.ingested += 1;
        let window = match self.windows.get_mut(class) {
            Some(window) => window,
            None => self.windows.entry(class.to_string()).or_default(),
        };
        if window.ring.len() >= self.config.window_capacity {
            window.ring.pop_front();
            window.dropped += 1;
        }
        window.ring.push_back((site, at_ms));
    }

    /// Runs correlation at `now_ms`: ages observations older than the
    /// window out of each class ring and fires a campaign per class seen
    /// on at least [`SiemConfig::k_sites`] distinct sites.
    pub fn correlate(&mut self, now_ms: u64) -> Vec<CorrelatedCampaign> {
        let horizon = now_ms.saturating_sub(self.config.window_ms);
        let mut fired = Vec::new();
        for (class, window) in &mut self.windows {
            window.ring.retain(|&(_, at)| at >= horizon);
            if window.ring.len() < self.config.k_sites {
                continue;
            }
            self.scratch.clear();
            self.scratch
                .extend(window.ring.iter().map(|&(site, _)| site));
            self.scratch.sort_unstable();
            self.scratch.dedup();
            if self.scratch.len() < self.config.k_sites {
                continue;
            }
            let cooled = window
                .last_fired
                .is_none_or(|at| now_ms >= at + self.config.window_ms);
            if !cooled {
                continue;
            }
            window.last_fired = Some(now_ms);
            fired.push(CorrelatedCampaign {
                class: class.clone(),
                sites: self.scratch.len() as u32,
                at_ms: now_ms,
            });
        }
        self.campaigns.extend(fired.iter().cloned());
        fired
    }

    /// Every campaign correlated so far.
    #[must_use]
    pub fn campaigns(&self) -> &[CorrelatedCampaign] {
        &self.campaigns
    }

    /// Total records ingested.
    #[must_use]
    pub fn records_ingested(&self) -> u64 {
        self.ingested
    }

    /// Observations evicted across every class window because the
    /// bounded ring was full — the streaming correlator's loss counter.
    #[must_use]
    pub fn window_drops(&self) -> u64 {
        self.windows.values().map(|w| w.dropped).sum()
    }

    /// Per-class `(class, dropped)` eviction counters, classes with no
    /// drops included.
    #[must_use]
    pub fn window_drops_by_class(&self) -> Vec<(String, u64)> {
        self.windows
            .iter()
            .map(|(class, w)| (class.clone(), w.dropped))
            .collect()
    }

    /// Observations currently held across every class window — bounded
    /// by `classes × window_capacity` by construction.
    #[must_use]
    pub fn observations_held(&self) -> usize {
        self.windows.values().map(|w| w.ring.len()).sum()
    }

    /// Distinct sites with a `class` observation still held in the
    /// class window, ascending — the blast radius incident-response
    /// containment quarantines when a campaign class must be isolated.
    #[must_use]
    pub fn sites_reporting(&self, class: &str) -> Vec<u32> {
        let Some(window) = self.windows.get(class) else {
            return Vec::new();
        };
        let mut sites: Vec<u32> = window.ring.iter().map(|&(site, _)| site).collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    }

    /// The newest `class` observation still held in its window, if any —
    /// incident-response verification asks this to decide whether the
    /// trouble actually stopped after remediation.
    #[must_use]
    pub fn last_alert_at(&self, class: &str) -> Option<u64> {
        self.windows
            .get(class)
            .and_then(|w| w.ring.iter().map(|&(_, at)| at).max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::time::SimTime;
    use silvasec_telemetry::Label;

    fn alert(site: u32, at_ms: u64, class: &str) -> (u32, Record) {
        (
            site,
            Record {
                at: SimTime::from_millis(at_ms),
                seq: at_ms,
                event: Event::IdsAlert {
                    class: Label::new(class),
                    severity: Label::new("high"),
                },
            },
        )
    }

    #[test]
    fn k_distinct_sites_in_window_fire_once() {
        let mut siem = FleetSiem::new(SiemConfig {
            window_ms: 10_000,
            k_sites: 3,
            ..SiemConfig::default()
        });
        for (site, rec) in [
            alert(0, 1_000, "jamming"),
            alert(1, 2_000, "jamming"),
            alert(1, 2_500, "jamming"), // same site again: still 2 distinct
        ] {
            siem.ingest(site, &rec);
        }
        assert!(siem.correlate(3_000).is_empty());
        let (site, rec) = alert(2, 4_000, "jamming");
        siem.ingest(site, &rec);
        let fired = siem.correlate(4_500);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].class, "jamming");
        assert_eq!(fired[0].sites, 3);
        // Cooldown: the sustained campaign does not re-fire immediately.
        assert!(siem.correlate(5_000).is_empty());
        // ... but does after the window has passed, if still active on
        // enough sites.
        for (site, rec) in [
            alert(3, 14_600, "jamming"),
            alert(4, 14_600, "jamming"),
            alert(5, 14_600, "jamming"),
        ] {
            siem.ingest(site, &rec);
        }
        assert_eq!(siem.correlate(14_600).len(), 1);
    }

    #[test]
    fn stale_observations_age_out() {
        let mut siem = FleetSiem::new(SiemConfig {
            window_ms: 5_000,
            k_sites: 2,
            ..SiemConfig::default()
        });
        let (site, rec) = alert(0, 1_000, "replay");
        siem.ingest(site, &rec);
        let (site, rec) = alert(1, 9_000, "replay");
        siem.ingest(site, &rec);
        // Site 0's alert is out of the window by now.
        assert!(siem.correlate(9_000).is_empty());
        assert_eq!(siem.observations_held(), 1);
    }

    #[test]
    fn non_alert_records_are_counted_not_correlated() {
        let mut siem = FleetSiem::new(SiemConfig::default());
        let rec = Record {
            at: SimTime::from_millis(10),
            seq: 1,
            event: Event::Response {
                action: Label::new("log-only"),
            },
        };
        assert_eq!(siem.ingest(4, &rec), None);
        assert_eq!(siem.records_ingested(), 1);
        assert!(siem.correlate(20).is_empty());
    }

    #[test]
    fn bounded_window_evicts_oldest_and_counts_drops() {
        let mut siem = FleetSiem::new(SiemConfig {
            window_ms: 60_000,
            k_sites: 3,
            window_capacity: 4,
        });
        // Eight distinct sites flood one class: the window holds the
        // last four, and the four evictions are accounted.
        for site in 0..8u32 {
            siem.ingest_alert(site, "jamming", 1_000 + u64::from(site));
        }
        assert_eq!(siem.window_drops(), 4);
        assert_eq!(siem.observations_held(), 4);
        // Correlation still fires off the surviving window...
        let fired = siem.correlate(2_000);
        assert_eq!(fired.len(), 1);
        // ...and reports only the sites the bounded window retained.
        assert_eq!(fired[0].sites, 4);
        assert_eq!(siem.window_drops_by_class(), vec![("jamming".into(), 4)]);
    }

    #[test]
    fn reporting_and_last_seen_queries_track_the_window() {
        let mut siem = FleetSiem::new(SiemConfig {
            window_ms: 5_000,
            k_sites: 2,
            ..SiemConfig::default()
        });
        assert!(siem.sites_reporting("jamming").is_empty());
        assert_eq!(siem.last_alert_at("jamming"), None);
        siem.ingest_alert(3, "jamming", 1_000);
        siem.ingest_alert(1, "jamming", 2_000);
        siem.ingest_alert(3, "jamming", 2_500);
        assert_eq!(siem.sites_reporting("jamming"), vec![1, 3]);
        assert_eq!(siem.last_alert_at("jamming"), Some(2_500));
        // Ageing happens at correlation time: once the window passes,
        // both queries see an empty window again.
        siem.correlate(10_000);
        assert!(siem.sites_reporting("jamming").is_empty());
        assert_eq!(siem.last_alert_at("jamming"), None);
    }

    #[test]
    fn memory_is_bounded_by_capacity_not_alert_volume() {
        let mut siem = FleetSiem::new(SiemConfig {
            window_ms: 60_000,
            k_sites: 3,
            window_capacity: 128,
        });
        for i in 0..100_000u64 {
            siem.ingest_alert((i % 50_000) as u32, "deauth-flood", i);
        }
        assert_eq!(siem.observations_held(), 128);
        assert_eq!(siem.window_drops(), 100_000 - 128);
        assert_eq!(siem.records_ingested(), 100_000);
    }
}
