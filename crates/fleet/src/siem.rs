//! Fleet SIEM: cross-site correlation of worksite security telemetry.
//!
//! Each worksite already keeps a security-event ring (IDS alerts,
//! handshake failures, boot measurements). The fleet backend drains
//! those rings and correlates across sites: the same attack class
//! reported by `k` distinct sites inside a sliding window is no longer
//! k local incidents — it is one coordinated campaign against the
//! fleet, and is escalated as such into the continuous risk assessment.

use silvasec_telemetry::{Event, Record};
use std::collections::BTreeMap;

/// Correlation tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiemConfig {
    /// Sliding correlation window in milliseconds.
    pub window_ms: u64,
    /// Distinct sites reporting the same class within the window that
    /// constitute a coordinated campaign.
    pub k_sites: usize,
}

impl Default for SiemConfig {
    fn default() -> Self {
        SiemConfig {
            window_ms: 30_000,
            k_sites: 3,
        }
    }
}

/// A correlated fleet-level campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelatedCampaign {
    /// The correlated alert class.
    pub class: String,
    /// Distinct sites reporting the class inside the window.
    pub sites: u32,
    /// Correlation instant in fleet milliseconds.
    pub at_ms: u64,
}

/// The fleet-level aggregator.
#[derive(Debug)]
pub struct FleetSiem {
    config: SiemConfig,
    /// Per alert class: (site, alert time) observations, append-ordered.
    observations: BTreeMap<String, Vec<(u32, u64)>>,
    /// Per alert class: when it last fired a campaign alert (cooldown of
    /// one window so a sustained campaign is one alert, not hundreds).
    last_fired: BTreeMap<String, u64>,
    campaigns: Vec<CorrelatedCampaign>,
    ingested: u64,
}

impl FleetSiem {
    /// Creates an aggregator.
    #[must_use]
    pub fn new(config: SiemConfig) -> Self {
        FleetSiem {
            config,
            observations: BTreeMap::new(),
            last_fired: BTreeMap::new(),
            campaigns: Vec::new(),
            ingested: 0,
        }
    }

    /// Ingests one security record drained from `site`'s ring. Only IDS
    /// alerts participate in correlation; everything else is counted and
    /// dropped. Returns the alert class when the record was an alert.
    pub fn ingest(&mut self, site: u32, record: &Record) -> Option<String> {
        self.ingested += 1;
        if let Event::IdsAlert { class, .. } = &record.event {
            let class = class.as_str().to_string();
            self.observations
                .entry(class.clone())
                .or_default()
                .push((site, record.at.as_millis()));
            Some(class)
        } else {
            None
        }
    }

    /// Runs correlation at `now_ms`: prunes observations older than the
    /// window and fires a campaign per class seen on at least
    /// [`SiemConfig::k_sites`] distinct sites.
    pub fn correlate(&mut self, now_ms: u64) -> Vec<CorrelatedCampaign> {
        let horizon = now_ms.saturating_sub(self.config.window_ms);
        let mut fired = Vec::new();
        for (class, obs) in &mut self.observations {
            obs.retain(|&(_, at)| at >= horizon);
            let mut sites: Vec<u32> = obs.iter().map(|&(site, _)| site).collect();
            sites.sort_unstable();
            sites.dedup();
            if sites.len() < self.config.k_sites {
                continue;
            }
            let cooled = self
                .last_fired
                .get(class)
                .is_none_or(|&at| now_ms >= at + self.config.window_ms);
            if !cooled {
                continue;
            }
            self.last_fired.insert(class.clone(), now_ms);
            fired.push(CorrelatedCampaign {
                class: class.clone(),
                sites: sites.len() as u32,
                at_ms: now_ms,
            });
        }
        self.campaigns.extend(fired.iter().cloned());
        fired
    }

    /// Every campaign correlated so far.
    #[must_use]
    pub fn campaigns(&self) -> &[CorrelatedCampaign] {
        &self.campaigns
    }

    /// Total records ingested.
    #[must_use]
    pub fn records_ingested(&self) -> u64 {
        self.ingested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::time::SimTime;
    use silvasec_telemetry::Label;

    fn alert(site: u32, at_ms: u64, class: &str) -> (u32, Record) {
        (
            site,
            Record {
                at: SimTime::from_millis(at_ms),
                seq: at_ms,
                event: Event::IdsAlert {
                    class: Label::new(class),
                    severity: Label::new("high"),
                },
            },
        )
    }

    #[test]
    fn k_distinct_sites_in_window_fire_once() {
        let mut siem = FleetSiem::new(SiemConfig {
            window_ms: 10_000,
            k_sites: 3,
        });
        for (site, rec) in [
            alert(0, 1_000, "jamming"),
            alert(1, 2_000, "jamming"),
            alert(1, 2_500, "jamming"), // same site again: still 2 distinct
        ] {
            siem.ingest(site, &rec);
        }
        assert!(siem.correlate(3_000).is_empty());
        let (site, rec) = alert(2, 4_000, "jamming");
        siem.ingest(site, &rec);
        let fired = siem.correlate(4_500);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].class, "jamming");
        assert_eq!(fired[0].sites, 3);
        // Cooldown: the sustained campaign does not re-fire immediately.
        assert!(siem.correlate(5_000).is_empty());
        // ... but does after the window has passed, if still active on
        // enough sites.
        for (site, rec) in [
            alert(3, 14_600, "jamming"),
            alert(4, 14_600, "jamming"),
            alert(5, 14_600, "jamming"),
        ] {
            siem.ingest(site, &rec);
        }
        assert_eq!(siem.correlate(14_600).len(), 1);
    }

    #[test]
    fn stale_observations_age_out() {
        let mut siem = FleetSiem::new(SiemConfig {
            window_ms: 5_000,
            k_sites: 2,
        });
        let (site, rec) = alert(0, 1_000, "replay");
        siem.ingest(site, &rec);
        let (site, rec) = alert(1, 9_000, "replay");
        siem.ingest(site, &rec);
        // Site 0's alert is out of the window by now.
        assert!(siem.correlate(9_000).is_empty());
    }

    #[test]
    fn non_alert_records_are_counted_not_correlated() {
        let mut siem = FleetSiem::new(SiemConfig::default());
        let rec = Record {
            at: SimTime::from_millis(10),
            seq: 1,
            event: Event::Response {
                action: Label::new("log-only"),
            },
        };
        assert_eq!(siem.ingest(4, &rec), None);
        assert_eq!(siem.records_ingested(), 1);
        assert!(siem.correlate(20).is_empty());
    }
}
