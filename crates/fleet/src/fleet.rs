//! The fleet orchestrator: N worksites, one update backend, one SIEM.

use crate::bundle::{BundleError, UpdateBundle, UpdateManifest};
use crate::rollout::{RolloutPhase, RolloutPolicy, RolloutReport};
use crate::shadow::{
    campaign_class, ShadowCampaign, ShadowConfig, ShadowPopulation, ShadowRolloutCtx, SiteSlot,
    REJECT_REASONS,
};
use crate::siem::{FleetSiem, SiemConfig};
use crate::transport::{Delivery, Uplink};
use serde::Serialize;
use silvasec_attacks::{AttackCampaign, AttackKind, AttackTarget};
use silvasec_crypto::schnorr::SigningKey;
use silvasec_ids::alert::{AlertKind, Severity};
use silvasec_ops::{
    Action, GateDecision, Incident, IncidentScope, OpsCommand, OpsConfig, OpsEngine,
};
use silvasec_pki::{
    Certificate, CertificateAuthority, CertificateRevocationList, ComponentRole, KeyUsage, Subject,
    TrustStore, Validity,
};
use silvasec_risk::catalog::worksite_model;
use silvasec_risk::continuous::{
    alert_class_to_attack_class, ContinuousAssessment, IncidentReport,
};
use silvasec_secure_boot::{Device, FirmwareImage, FirmwareStage};
use silvasec_sim::geom::Vec2;
use silvasec_sim::rng::SimRng;
use silvasec_sim::time::{SimDuration, SimTime};
use silvasec_sos::{Worksite, WorksiteConfig};
use silvasec_tara::{HypothesisSet, ScenarioSpace, TaraCatalog};
use silvasec_telemetry::{Event, EventFilter, EventKind, Label, Recorder, SubscriberId};
use std::collections::{BTreeMap, BTreeSet};

/// The fleet component every site's update device runs (one machine
/// model fleet-wide, so one image serves every site).
pub const FLEET_COMPONENT: &str = "forwarder-fw";

/// PKI validity horizon for fleet credentials, milliseconds.
const VALIDITY_HORIZON_MS: u64 = 365 * 24 * 3600 * 1000;

/// Fleet scenario configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of worksites under management.
    pub sites: usize,
    /// Configuration every worksite is built from.
    pub site: WorksiteConfig,
    /// Staged-rollout policy.
    pub policy: RolloutPolicy,
    /// SIEM correlation tuning.
    pub siem: SiemConfig,
    /// OTA chunk payload size, bytes.
    pub chunk_bytes: usize,
    /// Chunks transmitted per site per tick.
    pub chunks_per_tick: usize,
    /// Nominal backend↔gateway distance, metres (per-site jitter of
    /// ±20% is applied at commissioning).
    pub uplink_range_m: f64,
    /// Firmware image payload size, bytes.
    pub image_payload_bytes: usize,
    /// Upper bound on rollout duration, ticks (a stuck rollout ends with
    /// `completed: false` instead of spinning forever).
    pub max_rollout_ticks: u32,
    /// Two-fidelity mode: when set, only a deterministically-sampled
    /// subset of sites runs the full `Worksite` simulation and the rest
    /// live in the compact sharded shadow population. `None` (the
    /// default) keeps every site full — byte-identical to the
    /// historical behaviour.
    pub shadow: Option<ShadowConfig>,
    /// Incident-response mode: when set, an [`OpsEngine`] rides on the
    /// fleet — site alerts and correlated campaigns open deterministic
    /// response runs whose containment, remediation and verification
    /// execute against the real fleet subsystems. `None` (the default)
    /// keeps incident response off — byte-identical to the historical
    /// behaviour.
    pub ops: Option<OpsConfig>,
    /// Generative-TARA mode: when set, the fleet enumerates and ranks
    /// threat scenarios at commissioning and carries the top-k as live
    /// hypotheses — SIEM-correlated campaigns confirm them, completed
    /// mitigations retire them, every transition a `TaraHypothesis`
    /// trace event. `None` (the default) keeps the generative TARA
    /// off — byte-identical to the historical behaviour.
    pub tara: Option<TaraConfig>,
}

/// Generative-TARA tuning for the fleet's live hypotheses.
#[derive(Debug, Clone, Copy)]
pub struct TaraConfig {
    /// Attack-path variants enumerated per canonical scenario cell
    /// (variant 0 is the unperturbed baseline).
    pub variants: u32,
    /// Ranking capacity: how many top-risk scenarios become live
    /// hypotheses.
    pub top_k: usize,
}

impl Default for TaraConfig {
    fn default() -> Self {
        TaraConfig {
            variants: 2,
            top_k: 64,
        }
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sites: 4,
            site: WorksiteConfig::default(),
            policy: RolloutPolicy::default(),
            siem: SiemConfig::default(),
            chunk_bytes: 768,
            chunks_per_tick: 16,
            uplink_range_m: 140.0,
            image_payload_bytes: 2048,
            max_rollout_ticks: 4_000,
            shadow: None,
            ops: None,
            tara: None,
        }
    }
}

/// The central update backend: fleet CA, firmware signer, bundle
/// history.
#[derive(Debug)]
pub struct FleetBackend {
    root: CertificateAuthority,
    signer: SigningKey,
    signer_chain: Vec<Certificate>,
    store: TrustStore,
    published: Vec<UpdateBundle>,
    next_update_id: u32,
    /// CRLs published by revocation drills, oldest first. Sites check
    /// bundle signer chains against these, so revoking the signer leaf
    /// actually rejects bundles distributed under the old chain.
    crls: Vec<CertificateRevocationList>,
}

impl FleetBackend {
    fn commission(rng: &mut SimRng) -> Self {
        let mut root = CertificateAuthority::new_root(
            "fleet-root",
            &rng.next_seed(),
            Validity::new(0, VALIDITY_HORIZON_MS),
        );
        let signer = SigningKey::from_seed(&rng.next_seed());
        let leaf = root.issue_mut(
            &Subject::new("fleet-fw-signer", ComponentRole::FirmwareSigner),
            &signer.verifying_key(),
            KeyUsage::FIRMWARE_SIGNING,
            Validity::new(0, VALIDITY_HORIZON_MS),
        );
        let store = TrustStore::with_roots([root.certificate().clone()]);
        FleetBackend {
            root,
            signer,
            signer_chain: vec![leaf],
            store,
            published: Vec::new(),
            next_update_id: 1,
            crls: Vec::new(),
        }
    }

    /// Containment: revokes the current firmware-signing leaf, publishes
    /// a CRL, and re-issues a fresh leaf for the *same* signing key.
    ///
    /// Site devices pin the signing key, not the certificate, so bundles
    /// published after the rotation still verify and boot — but anything
    /// distributed under the revoked chain (including the baseline a
    /// downgrade MITM would replay) is rejected with a chain error.
    pub fn revoke_signer(&mut self, now_ms: u64) {
        if let Some(leaf) = self.signer_chain.first() {
            self.root.revoke(leaf.serial, now_ms);
        }
        let crl = self.root.sign_crl(now_ms);
        self.crls.push(crl);
        let leaf = self.root.issue_mut(
            &Subject::new("fleet-fw-signer", ComponentRole::FirmwareSigner),
            &self.signer.verifying_key(),
            KeyUsage::FIRMWARE_SIGNING,
            Validity::new(now_ms, VALIDITY_HORIZON_MS),
        );
        self.signer_chain = vec![leaf];
    }

    /// CRLs published so far (empty until a revocation drill).
    #[must_use]
    pub fn crls(&self) -> &[CertificateRevocationList] {
        &self.crls
    }

    /// Builds, signs and records a new update bundle.
    pub fn publish(
        &mut self,
        version: u32,
        payload_bytes: usize,
        released_at_ms: u64,
        rng: &mut SimRng,
    ) -> UpdateBundle {
        let mut make_payload = |len: usize| {
            let mut payload = vec![0u8; len];
            rng.fill_bytes(&mut payload);
            payload
        };
        let images = vec![
            FirmwareImage::new(
                FLEET_COMPONENT,
                FirmwareStage::Bootloader,
                version,
                make_payload(payload_bytes / 4),
            )
            .sign(&self.signer),
            FirmwareImage::new(
                FLEET_COMPONENT,
                FirmwareStage::Application,
                version,
                make_payload(payload_bytes),
            )
            .sign(&self.signer),
        ];
        let manifest = UpdateManifest {
            component_id: FLEET_COMPONENT.to_string(),
            version,
            channel: "stable".to_string(),
            released_at_ms,
        };
        let bundle = UpdateBundle::build(manifest, images, self.signer_chain.clone(), &self.signer);
        self.published.push(bundle.clone());
        self.next_update_id += 1;
        bundle
    }

    /// The trust store sites verify bundles against.
    #[must_use]
    pub fn trust_store(&self) -> &TrustStore {
        &self.store
    }

    /// The fleet root CA (for revocation drills and inspection).
    #[must_use]
    pub fn root(&self) -> &CertificateAuthority {
        &self.root
    }

    /// The update signer's verifying key (pinned by site devices).
    #[must_use]
    pub fn signer_key(&self) -> silvasec_crypto::schnorr::VerifyingKey {
        self.signer.verifying_key()
    }

    /// Previously published bundles, oldest first.
    #[must_use]
    pub fn published(&self) -> &[UpdateBundle] {
        &self.published
    }
}

/// One managed worksite plus its fleet-facing attachments.
struct FleetSite {
    index: u32,
    site: Worksite,
    uplink: Uplink,
    device: Device,
    installed_version: u32,
    alerts_sub: SubscriberId,
    delivery: Option<Delivery>,
    /// Outcome of the current rollout at this site: `Ok(version)` or the
    /// rejection reason tag.
    outcome: Option<Result<u32, &'static str>>,
}

impl FleetSite {
    /// Verifies and applies a fully received encoded bundle.
    ///
    /// Returns the outcome plus the host wall-clock microseconds the
    /// bundle verification took (`None` when the bundle never decoded,
    /// so there was nothing to verify). The timing is measurement only —
    /// it never influences the simulation or the security trace.
    fn apply(
        &mut self,
        bytes: &[u8],
        store: &TrustStore,
        crls: &[CertificateRevocationList],
        now_ms: u64,
    ) -> (Result<u32, &'static str>, Option<u64>) {
        let bundle = match UpdateBundle::decode(bytes) {
            Ok(bundle) => bundle,
            Err(e) => return (Err(e.reason()), None),
        };
        let verify_started = std::time::Instant::now();
        let verified =
            bundle.verify_with_crls(store, now_ms, crls, FLEET_COMPONENT, self.installed_version);
        let verify_us = u64::try_from(verify_started.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Err(e) = verified {
            // Stash the reason tag; the caller tallies it.
            let reason = match e {
                BundleError::Chain(_) => "chain",
                other => other.reason(),
            };
            return (Err(reason), Some(verify_us));
        }
        let report = self.device.boot(&bundle.images);
        if !report.success {
            return (Err("boot"), Some(verify_us));
        }
        self.installed_version = bundle.manifest.version;
        (Ok(bundle.manifest.version), Some(verify_us))
    }
}

/// The incident-response runtime riding on a fleet: the engine plus
/// the host-side containment state its commands act on.
struct OpsRuntime {
    engine: OpsEngine,
    /// Sites whose alerts are withheld from the SIEM (containment).
    quarantined: BTreeSet<u32>,
    /// Containment has frozen staged rollouts; cleared when an ops
    /// remediation rollout supersedes the halt.
    rollouts_halted: bool,
    /// `OtaRollout` commands awaiting a driver-run remediation rollout
    /// (a rollout is a synchronous multi-tick loop, so it cannot run
    /// inside the tick that issued the command).
    pending_ota: Vec<OpsCommand>,
    /// IDS alerts withheld because their site was quarantined.
    withheld_alerts: u64,
}

/// The deterministic fleet-operations layer.
pub struct Fleet {
    config: FleetConfig,
    backend: FleetBackend,
    sites: Vec<FleetSite>,
    shadows: Option<ShadowPopulation>,
    shadow_campaigns: Vec<ShadowCampaign>,
    siem: FleetSiem,
    risk: ContinuousAssessment,
    tara: Option<HypothesisSet>,
    ops: Option<OpsRuntime>,
    recorder: Recorder,
    trace_sub: SubscriberId,
    campaigns: Vec<AttackCampaign>,
    now: SimTime,
    tick_index: u64,
    rng: SimRng,
}

/// Builds the site-scope incident for one IDS alert; the severity is
/// the alert class's IDS default.
fn site_incident(class: &str, site: u32, at_ms: u64) -> Incident {
    let severity =
        AlertKind::from_class(class).map_or(Severity::Medium, AlertKind::default_severity);
    Incident {
        class: class.to_string(),
        severity,
        scope: IncidentScope::Site(site),
        detected_at_ms: at_ms,
    }
}

impl Fleet {
    /// Commissions a fleet: backend PKI, one worksite per site index,
    /// per-site uplinks, and baseline firmware (version 1) booted on
    /// every site's update device.
    ///
    /// # Panics
    ///
    /// Panics if baseline commissioning fails — a construction bug, not
    /// a runtime condition.
    #[must_use]
    pub fn new(config: FleetConfig, seed: u64) -> Self {
        let root_rng = SimRng::from_seed(seed);
        let mut rng = root_rng.fork("fleet");
        let mut backend = FleetBackend::commission(&mut root_rng.fork("backend"));
        let baseline = backend.publish(1, config.image_payload_bytes, 0, &mut rng);

        let recorder = Recorder::new();
        let trace_sub = recorder.subscribe_filtered("fleet", 65_536, EventFilter::security());
        let mut risk = ContinuousAssessment::new(worksite_model());
        risk.set_recorder(recorder.clone());

        // Generative TARA: enumerate and rank once at commissioning
        // (the model is static), then carry the top-k as live
        // hypotheses wired into the same trace recorder.
        let tara = config.tara.map(|tc| {
            let catalog = TaraCatalog::from_model(&worksite_model());
            let top = ScenarioSpace::new(&catalog, seed, tc.variants, tc.top_k)
                .enumerate()
                .top;
            let mut set = HypothesisSet::from_ranking(top);
            set.set_recorder(recorder.clone());
            set
        });

        // Two-fidelity split: with a shadow config, only the sampled
        // subset is commissioned as a full worksite (keyed by its
        // *global* index, so a full site behaves identically to the same
        // site in an all-full fleet); everything else lives in the
        // compact shadow population.
        let shadows = config
            .shadow
            .map(|sc| ShadowPopulation::new(config.sites, &sc, seed));
        let full_indices: Vec<u32> = match &shadows {
            Some(pop) => pop.layout.full.clone(),
            None => (0..config.sites as u32).collect(),
        };

        let mut sites = Vec::with_capacity(full_indices.len());
        for &i in &full_indices {
            let mut site_rng = root_rng.fork(&format!("fleet-site-{i}"));
            let site = Worksite::new(&config.site, site_rng.next_u64());
            let alerts_sub = site.recorder().subscribe_filtered(
                "fleet-siem",
                1_024,
                EventFilter::none().with(EventKind::IdsAlert),
            );
            let range = config.uplink_range_m * (0.8 + 0.4 * site_rng.uniform());
            let uplink = Uplink::new(range, site_rng.fork("uplink"));
            let mut device = Device::new(FLEET_COMPONENT, backend.signer_key());
            let report = device.boot(&baseline.images);
            assert!(report.success, "baseline firmware must boot");
            sites.push(FleetSite {
                index: i,
                site,
                uplink,
                device,
                installed_version: 1,
                alerts_sub,
                delivery: None,
                outcome: None,
            });
        }

        // The ops engine records into the same recorder as the rest of
        // the fleet, so its audit trail lands in the fleet security
        // trace and the run store replays from that one JSONL stream.
        let ops = config.ops.map(|oc| OpsRuntime {
            engine: OpsEngine::new(oc, recorder.clone()),
            quarantined: BTreeSet::new(),
            rollouts_halted: false,
            pending_ota: Vec::new(),
            withheld_alerts: 0,
        });

        Fleet {
            siem: FleetSiem::new(config.siem),
            config,
            backend,
            sites,
            shadows,
            shadow_campaigns: Vec::new(),
            risk,
            tara,
            ops,
            recorder,
            trace_sub,
            campaigns: Vec::new(),
            now: SimTime::ZERO,
            tick_index: 0,
            rng,
        }
    }

    /// Where a global site index lives: full worksite or shadow slot.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn site_slot(&self, site: u32) -> SiteSlot {
        match &self.shadows {
            Some(pop) => pop.layout.slot_of(site),
            None => {
                assert!(
                    (site as usize) < self.sites.len(),
                    "site {site} out of range"
                );
                SiteSlot::Full(site)
            }
        }
    }

    /// Whether `site` has applied the in-progress rollout, across both
    /// fidelities.
    fn is_site_applied(&self, site: u32) -> bool {
        match self.site_slot(site) {
            SiteSlot::Full(pos) => {
                matches!(self.sites[pos as usize].outcome, Some(Ok(_)))
            }
            SiteSlot::Shadow { shard, slot } => self
                .shadows
                .as_ref()
                .is_some_and(|pop| pop.shard(shard).is_applied(slot)),
        }
    }

    /// Number of shadow-population members of the global site range
    /// `[lo, hi)`.
    fn shadow_members_in(&self, lo: u32, hi: u32) -> usize {
        match &self.shadows {
            Some(pop) => {
                let full = &pop.layout.full;
                let full_in = full.partition_point(|&f| f < hi) - full.partition_point(|&f| f < lo);
                (hi - lo) as usize - full_in
            }
            None => 0,
        }
    }

    /// Schedules a fleet-layer attack campaign. Worksite-layer kinds are
    /// applied to every site's local attack engine instead.
    pub fn schedule_fleet_attack(&mut self, campaign: AttackCampaign) {
        match campaign.kind {
            AttackKind::UpdateTampering
            | AttackKind::Downgrade
            | AttackKind::RolloutPoisoning
            | AttackKind::RfJamming => self.campaigns.push(campaign),
            _ => {
                // Shadow sites model the same campaign as a detection
                // schedule over its active window.
                if self.shadows.is_some() {
                    if let Some(class) = campaign_class(campaign.kind) {
                        let start_ms = campaign.start.as_millis();
                        self.shadow_campaigns.push(ShadowCampaign {
                            class,
                            start_ms,
                            end_ms: start_ms + campaign.duration.as_millis(),
                        });
                    }
                }
                for fs in &mut self.sites {
                    fs.site.attack_engine_mut().add_campaign(campaign.clone());
                }
            }
        }
    }

    /// Schedules a worksite-layer attack on one site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn schedule_site_attack(&mut self, site: usize, campaign: AttackCampaign) {
        self.sites[site]
            .site
            .attack_engine_mut()
            .add_campaign(campaign);
    }

    /// Feeds a disclosed vulnerability into the continuous assessment —
    /// fleet risk rises before any machine is attacked, which is exactly
    /// what motivates the next rollout.
    pub fn disclose_vulnerability(&mut self, attack_class: &str) {
        let incident = IncidentReport {
            attack_class: alert_class_to_attack_class(attack_class).to_string(),
            at_ms: self.now.as_millis(),
        };
        self.risk.ingest(&incident);
    }

    fn kind_active(&self, kind: AttackKind) -> bool {
        self.campaigns
            .iter()
            .any(|c| c.kind == kind && c.active_at(self.now))
    }

    /// Advances the whole fleet by one tick: every worksite steps, the
    /// SIEM drains and correlates their security rings, and correlated
    /// campaigns feed the continuous risk assessment. Returns the IDS
    /// alerts drained this tick as `(site, at_ms)` pairs.
    pub fn tick(&mut self) -> Vec<(u32, u64)> {
        let prev = self.now;
        self.now += self.config.site.tick;
        self.tick_index += 1;
        self.recorder.advance(self.now);

        // Fleet-layer jamming applies to every uplink while active.
        let jamming = self
            .campaigns
            .iter()
            .find(|c| c.kind == AttackKind::RfJamming && c.active_at(self.now))
            .map(|c| c.intensity);
        for fs in &mut self.sites {
            match jamming {
                Some(intensity) => fs.uplink.set_jamming(true, 10.0 + 30.0 * intensity),
                None => fs.uplink.set_jamming(false, 0.0),
            }
        }

        let ops_on = self.ops.is_some();
        let mut incidents: Vec<Incident> = Vec::new();
        let mut withheld = 0u64;
        let mut alerts = Vec::new();
        for fs in &mut self.sites {
            fs.site.tick();
            // Containment: a quarantined site is off the air — its ring
            // still drains (bounded memory) but nothing reaches the SIEM.
            let quarantined = self
                .ops
                .as_ref()
                .is_some_and(|o| o.quarantined.contains(&fs.index));
            for record in fs.site.recorder().drain(fs.alerts_sub) {
                if quarantined {
                    withheld += 1;
                    continue;
                }
                if let Some(class) = self.siem.ingest(fs.index, &record) {
                    let at_ms = record.at.as_millis();
                    alerts.push((fs.index, at_ms));
                    if ops_on {
                        incidents.push(site_incident(&class, fs.index, at_ms));
                    }
                }
            }
        }

        // Shadow alerts, sharded over the sweep pool and merged in shard
        // order after the full sites — a deterministic stream order.
        if let Some(shadows) = &mut self.shadows {
            for alert in shadows.alert_sweep(
                &self.shadow_campaigns,
                prev.as_millis(),
                self.now.as_millis(),
            ) {
                if self
                    .ops
                    .as_ref()
                    .is_some_and(|o| o.quarantined.contains(&alert.site))
                {
                    withheld += 1;
                    continue;
                }
                self.siem.ingest_alert(alert.site, alert.class, alert.at_ms);
                alerts.push((alert.site, alert.at_ms));
                if ops_on {
                    incidents.push(site_incident(alert.class, alert.site, alert.at_ms));
                }
            }
        }

        let now_ms = self.now.as_millis();
        for campaign in self.siem.correlate(now_ms) {
            self.recorder.record_at(
                self.now,
                Event::CampaignAlert {
                    class: Label::new(&campaign.class),
                    sites: campaign.sites,
                },
            );
            self.risk.ingest(&IncidentReport {
                attack_class: alert_class_to_attack_class(&campaign.class).to_string(),
                at_ms: campaign.at_ms,
            });
            if let Some(tara) = &mut self.tara {
                // Correlated multi-site evidence confirms every open
                // hypothesis of the campaign's attack class.
                tara.confirm(
                    alert_class_to_attack_class(&campaign.class),
                    campaign.sites,
                    campaign.at_ms,
                );
            }
            if ops_on {
                // A correlated multi-site campaign is always critical:
                // it passes no auto-approve gate without review.
                incidents.push(Incident {
                    class: campaign.class.clone(),
                    severity: Severity::Critical,
                    scope: IncidentScope::Fleet {
                        sites: campaign.sites,
                    },
                    detected_at_ms: campaign.at_ms,
                });
            }
        }

        if let Some(ops) = &mut self.ops {
            ops.withheld_alerts += withheld;
            for incident in &incidents {
                ops.engine.enqueue_incident(incident, now_ms);
            }
            let cmds = ops.engine.tick(now_ms);
            self.ops_run_commands(cmds, now_ms);
        }
        alerts
    }

    /// Pumps the ops command loop: executes each command against the
    /// fleet subsystems and feeds completions back until the engine
    /// blocks. Deferred commands (remediation rollouts) accumulate for
    /// [`Fleet::run_ops_remediations`].
    fn ops_run_commands(&mut self, mut cmds: Vec<OpsCommand>, now_ms: u64) {
        while let Some(cmd) = cmds.pop() {
            match self.ops_execute(&cmd, now_ms) {
                Some(ok) => {
                    let ops = self.ops.as_mut().expect("pump runs only with ops on");
                    cmds.extend(ops.engine.complete(cmd.id, ok, now_ms));
                }
                None => {
                    let ops = self.ops.as_mut().expect("pump runs only with ops on");
                    ops.pending_ota.push(cmd);
                }
            }
        }
    }

    /// Executes one ops command against the real subsystems. `None`
    /// means the command is deferred (it needs the driver), otherwise
    /// the command's outcome.
    fn ops_execute(&mut self, cmd: &OpsCommand, now_ms: u64) -> Option<bool> {
        match &cmd.action {
            Action::QuarantineSite { site } => {
                let known = (*site as usize) < self.len();
                if known {
                    let ops = self.ops.as_mut().expect("ops on");
                    ops.quarantined.insert(*site);
                }
                Some(known)
            }
            Action::QuarantineReporting { class } => {
                let reporting = self.siem.sites_reporting(class);
                let ops = self.ops.as_mut().expect("ops on");
                ops.quarantined.extend(reporting);
                Some(true)
            }
            Action::RevokeSigner => {
                self.backend.revoke_signer(now_ms);
                Some(true)
            }
            Action::HaltRollout => {
                let ops = self.ops.as_mut().expect("ops on");
                ops.rollouts_halted = true;
                Some(true)
            }
            Action::OtaRollout => None,
            Action::CheckQuiet { class, since_ms } => Some(
                self.siem
                    .last_alert_at(class)
                    .is_none_or(|at| at < *since_ms),
            ),
            Action::MitigateRisk { class } => {
                let attack_class = alert_class_to_attack_class(class);
                self.risk.mitigate(attack_class, now_ms);
                if let Some(tara) = &mut self.tara {
                    tara.retire(attack_class, now_ms);
                }
                Some(true)
            }
        }
    }

    /// Runs the fleet for `duration` with no rollout in progress (attack
    /// campaigns and SIEM correlation still run).
    pub fn run(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        while self.now < end {
            self.tick();
        }
    }

    /// Publishes firmware `version` and distributes it fleet-wide under
    /// the staged rollout policy.
    ///
    /// The rollout proceeds wave by wave (canary first). A wave must
    /// fully resolve (every member applied or rejected) and then soak for
    /// [`RolloutPolicy::observe_ticks`]; IDS alerts raised by wave
    /// members during distribution or soak count towards
    /// [`RolloutPolicy::halt_alert_threshold`], and reaching it halts
    /// the rollout. A fully completed rollout withdraws the
    /// firmware-tampering escalation from the continuous assessment
    /// (the fleet has patched; the field evidence is stale).
    pub fn run_rollout(&mut self, version: u32) -> RolloutReport {
        let mut report = RolloutReport {
            fleet_size: self.len(),
            target_version: version,
            completed: false,
            halted_at_wave: None,
            applied_sites: 0,
            rejected_sites: 0,
            reject_reasons: BTreeMap::new(),
            latency_ms: 0,
            bytes_on_air: 0,
            frames_sent: 0,
            detect_to_halt_ms: None,
            verify_wall_us: 0,
            verify_wall_us_max: 0,
            verify_calls: 0,
            transfer_tampered_sites: 0,
            batch_verify_calls: 0,
            batch_verified_sites: 0,
            individually_verified_sites: 0,
        };
        // Containment freeze: an ops HaltRollout stands — nothing is
        // published or distributed — until a remediation rollout
        // supersedes it ([`Fleet::run_ops_remediations`] clears the
        // flag before calling back in here).
        if self.ops.as_ref().is_some_and(|o| o.rollouts_halted) {
            report.halted_at_wave = Some(0);
            return report;
        }
        let update_id = self.backend.next_update_id;
        let released_at = self.now.as_millis();
        let bundle = self.backend.publish(
            version,
            self.config.image_payload_bytes,
            released_at,
            &mut self.rng,
        );
        let encoded = bundle.encode();
        // The rollback candidate a downgrade attacker would replay: the
        // oldest published bundle (the genuinely signed baseline).
        let old_encoded = self.backend.published.first().map(UpdateBundle::encode);

        for fs in &mut self.sites {
            fs.delivery = None;
            fs.outcome = None;
        }
        if let Some(shadows) = &mut self.shadows {
            shadows.reset_rollout();
        }

        let waves = self.config.policy.waves(self.len());
        let started = self.now;
        let mut wave = 0usize;
        let mut phase = RolloutPhase::Distributing;
        let mut observe_left = 0u32;
        let mut updated_site_alerts = 0u32;
        let mut first_update_alert_ms: Option<u64> = None;
        let mut shadow_resolved_in_wave = 0usize;
        self.record_wave(wave, "start");

        for _ in 0..self.config.max_rollout_ticks {
            let alerts = self.tick();
            for &(site, at_ms) in &alerts {
                // Only alerts from machines running the new firmware
                // implicate the rollout itself.
                if self.is_site_applied(site) {
                    updated_site_alerts += 1;
                    first_update_alert_ms.get_or_insert(at_ms);
                }
            }

            if updated_site_alerts >= self.config.policy.halt_alert_threshold {
                self.record_wave(wave, "halt");
                report.halted_at_wave = Some(wave as u32);
                report.detect_to_halt_ms =
                    first_update_alert_ms.map(|at| self.now.as_millis().saturating_sub(at));
                break;
            }

            match phase {
                RolloutPhase::Distributing => {
                    let tamper = self.kind_active(AttackKind::UpdateTampering);
                    let downgrade = self.kind_active(AttackKind::Downgrade);
                    let poisoning = self.kind_active(AttackKind::RolloutPoisoning);
                    let now = self.now;
                    let budget = self.config.chunks_per_tick;
                    // Wave ranges are contiguous by construction; the
                    // bounds drive the shadow shards' range intersection.
                    let (wave_lo, wave_hi) = (
                        waves[wave][0] as u32,
                        *waves[wave].last().expect("waves are non-empty") as u32 + 1,
                    );
                    let mut applied_sites = Vec::new();
                    for &idx in &waves[wave] {
                        // Shadow members are handled by the sharded
                        // sweep below.
                        let SiteSlot::Full(pos) = self.site_slot(idx as u32) else {
                            continue;
                        };
                        let chunk_bytes = self.config.chunk_bytes;
                        let fs = &mut self.sites[pos as usize];
                        if fs.outcome.is_some() {
                            continue;
                        }
                        let delivery = fs.delivery.get_or_insert_with(|| {
                            // A downgrade MITM substitutes the old but
                            // genuinely signed bundle on the wire.
                            let bytes = match (&old_encoded, downgrade) {
                                (Some(old), true) => old.as_slice(),
                                _ => encoded.as_slice(),
                            };
                            Delivery::new(
                                update_id,
                                bytes,
                                chunk_bytes,
                                self.rng.fork(&format!("tamper-{update_id}-{idx}")),
                            )
                        });
                        let Some(bytes) = delivery.step(&mut fs.uplink, budget, tamper, now) else {
                            continue;
                        };
                        report.bytes_on_air += delivery.bytes_on_air;
                        report.frames_sent += delivery.frames_sent;
                        if delivery.transfer_intact() == Some(false) {
                            report.transfer_tampered_sites += 1;
                        }
                        fs.delivery = None;
                        let (outcome, verify_us) = fs.apply(
                            &bytes,
                            &self.backend.store,
                            &self.backend.crls,
                            now.as_millis(),
                        );
                        if let Some(us) = verify_us {
                            report.verify_wall_us += us;
                            report.verify_wall_us_max = report.verify_wall_us_max.max(us);
                            report.verify_calls += 1;
                        }
                        let (ok, reason) = match &outcome {
                            Ok(_) => {
                                report.applied_sites += 1;
                                applied_sites.push(pos as usize);
                                (true, "applied")
                            }
                            Err(reason) => {
                                report.rejected_sites += 1;
                                *report
                                    .reject_reasons
                                    .entry((*reason).to_string())
                                    .or_default() += 1;
                                (false, *reason)
                            }
                        };
                        fs.outcome = Some(outcome);
                        self.recorder.record_at(
                            now,
                            Event::UpdateApply {
                                site: fs.index,
                                version,
                                ok,
                                reason: Label::new(reason),
                            },
                        );
                    }
                    // A poisoned (signed but malicious) image starts
                    // misbehaving right after it is applied — the staged
                    // rollout exists to catch exactly this at the canary.
                    if poisoning {
                        for pos in applied_sites {
                            self.poison_site(pos);
                        }
                    }

                    // Shadow members of the wave: sharded distribution,
                    // one batched bundle verification per shard, merged
                    // in shard order.
                    if let Some(shadows) = &mut self.shadows {
                        let jam = self
                            .campaigns
                            .iter()
                            .find(|c| c.kind == AttackKind::RfJamming && c.active_at(now))
                            .map_or(0.0, |c| c.intensity);
                        let poison_at_ms =
                            poisoning.then(|| (now + self.config.site.tick).as_millis());
                        let ctx = ShadowRolloutCtx {
                            version,
                            update_id,
                            encoded: &encoded,
                            old_encoded: old_encoded.as_deref(),
                            store: &self.backend.store,
                            crls: &self.backend.crls,
                            chunk_bytes: self.config.chunk_bytes,
                            budget,
                            now_ms: now.as_millis(),
                            tick_index: self.tick_index,
                            tamper,
                            downgrade,
                            poison_at_ms,
                            jam,
                        };
                        for (shard, out) in shadows
                            .rollout_sweep(wave_lo, wave_hi, &ctx)
                            .iter()
                            .enumerate()
                        {
                            report.applied_sites += out.applied;
                            report.rejected_sites += out.rejected;
                            for (ri, &n) in out.reject_reasons.iter().enumerate() {
                                if n > 0 {
                                    *report
                                        .reject_reasons
                                        .entry(REJECT_REASONS[ri].to_string())
                                        .or_default() += n;
                                }
                            }
                            report.bytes_on_air += out.bytes_on_air;
                            report.frames_sent += out.frames_sent;
                            report.batch_verify_calls += out.batch_verify_calls;
                            report.batch_verified_sites += out.batch_verified_sites;
                            report.individually_verified_sites += out.individually_verified_sites;
                            shadow_resolved_in_wave += out.resolved() as usize;
                            if out.resolved() > 0 {
                                self.recorder.record_at(
                                    now,
                                    Event::ShadowWave {
                                        shard: shard as u32,
                                        applied: out.applied,
                                        rejected: out.rejected,
                                    },
                                );
                            }
                        }
                    }

                    let full_resolved =
                        waves[wave]
                            .iter()
                            .all(|&idx| match self.site_slot(idx as u32) {
                                SiteSlot::Full(pos) => self.sites[pos as usize].outcome.is_some(),
                                SiteSlot::Shadow { .. } => true,
                            });
                    if full_resolved
                        && shadow_resolved_in_wave >= self.shadow_members_in(wave_lo, wave_hi)
                    {
                        phase = RolloutPhase::Observing;
                        observe_left = self.config.policy.observe_ticks;
                    }
                }
                RolloutPhase::Observing => {
                    if observe_left > 0 {
                        observe_left -= 1;
                    } else {
                        self.record_wave(wave, "complete");
                        wave += 1;
                        if wave == waves.len() {
                            phase = RolloutPhase::Complete;
                        } else {
                            phase = RolloutPhase::Distributing;
                            shadow_resolved_in_wave = 0;
                            self.record_wave(wave, "start");
                        }
                    }
                }
                RolloutPhase::Halted | RolloutPhase::Complete => {}
            }

            if phase == RolloutPhase::Complete {
                report.completed = true;
                // The fleet has patched: withdraw the field-evidence
                // escalation that motivated the rollout.
                self.risk
                    .mitigate("firmware-tampering", self.now.as_millis());
                if let Some(tara) = &mut self.tara {
                    tara.retire("firmware-tampering", self.now.as_millis());
                }
                break;
            }
        }

        // Deliveries still in flight when the rollout ends (halted, or a
        // jammed uplink that never completed) have spent real airtime.
        for fs in &mut self.sites {
            if let Some(delivery) = fs.delivery.take() {
                report.bytes_on_air += delivery.bytes_on_air;
                report.frames_sent += delivery.frames_sent;
            }
        }
        report.latency_ms = self.now.since(started).as_millis();
        report
    }

    /// Models a poisoned image's misbehaviour: the compromised machine
    /// starts replaying captured traffic, forging de-auth frames and
    /// feeding spoofed GNSS fixes on its own worksite, which the site
    /// IDS picks up across three distinct detector classes.
    fn poison_site(&mut self, idx: usize) {
        let start = self.now + self.config.site.tick;
        let duration = SimDuration::from_secs(120);
        let engine = self.sites[idx].site.attack_engine_mut();
        engine.add_campaign(AttackCampaign {
            kind: AttackKind::Replay,
            target: AttackTarget::Network,
            start,
            duration,
            intensity: 1.0,
        });
        engine.add_campaign(AttackCampaign {
            kind: AttackKind::DeauthFlood,
            target: AttackTarget::Link {
                spoof_as: silvasec_comms::NodeId(0),
                victim: silvasec_comms::NodeId(1),
            },
            start,
            duration,
            intensity: 1.0,
        });
        // A third misbehavior class: the IDS rate-limits repeats of a
        // class (30 s cooldown), so crossing the fleet halt threshold
        // quickly needs alerts from *distinct* detectors, exactly what a
        // trojanized machine produces.
        engine.add_campaign(AttackCampaign {
            kind: AttackKind::GnssSpoofing,
            target: AttackTarget::Area {
                center: Vec2::new(100.0, 100.0),
                radius_m: 500.0,
            },
            start,
            duration,
            intensity: 1.0,
        });
    }

    fn record_wave(&self, wave: usize, phase: &str) {
        self.recorder.record_at(
            self.now,
            Event::RolloutWave {
                wave: wave as u32,
                phase: Label::new(phase),
            },
        );
    }

    /// The fleet-level security trace (rollout, campaign and risk
    /// events) as JSONL — the stream the trace-divergence tooling
    /// compares across runs.
    #[must_use]
    pub fn export_trace_jsonl(&self) -> String {
        self.recorder.export_jsonl(self.trace_sub)
    }

    /// The continuous risk assessment fed by the SIEM.
    #[must_use]
    pub fn risk(&self) -> &ContinuousAssessment {
        &self.risk
    }

    /// The SIEM aggregator.
    #[must_use]
    pub fn siem(&self) -> &FleetSiem {
        &self.siem
    }

    /// The update backend.
    #[must_use]
    pub fn backend(&self) -> &FleetBackend {
        &self.backend
    }

    /// The incident-response engine, when [`FleetConfig::ops`] is set.
    #[must_use]
    pub fn ops(&self) -> Option<&OpsEngine> {
        self.ops.as_ref().map(|o| &o.engine)
    }

    /// The live TARA hypotheses, when [`FleetConfig::tara`] is set.
    #[must_use]
    pub fn tara(&self) -> Option<&HypothesisSet> {
        self.tara.as_ref()
    }

    /// Runs blocked on an explicit ops review, in run-id order (empty
    /// with ops off).
    #[must_use]
    pub fn ops_pending_reviews(&self) -> Vec<u64> {
        self.ops
            .as_ref()
            .map_or_else(Vec::new, |o| o.engine.pending_reviews())
    }

    /// Delivers a reviewer verdict for a run awaiting its gate and
    /// executes the follow-on commands (remediation on approve).
    pub fn ops_review(&mut self, run: u64, decision: GateDecision) {
        let now_ms = self.now.as_millis();
        let Some(ops) = &mut self.ops else {
            return;
        };
        let cmds = ops.engine.review(run, decision, now_ms);
        self.ops_run_commands(cmds, now_ms);
    }

    /// Remediation rollouts the ops engine has requested but the driver
    /// has not yet run.
    #[must_use]
    pub fn ops_pending_remediations(&self) -> usize {
        self.ops.as_ref().map_or(0, |o| o.pending_ota.len())
    }

    /// Runs every pending ops remediation as a staged rollout of the
    /// next firmware version and reports each outcome back to the
    /// engine (success feeds the run into verification).
    ///
    /// A rollout spans many ticks of fleet time, so the remediating
    /// run's queue lease must cover it: configure
    /// [`silvasec_ops::QueueConfig::visibility_timeout_ms`] above the
    /// expected rollout duration or the engine will treat the rollout
    /// as abandoned and redeliver the run mid-remediation.
    pub fn run_ops_remediations(&mut self) -> Vec<RolloutReport> {
        let pending = match &mut self.ops {
            Some(ops) => std::mem::take(&mut ops.pending_ota),
            None => return Vec::new(),
        };
        let mut reports = Vec::new();
        for cmd in pending {
            // Remediation supersedes the containment freeze.
            self.ops.as_mut().expect("ops on").rollouts_halted = false;
            let version = self
                .backend
                .published
                .iter()
                .map(|b| b.manifest.version)
                .max()
                .unwrap_or(0)
                + 1;
            let report = self.run_rollout(version);
            let now_ms = self.now.as_millis();
            let ok = report.completed;
            let more = self
                .ops
                .as_mut()
                .expect("ops on")
                .engine
                .complete(cmd.id, ok, now_ms);
            self.ops_run_commands(more, now_ms);
            reports.push(report);
        }
        reports
    }

    /// Sites currently quarantined by ops containment, ascending.
    #[must_use]
    pub fn quarantined_sites(&self) -> Vec<u32> {
        self.ops
            .as_ref()
            .map_or_else(Vec::new, |o| o.quarantined.iter().copied().collect())
    }

    /// IDS alerts withheld from the SIEM because their site was
    /// quarantined at drain time.
    #[must_use]
    pub fn ops_withheld_alerts(&self) -> u64 {
        self.ops.as_ref().map_or(0, |o| o.withheld_alerts)
    }

    /// Number of managed sites, full-fidelity and shadow members both.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.shadows {
            Some(pop) => pop.layout.sites,
            None => self.sites.len(),
        }
    }

    /// Whether the fleet manages no sites.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installed firmware version at `site` (full or shadow fidelity).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn installed_version(&self, site: usize) -> u32 {
        match self.site_slot(site as u32) {
            SiteSlot::Full(pos) => self.sites[pos as usize].installed_version,
            SiteSlot::Shadow { shard, slot } => self
                .shadows
                .as_ref()
                .expect("shadow slot implies a shadow population")
                .shard(shard)
                .installed_version(slot),
        }
    }

    /// Current fleet time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to one managed worksite.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range, or if `site` is a shadow member
    /// (shadow sites carry compact state, not a full [`Worksite`] — see
    /// [`Fleet::site_slot`]).
    #[must_use]
    pub fn worksite(&self, site: usize) -> &Worksite {
        match self.site_slot(site as u32) {
            SiteSlot::Full(pos) => &self.sites[pos as usize].site,
            SiteSlot::Shadow { .. } => panic!(
                "site {site} is a shadow member; only full-fidelity sites \
                 carry a Worksite (see Fleet::site_slot)"
            ),
        }
    }

    /// The shadow population, when the fleet runs in two-fidelity mode.
    #[must_use]
    pub fn shadows(&self) -> Option<&ShadowPopulation> {
        self.shadows.as_ref()
    }

    /// A point-in-time security observability snapshot: population split,
    /// SIEM ingest/retention/drop counters and the fleet trace-ring state,
    /// so operators can see alert loss rather than infer it.
    #[must_use]
    pub fn security_snapshot(&self) -> FleetSecuritySnapshot {
        let trace = self
            .recorder
            .stats()
            .into_iter()
            .find(|s| s.name == "fleet");
        FleetSecuritySnapshot {
            sites: self.len(),
            full_sites: self.sites.len(),
            shadow_sites: self.shadows.as_ref().map_or(0, |p| p.layout.shadow_count()),
            siem_records_ingested: self.siem.records_ingested(),
            siem_observations_held: self.siem.observations_held(),
            siem_window_drops: self.siem.window_drops(),
            siem_window_drops_by_class: self.siem.window_drops_by_class(),
            siem_campaigns: self.siem.campaigns().len(),
            trace_pushed: trace.as_ref().map_or(0, |s| s.pushed),
            trace_ring_dropped: trace.as_ref().map_or(0, |s| s.dropped),
            shadow_mem_bytes: self.shadows.as_ref().map_or(0, ShadowPopulation::mem_bytes),
        }
    }
}

/// What [`Fleet::security_snapshot`] reports: where alerts can be lost
/// (SIEM sliding windows, trace ring) and how much state the shadow
/// population holds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FleetSecuritySnapshot {
    /// Total managed sites (full + shadow).
    pub sites: usize,
    /// Sites simulated at full fidelity.
    pub full_sites: usize,
    /// Sites tracked as compact shadows.
    pub shadow_sites: usize,
    /// Telemetry records the SIEM has ingested.
    pub siem_records_ingested: u64,
    /// Alert observations currently held across all class windows.
    pub siem_observations_held: usize,
    /// Alert observations dropped because a class window was full.
    pub siem_window_drops: u64,
    /// Per-class breakdown of window drops.
    pub siem_window_drops_by_class: Vec<(String, u64)>,
    /// Correlated campaigns detected so far.
    pub siem_campaigns: usize,
    /// Events pushed into the fleet trace ring.
    pub trace_pushed: u64,
    /// Events the fleet trace ring has dropped (ring full).
    pub trace_ring_dropped: u64,
    /// Bytes held by the shadow population (struct-of-arrays state).
    pub shadow_mem_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_tara::HypothesisStatus;

    fn small_config(sites: usize) -> FleetConfig {
        FleetConfig {
            sites,
            policy: RolloutPolicy {
                canary_sites: 1,
                wave_size: 2,
                observe_ticks: 6,
                halt_alert_threshold: 3,
            },
            image_payload_bytes: 512,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn clean_rollout_reaches_every_site() {
        let mut fleet = Fleet::new(small_config(3), 42);
        let report = fleet.run_rollout(2);
        assert!(report.completed, "rollout did not complete: {report:?}");
        assert_eq!(report.applied_sites, 3);
        assert_eq!(report.rejected_sites, 0);
        assert!(report.bytes_on_air > 0);
        for site in 0..fleet.len() {
            assert_eq!(fleet.installed_version(site), 2);
        }
    }

    #[test]
    fn tara_knob_carries_hypotheses_and_rollout_retires_firmware_tampering() {
        // Rank wide enough that every distinct scenario (2000 per
        // variant) becomes a hypothesis, so the firmware-tampering
        // retirement below is observable.
        let tc = TaraConfig {
            variants: 1,
            top_k: 2_048,
        };
        let config = FleetConfig {
            tara: Some(tc),
            ..small_config(3)
        };
        let mut fleet = Fleet::new(config, 42);
        let tara = fleet.tara().expect("tara knob on");
        assert_eq!(tara.hypotheses().len(), 2_000);
        let (open, confirmed, retired) = tara.counts();
        assert_eq!((confirmed, retired), (0, 0));
        assert!(open > 0);

        // A completed rollout mitigates firmware-tampering: the matching
        // hypotheses retire and the transitions land in the fleet trace.
        let report = fleet.run_rollout(2);
        assert!(report.completed);
        let tara = fleet.tara().expect("tara knob on");
        let retired_classes: Vec<&str> = tara
            .hypotheses()
            .iter()
            .filter(|h| h.status == HypothesisStatus::Retired)
            .map(|h| h.scenario.attack_class.as_str())
            .collect();
        assert!(!retired_classes.is_empty());
        assert!(retired_classes.iter().all(|c| *c == "firmware-tampering"));
        let trace = fleet.export_trace_jsonl();
        assert!(trace.contains("TaraHypothesis"), "transitions are traced");

        // With the knob off (the default), nothing TARA-shaped exists.
        let mut off = Fleet::new(small_config(3), 42);
        assert!(off.tara().is_none());
        let _ = off.run_rollout(2);
        assert!(!off.export_trace_jsonl().contains("TaraHypothesis"));
    }

    #[test]
    fn backend_signs_verifiable_bundles() {
        let mut rng = SimRng::from_seed(7);
        let mut backend = FleetBackend::commission(&mut rng);
        let bundle = backend.publish(3, 256, 0, &mut rng);
        bundle
            .verify(backend.trust_store(), 100, FLEET_COMPONENT, 1)
            .unwrap();
    }

    #[test]
    fn revoking_the_signer_rejects_old_chain_but_not_new_bundles() {
        let mut rng = SimRng::from_seed(7);
        let mut backend = FleetBackend::commission(&mut rng);
        let old = backend.publish(2, 256, 0, &mut rng);
        backend.revoke_signer(500);
        assert_eq!(backend.crls().len(), 1);
        // The pre-revocation bundle fails chain validation once the CRL
        // is consulted...
        let err = old
            .verify_with_crls(
                backend.trust_store(),
                1_000,
                backend.crls(),
                FLEET_COMPONENT,
                1,
            )
            .unwrap_err();
        assert!(matches!(err, BundleError::Chain(_)));
        // ...while ignoring CRLs (the historical path) still accepts it.
        old.verify(backend.trust_store(), 1_000, FLEET_COMPONENT, 1)
            .unwrap();
        // A bundle published after rotation carries the fresh leaf for
        // the same pinned signing key: it verifies under the CRLs and
        // still boots on a device pinned at commissioning.
        let fresh = backend.publish(3, 256, 1_500, &mut rng);
        fresh
            .verify_with_crls(
                backend.trust_store(),
                2_000,
                backend.crls(),
                FLEET_COMPONENT,
                1,
            )
            .unwrap();
        let mut device = Device::new(FLEET_COMPONENT, backend.signer_key());
        assert!(device.boot(&fresh.images).success);
    }
}
