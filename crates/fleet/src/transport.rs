//! Chunked OTA distribution over the simulated radio uplink.
//!
//! Each fleet site owns a dedicated point-to-point uplink (backend radio
//! ↔ site gateway) modelled by a private [`Medium`]. The encoded bundle
//! is split into fixed-size chunks, each chunk rides one data frame, and
//! lost frames are retransmitted until the gateway holds every chunk —
//! so jamming and path loss show up as rollout latency and wasted
//! airtime, never as corruption. Corruption is the *attack* case: an
//! in-window update-tampering campaign flips bytes in delivered chunks,
//! and the reassembled bundle then fails decode or signature
//! verification at the site.

use silvasec_comms::medium::InterfererId;
use silvasec_comms::{Frame, Medium, MediumConfig, NodeId};
use silvasec_crypto::sha256::Sha256;
use silvasec_sim::geom::Vec3;
use silvasec_sim::rng::SimRng;
use silvasec_sim::time::SimTime;
use std::collections::VecDeque;

/// Magic bytes identifying an OTA chunk frame.
const CHUNK_MAGIC: [u8; 2] = [0x0A, 0x7A];

/// Fixed header prepended to every chunk payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Identifies the update this chunk belongs to.
    pub update_id: u32,
    /// Chunk index, `0..count`.
    pub index: u16,
    /// Total number of chunks in the update.
    pub count: u16,
}

impl ChunkHeader {
    /// Encoded header length in bytes.
    pub const LEN: usize = 10;

    /// Encodes the header followed by `data` into one frame payload.
    #[must_use]
    pub fn encode(self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::LEN + data.len());
        out.extend_from_slice(&CHUNK_MAGIC);
        out.extend_from_slice(&self.update_id.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(data);
        out
    }

    /// Splits a frame payload into header and chunk data.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<(ChunkHeader, &[u8])> {
        if payload.len() < Self::LEN || payload[..2] != CHUNK_MAGIC {
            return None;
        }
        let update_id = u32::from_le_bytes(payload[2..6].try_into().ok()?);
        let index = u16::from_le_bytes(payload[6..8].try_into().ok()?);
        let count = u16::from_le_bytes(payload[8..10].try_into().ok()?);
        Some((
            ChunkHeader {
                update_id,
                index,
                count,
            },
            &payload[Self::LEN..],
        ))
    }
}

/// Splits `bytes` into ready-to-transmit chunk payloads.
///
/// # Panics
///
/// Panics if `chunk_bytes` is zero or the input needs more than `u16::MAX`
/// chunks — both scenario-construction bugs, not runtime conditions.
#[must_use]
pub fn chunk_payloads(update_id: u32, bytes: &[u8], chunk_bytes: usize) -> Vec<Vec<u8>> {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    let count = bytes.len().div_ceil(chunk_bytes).max(1);
    assert!(count <= usize::from(u16::MAX), "update too large to chunk");
    (0..count)
        .map(|i| {
            let start = i * chunk_bytes;
            let end = (start + chunk_bytes).min(bytes.len());
            ChunkHeader {
                update_id,
                index: i as u16,
                count: count as u16,
            }
            .encode(&bytes[start..end])
        })
        .collect()
}

/// Number of chunks a `len`-byte update splits into — the count
/// [`chunk_payloads`] would produce, without materializing the chunks.
///
/// # Panics
///
/// Panics if `chunk_bytes` is zero.
#[must_use]
pub fn chunk_count(len: usize, chunk_bytes: usize) -> usize {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    len.div_ceil(chunk_bytes).max(1)
}

/// On-air wire bytes of chunk `index` of a `len`-byte update: frame
/// overhead + chunk header + the chunk body (the final chunk is usually
/// short). Matches `Frame::wire_len` of the frame [`Delivery`] would
/// send, so shadow-site airtime accounting agrees byte-for-byte with the
/// full simulation's.
#[must_use]
pub fn chunk_wire_len(len: usize, chunk_bytes: usize, index: usize) -> u64 {
    let start = (index * chunk_bytes).min(len);
    let body = chunk_bytes.min(len - start);
    (silvasec_comms::FRAME_OVERHEAD_BYTES + ChunkHeader::LEN + body) as u64
}

/// Collects received chunks back into the update byte stream.
#[derive(Debug)]
pub struct Reassembly {
    update_id: u32,
    slots: Vec<Option<Vec<u8>>>,
    received: usize,
}

impl Reassembly {
    /// Starts reassembly of `update_id` expecting `count` chunks.
    #[must_use]
    pub fn new(update_id: u32, count: u16) -> Self {
        Reassembly {
            update_id,
            slots: vec![None; usize::from(count.max(1))],
            received: 0,
        }
    }

    /// Accepts one received chunk; duplicates and foreign updates are
    /// ignored. Returns `true` when the chunk was new.
    pub fn accept(&mut self, header: ChunkHeader, data: &[u8]) -> bool {
        if header.update_id != self.update_id
            || usize::from(header.count) != self.slots.len()
            || usize::from(header.index) >= self.slots.len()
        {
            return false;
        }
        let slot = &mut self.slots[usize::from(header.index)];
        if slot.is_some() {
            return false;
        }
        *slot = Some(data.to_vec());
        self.received += 1;
        true
    }

    /// Whether every chunk has arrived.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.received == self.slots.len()
    }

    /// Concatenates the chunks. Returns `None` until [`complete`].
    ///
    /// [`complete`]: Reassembly::complete
    #[must_use]
    pub fn assemble(&self) -> Option<Vec<u8>> {
        if !self.complete() {
            return None;
        }
        let mut out = Vec::new();
        for slot in &self.slots {
            out.extend_from_slice(slot.as_deref().unwrap_or_default());
        }
        Some(out)
    }

    /// SHA-256 of the reassembled stream, streamed chunk slot by chunk
    /// slot through an incremental hasher — the concatenated buffer is
    /// never materialized. Returns `None` until [`complete`].
    ///
    /// [`complete`]: Reassembly::complete
    #[must_use]
    pub fn content_digest(&self) -> Option<[u8; 32]> {
        if !self.complete() {
            return None;
        }
        let mut h = Sha256::new();
        for slot in &self.slots {
            h.update(slot.as_deref().unwrap_or_default());
        }
        Some(h.finalize())
    }
}

/// One site's dedicated backend↔gateway radio uplink.
#[derive(Debug)]
pub struct Uplink {
    medium: Medium,
    backend: NodeId,
    gateway: NodeId,
    jammer: Option<InterfererId>,
}

impl Uplink {
    /// Builds an uplink with the gateway `range_m` metres from the
    /// backend radio. Longer ranges mean thinner links and more
    /// retransmission under interference.
    #[must_use]
    pub fn new(range_m: f64, rng: SimRng) -> Self {
        let mut medium = Medium::new(MediumConfig::default(), rng);
        let backend = medium.add_node(Vec3::new(0.0, 0.0, 12.0));
        let gateway = medium.add_node(Vec3::new(range_m, 0.0, 6.0));
        medium.associate(backend);
        medium.associate(gateway);
        Uplink {
            medium,
            backend,
            gateway,
            jammer: None,
        }
    }

    /// Turns uplink jamming on or off. The interferer sits midway along
    /// the link; `power_dbm` scales with campaign intensity.
    pub fn set_jamming(&mut self, on: bool, power_dbm: f64) {
        match (on, self.jammer) {
            (true, None) => {
                let mid = self.medium.position(self.gateway).x / 2.0;
                self.jammer = Some(
                    self.medium
                        .add_interferer(Vec3::new(mid, 15.0, 3.0), power_dbm),
                );
            }
            (false, Some(id)) => {
                self.medium.remove_interferer(id);
                self.jammer = None;
            }
            _ => {}
        }
    }

    /// Transmits one chunk payload; returns `(delivered, bytes_on_air)`.
    pub fn send_chunk(&mut self, payload: Vec<u8>, seq: u64, now: SimTime) -> (bool, u64) {
        let frame = Frame::data(self.backend, self.gateway, payload).with_seq(seq);
        let bytes = frame.wire_len() as u64;
        let outcome = self.medium.transmit(self.backend, frame, now);
        (outcome.delivered, bytes)
    }

    /// Drains frame payloads delivered to the gateway.
    pub fn drain_gateway(&mut self) -> Vec<Vec<u8>> {
        self.medium
            .drain_inbox(self.gateway)
            .into_iter()
            .map(|rx| rx.frame.payload)
            .collect()
    }
}

/// An in-flight delivery of one encoded bundle to one site.
#[derive(Debug)]
pub struct Delivery {
    chunks: Vec<Vec<u8>>,
    pending: VecDeque<usize>,
    reassembly: Reassembly,
    tamper_rng: SimRng,
    seq: u64,
    sent_digest: [u8; 32],
    received_digest: Option<[u8; 32]>,
    /// Total bytes put on the air, retransmissions included.
    pub bytes_on_air: u64,
    /// Total frames transmitted.
    pub frames_sent: u64,
}

impl Delivery {
    /// Starts a delivery of the encoded bundle `bytes`.
    #[must_use]
    pub fn new(update_id: u32, bytes: &[u8], chunk_bytes: usize, tamper_rng: SimRng) -> Self {
        let chunks = chunk_payloads(update_id, bytes, chunk_bytes);
        let count = chunks.len() as u16;
        // Digest of the stream as sent, hashed incrementally off the
        // chunk bodies so the transfer integrity check shares bytes with
        // the chunking pass.
        let mut h = Sha256::new();
        for chunk in &chunks {
            h.update(&chunk[ChunkHeader::LEN..]);
        }
        Delivery {
            pending: (0..chunks.len()).collect(),
            chunks,
            reassembly: Reassembly::new(update_id, count),
            tamper_rng,
            seq: 0,
            sent_digest: h.finalize(),
            received_digest: None,
            bytes_on_air: 0,
            frames_sent: 0,
        }
    }

    /// Runs one distribution tick: transmits up to `budget` pending
    /// chunks over `uplink`, requeues losses, ingests deliveries (with
    /// in-transit corruption while `tamper` is set), and returns the
    /// reassembled bytes once the gateway holds every chunk.
    pub fn step(
        &mut self,
        uplink: &mut Uplink,
        budget: usize,
        tamper: bool,
        now: SimTime,
    ) -> Option<Vec<u8>> {
        for _ in 0..budget {
            let Some(index) = self.pending.pop_front() else {
                break;
            };
            let (delivered, bytes) = uplink.send_chunk(self.chunks[index].clone(), self.seq, now);
            self.seq += 1;
            self.frames_sent += 1;
            self.bytes_on_air += bytes;
            if !delivered {
                self.pending.push_back(index);
            }
        }
        for mut payload in uplink.drain_gateway() {
            if tamper && payload.len() > ChunkHeader::LEN {
                // Man-in-the-middle: flip a few bytes of the chunk body.
                for _ in 0..3 {
                    let span = (payload.len() - ChunkHeader::LEN) as u64;
                    let at = ChunkHeader::LEN + self.tamper_rng.below(span) as usize;
                    payload[at] ^= 0x41;
                }
            }
            if let Some((header, data)) = ChunkHeader::decode(&payload) {
                self.reassembly.accept(header, data);
            }
        }
        let assembled = self.reassembly.assemble();
        if assembled.is_some() && self.received_digest.is_none() {
            self.received_digest = self.reassembly.content_digest();
        }
        assembled
    }

    /// Whether the stream arrived byte-identical to what the backend
    /// sent, judged by comparing the streaming transfer digests. `None`
    /// until the transfer completes. Purely observational — corruption
    /// is still caught (and attributed) by bundle decode/signature
    /// verification at the site.
    #[must_use]
    pub fn transfer_intact(&self) -> Option<bool> {
        self.received_digest.map(|d| d == self.sent_digest)
    }

    /// Chunks not yet confirmed delivered.
    #[must_use]
    pub fn pending_chunks(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_roundtrip() {
        let data: Vec<u8> = (0u16..2000).map(|i| (i % 251) as u8).collect();
        let chunks = chunk_payloads(7, &data, 256);
        assert_eq!(chunks.len(), 8);
        let mut reassembly = Reassembly::new(7, 8);
        // Deliver out of order with a duplicate.
        for payload in chunks.iter().rev().chain(chunks.first()) {
            let (header, body) = ChunkHeader::decode(payload).unwrap();
            reassembly.accept(header, body);
        }
        assert_eq!(reassembly.assemble().unwrap(), data);
    }

    #[test]
    fn chunk_accounting_matches_materialized_chunks() {
        for (len, chunk_bytes) in [(0usize, 64usize), (1, 64), (64, 64), (65, 64), (2000, 256)] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let chunks = chunk_payloads(7, &data, chunk_bytes);
            assert_eq!(chunk_count(len, chunk_bytes), chunks.len(), "len={len}");
            for (i, chunk) in chunks.iter().enumerate() {
                let frame = Frame::data(NodeId(0), NodeId(1), chunk.clone());
                assert_eq!(
                    chunk_wire_len(len, chunk_bytes, i),
                    frame.wire_len() as u64,
                    "len={len} chunk={i}"
                );
            }
        }
    }

    #[test]
    fn empty_input_still_chunks() {
        let chunks = chunk_payloads(1, &[], 64);
        assert_eq!(chunks.len(), 1);
        let (header, body) = ChunkHeader::decode(&chunks[0]).unwrap();
        assert_eq!(header.count, 1);
        assert!(body.is_empty());
    }

    #[test]
    fn foreign_and_garbage_chunks_ignored() {
        let mut reassembly = Reassembly::new(3, 2);
        assert!(ChunkHeader::decode(b"short").is_none());
        assert!(ChunkHeader::decode(&[0u8; 32]).is_none());
        let other = ChunkHeader {
            update_id: 9,
            index: 0,
            count: 2,
        };
        assert!(!reassembly.accept(other, b"x"));
        let bad_count = ChunkHeader {
            update_id: 3,
            index: 0,
            count: 5,
        };
        assert!(!reassembly.accept(bad_count, b"x"));
        assert!(!reassembly.complete());
    }

    #[test]
    fn delivery_completes_over_clean_uplink() {
        let rng = SimRng::from_seed(11);
        let mut uplink = Uplink::new(120.0, rng.fork("uplink"));
        let data: Vec<u8> = (0u16..4096).map(|i| (i % 256) as u8).collect();
        let mut delivery = Delivery::new(1, &data, 512, rng.fork("tamper"));
        let mut now = SimTime::ZERO;
        assert_eq!(delivery.transfer_intact(), None);
        for _ in 0..200 {
            if let Some(got) = delivery.step(&mut uplink, 8, false, now) {
                assert_eq!(got, data);
                assert!(delivery.frames_sent >= 8);
                assert!(delivery.bytes_on_air > data.len() as u64);
                assert_eq!(delivery.transfer_intact(), Some(true));
                return;
            }
            now += silvasec_sim::time::SimDuration::from_millis(500);
        }
        panic!("delivery did not complete");
    }

    #[test]
    fn tampered_delivery_corrupts_payload() {
        let rng = SimRng::from_seed(12);
        let mut uplink = Uplink::new(120.0, rng.fork("uplink"));
        let data = vec![0u8; 4096];
        let mut delivery = Delivery::new(1, &data, 512, rng.fork("tamper"));
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            if let Some(got) = delivery.step(&mut uplink, 8, true, now) {
                assert_eq!(got.len(), data.len());
                assert_ne!(got, data, "tampering must corrupt the stream");
                assert_eq!(delivery.transfer_intact(), Some(false));
                return;
            }
            now += silvasec_sim::time::SimDuration::from_millis(500);
        }
        panic!("delivery did not complete");
    }
}
