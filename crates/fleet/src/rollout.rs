//! Staged rollout policy: canary first, then waves, with an automatic
//! halt when the freshly updated sites start raising IDS alerts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a fleet update is staged across sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutPolicy {
    /// Sites in the canary wave (wave 0).
    pub canary_sites: usize,
    /// Sites per subsequent wave.
    pub wave_size: usize,
    /// Soak ticks after a wave finishes applying before the next wave
    /// starts; alerts from wave members during this window count towards
    /// the halt threshold.
    pub observe_ticks: u32,
    /// IDS alerts from sites already updated in this rollout at which
    /// the rollout halts.
    pub halt_alert_threshold: u32,
}

impl Default for RolloutPolicy {
    fn default() -> Self {
        RolloutPolicy {
            canary_sites: 1,
            wave_size: 8,
            observe_ticks: 40,
            halt_alert_threshold: 3,
        }
    }
}

impl RolloutPolicy {
    /// Splits `fleet_size` site indices into waves: the canary wave
    /// first, then full waves of [`wave_size`].
    ///
    /// [`wave_size`]: RolloutPolicy::wave_size
    #[must_use]
    pub fn waves(&self, fleet_size: usize) -> Vec<Vec<usize>> {
        let canary = self.canary_sites.clamp(1, fleet_size);
        let mut waves = vec![(0..canary).collect::<Vec<_>>()];
        let mut next = canary;
        while next < fleet_size {
            let end = (next + self.wave_size.max(1)).min(fleet_size);
            waves.push((next..end).collect());
            next = end;
        }
        waves
    }
}

/// Where a rollout currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutPhase {
    /// Distributing and applying the bundle to the current wave.
    Distributing,
    /// Soaking: watching the current wave's IDS output.
    Observing,
    /// Halted by the alert-spike rule.
    Halted,
    /// Every wave completed.
    Complete,
}

/// The measured outcome of one fleet rollout.
///
/// Serialization covers only the deterministic fields: same fleet size,
/// seed, and scenario must produce byte-identical report JSON (that
/// contract is tested), so the host wall-clock verification timings are
/// deliberately left out of the serialized form — read them off the
/// struct directly.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutReport {
    /// Number of sites in the fleet.
    pub fleet_size: usize,
    /// The version the rollout distributed.
    pub target_version: u32,
    /// Whether every wave completed.
    pub completed: bool,
    /// The wave at which the rollout halted, if it did.
    pub halted_at_wave: Option<u32>,
    /// Sites that verified and applied the update.
    pub applied_sites: u32,
    /// Sites that rejected the offered bundle.
    pub rejected_sites: u32,
    /// Rejection tally per [`BundleError::reason`] tag.
    ///
    /// [`BundleError::reason`]: crate::bundle::BundleError::reason
    pub reject_reasons: BTreeMap<String, u32>,
    /// Wall-to-wall rollout time in fleet milliseconds.
    pub latency_ms: u64,
    /// Bytes put on the air across every uplink, retransmits included.
    pub bytes_on_air: u64,
    /// Frames transmitted across every uplink.
    pub frames_sent: u64,
    /// Milliseconds from the first in-wave IDS alert to the halt, when
    /// the rollout halted.
    pub detect_to_halt_ms: Option<u64>,
    /// Host wall-clock microseconds spent verifying bundles across every
    /// site, total. Host time, not fleet time: it never feeds the
    /// simulation or the security trace, only the performance report.
    pub verify_wall_us: u64,
    /// Slowest single bundle verification, host wall-clock microseconds.
    pub verify_wall_us_max: u64,
    /// Bundle verifications measured (applied and rejected sites both
    /// count; sites whose bundle failed to decode do not).
    pub verify_calls: u32,
    /// Sites whose received chunk stream failed the transfer-digest
    /// cross-check (the streaming SHA-256 computed over ordered chunk
    /// slots vs the digest of what the backend sent). Deterministic, but
    /// kept out of the serialized form so the report JSON schema is
    /// unchanged — read it off the struct directly.
    pub transfer_tampered_sites: u32,
    /// Fiat–Shamir batch verifications performed across shadow shards
    /// (one per shard per rollout variant, not one per site). Like
    /// [`transfer_tampered_sites`](RolloutReport::transfer_tampered_sites),
    /// deterministic but kept out of the serialized report JSON.
    pub batch_verify_calls: u64,
    /// Shadow sites whose bundle acceptance was resolved from a shared
    /// per-shard batched verification verdict. Not serialized.
    pub batch_verified_sites: u64,
    /// Shadow sites that had to be verified individually (their received
    /// bytes were tampered, so no shared verdict applies). Not serialized.
    pub individually_verified_sites: u64,
}

impl Serialize for RolloutReport {
    fn serialize(&self) -> serde::Value {
        // Deterministic fields only — `verify_wall_us` and
        // `verify_wall_us_max` are host wall-clock measurements and would
        // break the same-seed byte-identity contract on the report JSON.
        serde::Value::Object(vec![
            ("fleet_size".to_string(), self.fleet_size.serialize()),
            (
                "target_version".to_string(),
                self.target_version.serialize(),
            ),
            ("completed".to_string(), self.completed.serialize()),
            (
                "halted_at_wave".to_string(),
                self.halted_at_wave.serialize(),
            ),
            ("applied_sites".to_string(), self.applied_sites.serialize()),
            (
                "rejected_sites".to_string(),
                self.rejected_sites.serialize(),
            ),
            (
                "reject_reasons".to_string(),
                self.reject_reasons.serialize(),
            ),
            ("latency_ms".to_string(), self.latency_ms.serialize()),
            ("bytes_on_air".to_string(), self.bytes_on_air.serialize()),
            ("frames_sent".to_string(), self.frames_sent.serialize()),
            (
                "detect_to_halt_ms".to_string(),
                self.detect_to_halt_ms.serialize(),
            ),
            ("verify_calls".to_string(), self.verify_calls.serialize()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waves_cover_fleet_exactly_once() {
        let policy = RolloutPolicy {
            canary_sites: 2,
            wave_size: 5,
            ..RolloutPolicy::default()
        };
        let waves = policy.waves(13);
        assert_eq!(waves[0], vec![0, 1]);
        assert_eq!(waves.len(), 4);
        let all: Vec<usize> = waves.into_iter().flatten().collect();
        assert_eq!(all, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn single_site_fleet_is_one_canary_wave() {
        let waves = RolloutPolicy::default().waves(1);
        assert_eq!(waves, vec![vec![0]]);
    }

    #[test]
    fn oversized_canary_is_clamped() {
        let policy = RolloutPolicy {
            canary_sites: 10,
            ..RolloutPolicy::default()
        };
        assert_eq!(policy.waves(3), vec![vec![0, 1, 2]]);
    }
}
