//! Signed OTA update bundles.
//!
//! A bundle carries the firmware images for one fleet component plus a
//! manifest (monotone version, release channel) and is signed as a whole
//! by the fleet's firmware-signing key. The signer's certificate chain
//! travels inside the bundle, so a site can verify it against nothing but
//! its commissioned trust store: chain → [`KeyUsage::FIRMWARE_SIGNING`],
//! then the bundle signature, then the manifest's monotone version
//! against the site's installed version. Per-image signatures are checked
//! a second time by the secure-boot device when the update is applied —
//! the bundle signature authenticates *distribution*, the image
//! signatures authenticate *boot*.

use serde::{Deserialize, Serialize};
use silvasec_crypto::schnorr::{self, BatchItem, Signature, SigningKey};
use silvasec_pki::{Certificate, CertificateRevocationList, KeyUsage, PkiError, TrustStore};
use silvasec_secure_boot::SignedImage;
use std::fmt;

/// Domain-separation tag for the bundle signature.
const BUNDLE_SIG_DOMAIN: &[u8] = b"silvasec-ota-bundle-v1";

/// Bundle metadata: what the update is and where it fits in the version
/// order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateManifest {
    /// The fleet component the images target (e.g. `"forwarder-fw"`).
    pub component_id: String,
    /// Monotone bundle version; sites refuse any version at or below
    /// their installed one (anti-rollback at the distribution layer).
    pub version: u32,
    /// Release channel tag (`"stable"`, `"beta"`, ...).
    pub channel: String,
    /// Release instant in fleet milliseconds (informational).
    pub released_at_ms: u64,
}

/// A signed update bundle as distributed over the air.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateBundle {
    /// The manifest.
    pub manifest: UpdateManifest,
    /// The firmware chain to install (bootloader + application).
    pub images: Vec<SignedImage>,
    /// The signer's certificate chain, end entity first; the root is
    /// expected in the verifier's trust store.
    pub signer_chain: Vec<Certificate>,
    /// Signature over [`UpdateBundle::signed_bytes`] by the chain's end
    /// entity.
    pub signature: Vec<u8>,
}

/// Why a site refused an update bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleError {
    /// The received bytes did not decode to a bundle.
    Decode,
    /// The signer chain did not validate for firmware signing.
    Chain(PkiError),
    /// The bundle signature did not verify under the chain's leaf key.
    Signature,
    /// The manifest targets a different component than this site runs.
    WrongComponent {
        /// Component the site runs.
        expected: String,
        /// Component the manifest names.
        got: String,
    },
    /// An image's version or component disagrees with the manifest.
    ManifestMismatch,
    /// The offered version is not strictly newer than the installed one.
    Downgrade {
        /// Version the site already runs.
        installed: u32,
        /// Version the bundle offers.
        offered: u32,
    },
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Decode => write!(f, "bundle failed to decode"),
            BundleError::Chain(e) => write!(f, "signer chain invalid: {e}"),
            BundleError::Signature => write!(f, "bundle signature invalid"),
            BundleError::WrongComponent { expected, got } => {
                write!(f, "bundle targets {got}, site runs {expected}")
            }
            BundleError::ManifestMismatch => {
                write!(f, "image metadata disagrees with the manifest")
            }
            BundleError::Downgrade { installed, offered } => {
                write!(f, "version {offered} not newer than installed {installed}")
            }
        }
    }
}

impl std::error::Error for BundleError {}

impl BundleError {
    /// Short stable tag used as the `UpdateApply` telemetry reason.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self {
            BundleError::Decode => "decode",
            BundleError::Chain(_) => "chain",
            BundleError::Signature => "signature",
            BundleError::WrongComponent { .. } => "component",
            BundleError::ManifestMismatch => "manifest",
            BundleError::Downgrade { .. } => "downgrade",
        }
    }
}

impl UpdateBundle {
    /// Builds and signs a bundle.
    ///
    /// # Panics
    ///
    /// Panics if the manifest or images fail to serialize (they cannot:
    /// both are plain data with derived encodings).
    #[must_use]
    pub fn build(
        manifest: UpdateManifest,
        images: Vec<SignedImage>,
        signer_chain: Vec<Certificate>,
        signer: &SigningKey,
    ) -> Self {
        let tbs = Self::signed_bytes_of(&manifest, &images);
        let signature = signer.sign(&tbs).to_bytes().to_vec();
        UpdateBundle {
            manifest,
            images,
            signer_chain,
            signature,
        }
    }

    /// The canonical signed encoding: a domain tag plus the JSON
    /// encodings of the manifest and images, each length-prefixed so the
    /// encoding is injective.
    #[must_use]
    pub fn signed_bytes(&self) -> Vec<u8> {
        Self::signed_bytes_of(&self.manifest, &self.images)
    }

    fn signed_bytes_of(manifest: &UpdateManifest, images: &[SignedImage]) -> Vec<u8> {
        let manifest_json = serde_json::to_vec(manifest).expect("manifest serializes");
        let mut out = Vec::with_capacity(64 + manifest_json.len());
        out.extend_from_slice(BUNDLE_SIG_DOMAIN);
        out.extend_from_slice(&(manifest_json.len() as u32).to_le_bytes());
        out.extend_from_slice(&manifest_json);
        out.extend_from_slice(&(images.len() as u32).to_le_bytes());
        for image in images {
            let image_json = serde_json::to_vec(image).expect("image serializes");
            out.extend_from_slice(&(image_json.len() as u32).to_le_bytes());
            out.extend_from_slice(&image_json);
        }
        out
    }

    /// Serializes the bundle for distribution.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for a well-formed
    /// bundle).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("bundle serializes")
    }

    /// Deserializes a received bundle.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::Decode`] when the bytes are not a bundle —
    /// the usual face of in-transit tampering.
    pub fn decode(bytes: &[u8]) -> Result<Self, BundleError> {
        serde_json::from_slice(bytes).map_err(|_| BundleError::Decode)
    }

    /// Verifies the bundle for a site running `component_id` at firmware
    /// `installed_version`.
    ///
    /// Checks, in order: signer chain (against `store`, for
    /// [`KeyUsage::FIRMWARE_SIGNING`]), bundle signature under the
    /// chain's end-entity key, component binding, image/manifest
    /// agreement, and the monotone version rule.
    ///
    /// # Performance
    ///
    /// The bundle signature is checked through
    /// [`schnorr::verify_batch`] together with the per-image signatures
    /// (under the same leaf key, the common case in this fleet) so the
    /// whole set shares one Straus doubling chain. The batch is purely
    /// an accelerator: when it fails for any reason — including an image
    /// signed by a key other than the chain leaf, which is *not* a
    /// distribution-layer error — the bundle signature alone is
    /// re-checked sequentially, so accept/reject outcomes and error
    /// precedence are exactly those of the sequential path. Image
    /// signatures remain authoritative only at boot, where the device
    /// checks them against its pinned key.
    ///
    /// # Errors
    ///
    /// The first [`BundleError`] encountered.
    pub fn verify(
        &self,
        store: &TrustStore,
        now_ms: u64,
        component_id: &str,
        installed_version: u32,
    ) -> Result<(), BundleError> {
        self.verify_with_crls(store, now_ms, &[], component_id, installed_version)
    }

    /// [`UpdateBundle::verify`] with revocation checking: the signer
    /// chain is additionally validated against `crls`, so a bundle
    /// signed under a revoked certificate — the incident-response
    /// containment case — is rejected with [`BundleError::Chain`] even
    /// though its signature still verifies.
    ///
    /// # Errors
    ///
    /// The first [`BundleError`] encountered.
    pub fn verify_with_crls(
        &self,
        store: &TrustStore,
        now_ms: u64,
        crls: &[CertificateRevocationList],
        component_id: &str,
        installed_version: u32,
    ) -> Result<(), BundleError> {
        self.verify_shared_with_crls(store, now_ms, crls, component_id)?;
        self.check_version(installed_version)
    }

    /// The site-independent prefix of [`UpdateBundle::verify`]: signer
    /// chain, bundle signature (batched with the image signatures, same
    /// fallback semantics), component binding, and image/manifest
    /// agreement — everything except the per-site monotone version rule.
    ///
    /// Every site in a fleet shares the same trust store and component
    /// id, so this verdict can be computed once per rollout shard and
    /// reused across thousands of shadow sites; only
    /// [`UpdateBundle::check_version`] remains per-site. Composing the
    /// two checks in order is exactly [`UpdateBundle::verify`].
    ///
    /// # Errors
    ///
    /// The first [`BundleError`] encountered.
    pub fn verify_shared(
        &self,
        store: &TrustStore,
        now_ms: u64,
        component_id: &str,
    ) -> Result<(), BundleError> {
        self.verify_shared_with_crls(store, now_ms, &[], component_id)
    }

    /// [`UpdateBundle::verify_shared`] with revocation checking against
    /// `crls` (see [`UpdateBundle::verify_with_crls`]).
    ///
    /// # Errors
    ///
    /// The first [`BundleError`] encountered.
    pub fn verify_shared_with_crls(
        &self,
        store: &TrustStore,
        now_ms: u64,
        crls: &[CertificateRevocationList],
        component_id: &str,
    ) -> Result<(), BundleError> {
        store
            .validate_chain_for_usage(&self.signer_chain, now_ms, crls, KeyUsage::FIRMWARE_SIGNING)
            .map_err(BundleError::Chain)?;
        let leaf = self.signer_chain.first().ok_or(BundleError::Signature)?;
        let key = leaf.subject_key().map_err(|_| BundleError::Signature)?;
        let sig = Signature::from_bytes(&self.signature).map_err(|_| BundleError::Signature)?;
        let tbs = self.signed_bytes();

        let image_sigs: Option<Vec<(Vec<u8>, Signature)>> = self
            .images
            .iter()
            .map(|img| {
                Signature::from_bytes(&img.signature)
                    .ok()
                    .map(|s| (img.image.tbs_bytes(), s))
            })
            .collect();
        let batched = image_sigs.is_some_and(|image_sigs| {
            let mut items = vec![BatchItem {
                message: &tbs,
                signature: &sig,
                key: &key,
            }];
            items.extend(image_sigs.iter().map(|(msg, s)| BatchItem {
                message: msg,
                signature: s,
                key: &key,
            }));
            schnorr::verify_batch(&items)
        });
        if !batched {
            key.verify(&tbs, &sig).map_err(|_| BundleError::Signature)?;
        }

        if self.manifest.component_id != component_id {
            return Err(BundleError::WrongComponent {
                expected: component_id.to_string(),
                got: self.manifest.component_id.clone(),
            });
        }
        if self.images.is_empty()
            || self.images.iter().any(|img| {
                img.image.version != self.manifest.version
                    || img.image.component_id != self.manifest.component_id
            })
        {
            return Err(BundleError::ManifestMismatch);
        }
        Ok(())
    }

    /// The per-site suffix of [`UpdateBundle::verify`]: the monotone
    /// version rule against this site's installed firmware.
    ///
    /// # Errors
    ///
    /// [`BundleError::Downgrade`] when the offered version is not
    /// strictly newer than `installed_version`.
    pub fn check_version(&self, installed_version: u32) -> Result<(), BundleError> {
        if self.manifest.version <= installed_version {
            return Err(BundleError::Downgrade {
                installed: installed_version,
                offered: self.manifest.version,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_pki::{CertificateAuthority, ComponentRole, Subject, Validity};
    use silvasec_secure_boot::{FirmwareImage, FirmwareStage};

    fn fixture() -> (UpdateBundle, TrustStore) {
        let root =
            CertificateAuthority::new_root("fleet-root", &[1u8; 32], Validity::new(0, 1_000_000));
        let signer = SigningKey::from_seed(&[2u8; 32]);
        let mut ca = root;
        let leaf = ca.issue_mut(
            &Subject::new("fleet-fw-signer", ComponentRole::FirmwareSigner),
            &signer.verifying_key(),
            KeyUsage::FIRMWARE_SIGNING,
            Validity::new(0, 1_000_000),
        );
        let store = TrustStore::with_roots([ca.certificate().clone()]);
        let images = vec![
            FirmwareImage::new("forwarder-fw", FirmwareStage::Bootloader, 2, vec![0xAA; 64])
                .sign(&signer),
            FirmwareImage::new(
                "forwarder-fw",
                FirmwareStage::Application,
                2,
                vec![0xBB; 256],
            )
            .sign(&signer),
        ];
        let manifest = UpdateManifest {
            component_id: "forwarder-fw".into(),
            version: 2,
            channel: "stable".into(),
            released_at_ms: 1000,
        };
        let bundle = UpdateBundle::build(manifest, images, vec![leaf], &signer);
        (bundle, store)
    }

    #[test]
    fn encode_decode_verify_roundtrip() {
        let (bundle, store) = fixture();
        let bytes = bundle.encode();
        let back = UpdateBundle::decode(&bytes).unwrap();
        assert_eq!(back, bundle);
        back.verify(&store, 5000, "forwarder-fw", 1).unwrap();
    }

    #[test]
    fn tampered_bytes_rejected() {
        let (bundle, store) = fixture();
        let mut bytes = bundle.encode();
        // Flip a byte deep in the image payload region: either the JSON
        // breaks (decode error) or the content changes (signature error).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        match UpdateBundle::decode(&bytes) {
            Err(BundleError::Decode) => {}
            Ok(b) => {
                let err = b.verify(&store, 5000, "forwarder-fw", 1).unwrap_err();
                assert!(matches!(
                    err,
                    BundleError::Signature | BundleError::Chain(_) | BundleError::ManifestMismatch
                ));
            }
            Err(other) => panic!("unexpected decode error: {other}"),
        }
    }

    #[test]
    fn downgrade_rejected() {
        let (bundle, store) = fixture();
        let err = bundle.verify(&store, 5000, "forwarder-fw", 2).unwrap_err();
        assert!(matches!(
            err,
            BundleError::Downgrade {
                installed: 2,
                offered: 2
            }
        ));
        let err = bundle.verify(&store, 5000, "forwarder-fw", 7).unwrap_err();
        assert!(matches!(
            err,
            BundleError::Downgrade {
                installed: 7,
                offered: 2
            }
        ));
    }

    #[test]
    fn wrong_component_rejected() {
        let (bundle, store) = fixture();
        let err = bundle.verify(&store, 5000, "drone-fw", 1).unwrap_err();
        assert!(matches!(err, BundleError::WrongComponent { .. }));
    }

    #[test]
    fn unauthorized_signer_rejected() {
        // A chain whose leaf lacks FIRMWARE_SIGNING must not sign updates.
        let mut ca =
            CertificateAuthority::new_root("fleet-root", &[1u8; 32], Validity::new(0, 1_000_000));
        let signer = SigningKey::from_seed(&[3u8; 32]);
        let leaf = ca.issue_mut(
            &Subject::new("telemetry-only", ComponentRole::BaseStation),
            &signer.verifying_key(),
            KeyUsage::TELEMETRY_SIGNING,
            Validity::new(0, 1_000_000),
        );
        let store = TrustStore::with_roots([ca.certificate().clone()]);
        let images =
            vec![
                FirmwareImage::new("forwarder-fw", FirmwareStage::Application, 2, vec![1])
                    .sign(&signer),
            ];
        let manifest = UpdateManifest {
            component_id: "forwarder-fw".into(),
            version: 2,
            channel: "stable".into(),
            released_at_ms: 0,
        };
        let bundle = UpdateBundle::build(manifest, images, vec![leaf], &signer);
        let err = bundle.verify(&store, 100, "forwarder-fw", 1).unwrap_err();
        assert!(matches!(err, BundleError::Chain(_)));
    }

    #[test]
    fn manifest_image_disagreement_rejected() {
        let (mut bundle, store) = fixture();
        // Re-sign with a mismatching image version so only the manifest
        // consistency check can catch it.
        let signer = SigningKey::from_seed(&[2u8; 32]);
        bundle.images[0].image.version = 9;
        bundle.images[0] = bundle.images[0].image.clone().sign(&signer);
        let rebuilt = UpdateBundle::build(
            bundle.manifest.clone(),
            bundle.images.clone(),
            bundle.signer_chain.clone(),
            &signer,
        );
        let err = rebuilt.verify(&store, 5000, "forwarder-fw", 1).unwrap_err();
        assert_eq!(err, BundleError::ManifestMismatch);
    }

    #[test]
    fn foreign_image_signer_does_not_fail_distribution() {
        // Images signed by a key other than the chain leaf defeat the
        // batch fast path but are not a distribution-layer error: the
        // sequential fallback must still accept the bundle (the boot ROM
        // is the authority on image signatures).
        let (bundle, store) = fixture();
        let other = SigningKey::from_seed(&[9u8; 32]);
        let images: Vec<_> = bundle
            .images
            .iter()
            .map(|img| img.image.clone().sign(&other))
            .collect();
        let signer = SigningKey::from_seed(&[2u8; 32]);
        let rebuilt = UpdateBundle::build(
            bundle.manifest.clone(),
            images,
            bundle.signer_chain.clone(),
            &signer,
        );
        rebuilt.verify(&store, 5000, "forwarder-fw", 1).unwrap();
    }

    #[test]
    fn garbage_image_signature_does_not_fail_distribution() {
        // An undecodable image signature likewise only disables the
        // batch; the bundle signature still decides.
        let (bundle, store) = fixture();
        let mut images = bundle.images.clone();
        images[0].signature = vec![0u8; 5];
        let signer = SigningKey::from_seed(&[2u8; 32]);
        let rebuilt = UpdateBundle::build(
            bundle.manifest.clone(),
            images,
            bundle.signer_chain.clone(),
            &signer,
        );
        rebuilt.verify(&store, 5000, "forwarder-fw", 1).unwrap();
    }

    #[test]
    fn bad_bundle_signature_still_rejected_with_valid_images() {
        // Valid image signatures must not mask a bad bundle signature
        // through the batch path.
        let (mut bundle, store) = fixture();
        let last = bundle.signature.len() - 1;
        bundle.signature[last] ^= 0x01;
        let err = bundle.verify(&store, 5000, "forwarder-fw", 1).unwrap_err();
        assert_eq!(err, BundleError::Signature);
    }

    #[test]
    fn split_verify_composes_to_full_verify() {
        // verify == verify_shared ∘ check_version, so a shared verdict
        // computed once per shard plus the per-site version rule decides
        // exactly what the per-site verify would.
        let (bundle, store) = fixture();
        bundle.verify_shared(&store, 5000, "forwarder-fw").unwrap();
        bundle.check_version(1).unwrap();
        // The shared prefix is version-independent: a site already on a
        // newer version still passes it and fails only the version rule,
        // matching verify's error.
        assert_eq!(
            bundle.check_version(7).unwrap_err(),
            bundle.verify(&store, 5000, "forwarder-fw", 7).unwrap_err()
        );
        // Component mismatch surfaces in the shared prefix.
        assert!(matches!(
            bundle.verify_shared(&store, 5000, "drone-fw").unwrap_err(),
            BundleError::WrongComponent { .. }
        ));
    }

    #[test]
    fn error_reasons_are_stable() {
        assert_eq!(BundleError::Decode.reason(), "decode");
        assert_eq!(BundleError::Signature.reason(), "signature");
        assert_eq!(
            BundleError::Downgrade {
                installed: 2,
                offered: 1
            }
            .reason(),
            "downgrade"
        );
    }
}
