//! The compact shadow-site population: fleet scale without fleet cost.
//!
//! A fleet of a million sites cannot hold a million full [`Worksite`]
//! simulations — each one carries a terrain, a radio medium, machines,
//! an IDS and a flight recorder. The control plane therefore keeps a
//! site in one of two fidelities:
//!
//! * **Full** — a deterministically-sampled subset (evenly strided over
//!   the index space, canary included) runs the complete worksite
//!   simulation, exactly as every site did before this module existed.
//! * **Shadow** — every other site is a handful of bytes in a
//!   struct-of-arrays [`ShadowShard`]: anti-rollback version, rollout
//!   outcome, link quality, session-key slot, risk/alert counters. A
//!   shadow site's behaviour (chunk loss, IDS alert timing, tamper
//!   positions) is derived from *stateless counter-based hashing* of
//!   `(fleet seed, site index, tick, …)` — no RNG stream object per
//!   site, so a shard's memory is a few dozen bytes per site and its
//!   per-tick cost is proportional to the sites actually doing
//!   something (the active rollout wave, the alert-active sites), not
//!   the population.
//!
//! Shards are stepped on the workspace's deterministic sweep pool
//! ([`silvasec_sim::sweep::par_sweep_mut`]) and their outputs merged in
//! shard order, so a sharded run's security trace is byte-identical to
//! the same fleet stepped shard-by-shard sequentially — the property
//! `trace_compare --fleet-scale` and the `exp12_fleet_scale` bench
//! assert.
//!
//! Bundle verification is amortized across a shard: the
//! site-independent verdict ([`UpdateBundle::verify_shared`], which
//! internally batch-verifies the bundle + image signatures in one
//! Fiat–Shamir batch) is computed once per shard per distributed
//! variant and cached; each shadow site then pays only the monotone
//! version rule ([`UpdateBundle::check_version`]). Tampered deliveries
//! corrupt *per-site* bytes, so they fall off the shared path and are
//! decoded + verified individually — exactly the precedence the full
//! path has.
//!
//! [`Worksite`]: silvasec_sos::Worksite

use crate::bundle::{BundleError, UpdateBundle};
use crate::transport::{chunk_count, chunk_wire_len};
use silvasec_attacks::AttackKind;
use silvasec_pki::{CertificateRevocationList, TrustStore};
use silvasec_sim::sweep::par_sweep_mut;

/// Shadow-population tuning. Present on a fleet config = two-fidelity
/// mode; absent = every site is full, byte-identical to the historical
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowConfig {
    /// Number of sites kept at full `Worksite` fidelity, evenly strided
    /// over the index space (site 0 — the canary — is always full).
    /// Clamped to the fleet size.
    pub full_sites: usize,
    /// Shadow sites per shard. Each shard is stepped by one sweep
    /// worker; smaller shards parallelize better, larger shards
    /// amortize the per-shard batched bundle verification further.
    pub shard_sites: usize,
    /// Step shards sequentially instead of on the sweep pool — the
    /// reference schedule the parallel path must match byte-for-byte.
    pub sequential: bool,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        ShadowConfig {
            full_sites: 4,
            shard_sites: 8_192,
            sequential: false,
        }
    }
}

/// Where a global site index lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteSlot {
    /// Full-fidelity site: position in the fleet's worksite vector.
    Full(u32),
    /// Shadow site: shard number and slot within the shard.
    Shadow {
        /// Shard index.
        shard: u32,
        /// Slot within the shard's arrays.
        slot: u32,
    },
}

/// The global indices kept at full fidelity: `full` evenly-strided
/// picks, always including index 0 (the rollout canary must be a real
/// worksite). Sorted, distinct.
#[must_use]
pub fn full_site_indices(sites: usize, full: usize) -> Vec<u32> {
    let full = full.clamp(1, sites.max(1));
    (0..full).map(|i| (i * sites / full) as u32).collect()
}

/// Index arithmetic between global site indices, the full subset and
/// shadow shard slots. Holds only the (small) full-site list, so its
/// memory is independent of the fleet size.
#[derive(Debug, Clone)]
pub struct ShadowLayout {
    /// Total managed sites, both fidelities.
    pub sites: usize,
    /// Sorted global indices of the full-fidelity subset.
    pub full: Vec<u32>,
    /// Shadow sites per shard.
    pub shard_sites: usize,
}

impl ShadowLayout {
    /// Builds the layout for `sites` sites under `config`.
    #[must_use]
    pub fn new(sites: usize, config: &ShadowConfig) -> Self {
        ShadowLayout {
            sites,
            full: full_site_indices(sites, config.full_sites),
            shard_sites: config.shard_sites.max(1),
        }
    }

    /// Number of shadow sites.
    #[must_use]
    pub fn shadow_count(&self) -> usize {
        self.sites - self.full.len()
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shadow_count().div_ceil(self.shard_sites)
    }

    /// Resolves a global site index to its home.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn slot_of(&self, site: u32) -> SiteSlot {
        assert!((site as usize) < self.sites, "site {site} out of range");
        match self.full.binary_search(&site) {
            Ok(pos) => SiteSlot::Full(pos as u32),
            Err(full_below) => {
                let ordinal = site as usize - full_below;
                SiteSlot::Shadow {
                    shard: (ordinal / self.shard_sites) as u32,
                    slot: (ordinal % self.shard_sites) as u32,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stateless counter-based randomness.
//
// A per-site SimRng (ChaCha20 stream + fork labels) costs hundreds of
// bytes and a keyed setup per site; a shadow site instead derives every
// random decision from a splitmix64-style hash of (seed, site, …)
// counters. The hash primitive itself lives in `sim::rng` (shared with
// the ops engine's lease/backoff jitter); re-exported here because the
// shadow draw recipes below are specified in terms of it.
// ---------------------------------------------------------------------

pub use silvasec_sim::rng::{hash3, mix64, u01};

/// Per-site key all of a shadow site's draws are derived from.
#[must_use]
pub fn site_key(seed: u64, site: u32) -> u64 {
    mix64(seed ^ u64::from(site).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// FNV-1a of an alert-class label, the `class` counter in alert-timing
/// draws (so distinct detector classes on one site draw independently).
#[must_use]
pub fn class_tag(class: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in class.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Domain-separation salts for the independent draw families.
const SALT_LINK: u64 = 0x11;
const SALT_CHUNK: u64 = 0x22;
const SALT_TAMPER: u64 = 0x33;
const SALT_LATENCY: u64 = 0x44;
const SALT_SESSION: u64 = 0x55;

// ---------------------------------------------------------------------
// Rollout outcome vocabulary.
// ---------------------------------------------------------------------

/// Outcome code: site not yet resolved this rollout.
pub const OUTCOME_NONE: u8 = 0;
/// Outcome code: update applied.
pub const OUTCOME_APPLIED: u8 = 1;
/// Reject reason tags, in code order (code = index + 2). Mirrors
/// [`BundleError::reason`] plus the device `"boot"` failure the full
/// path can report.
pub const REJECT_REASONS: [&str; 7] = [
    "decode",
    "chain",
    "signature",
    "component",
    "manifest",
    "downgrade",
    "boot",
];

fn reject_code(reason: &str) -> u8 {
    REJECT_REASONS
        .iter()
        .position(|&r| r == reason)
        .map_or(OUTCOME_NONE, |i| (i + 2) as u8)
}

// ---------------------------------------------------------------------
// IDS-visible attack classes for shadow sites.
// ---------------------------------------------------------------------

/// The IDS detector class a worksite-layer attack campaign surfaces as,
/// `None` for kinds the site IDS does not alert on. This is the shadow
/// analogue of the full worksite's attack → detector pipeline.
#[must_use]
pub fn campaign_class(kind: AttackKind) -> Option<&'static str> {
    match kind {
        AttackKind::DeauthFlood => Some("deauth-flood"),
        AttackKind::GnssSpoofing => Some("gnss-spoofing"),
        AttackKind::GnssJamming => Some("gnss-jamming"),
        AttackKind::CameraBlinding => Some("sensor-blinding"),
        AttackKind::Replay => Some("auth-failure-storm"),
        AttackKind::RogueNode => Some("rogue-association"),
        _ => None,
    }
}

/// The three detector classes a poisoned (trojanized) site trips, the
/// shadow analogue of `Fleet::poison_site`'s three campaigns.
pub const POISON_CLASSES: [&str; 3] = ["auth-failure-storm", "deauth-flood", "gnss-spoofing"];

/// How long a poisoned shadow site misbehaves, matching the full path's
/// 120 s poison campaigns.
const POISON_DURATION_MS: u64 = 120_000;

/// IDS per-class alert cooldown, matching the full worksite IDS (30 s).
const ALERT_COOLDOWN_MS: u64 = 30_000;

/// An attack-class window shadow sites raise alerts in: the fleet
/// derives one per worksite-layer campaign it schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowCampaign {
    /// The IDS detector class the campaign trips.
    pub class: &'static str,
    /// Campaign start, fleet milliseconds.
    pub start_ms: u64,
    /// Campaign end (exclusive), fleet milliseconds.
    pub end_ms: u64,
}

/// One IDS alert raised by a shadow site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowAlert {
    /// Global site index.
    pub site: u32,
    /// Detector class.
    pub class: &'static str,
    /// Alert instant, fleet milliseconds.
    pub at_ms: u64,
}

/// Emits the alert instants of `(site, class)` under a campaign window
/// `[start_ms, end_ms)` that fall in the tick `(prev_ms, now_ms]`.
///
/// A site's first alert lags campaign start by a per-`(site, class)`
/// detection latency of 1–11 s; while the campaign stays active the
/// detector re-alerts every [`ALERT_COOLDOWN_MS`]. The schedule is a
/// pure function, so a million dormant sites cost nothing and any tick
/// can be evaluated without replaying the ticks before it.
fn alerts_in_tick(
    key: u64,
    class: &'static str,
    start_ms: u64,
    end_ms: u64,
    prev_ms: u64,
    now_ms: u64,
    mut emit: impl FnMut(u64),
) {
    let latency = 1_000 + (u01(hash3(key, class_tag(class), SALT_LATENCY)) * 10_000.0) as u64;
    let first = start_ms + latency;
    let n = if prev_ms < first {
        0
    } else {
        (prev_ms - first) / ALERT_COOLDOWN_MS + 1
    };
    let mut t = first + n * ALERT_COOLDOWN_MS;
    while t <= now_ms && t < end_ms {
        emit(t);
        t += ALERT_COOLDOWN_MS;
    }
}

// ---------------------------------------------------------------------
// Per-tick rollout context and output.
// ---------------------------------------------------------------------

/// Everything a shard needs to step one distribution tick, shared
/// read-only across the worker pool.
#[derive(Debug, Clone, Copy)]
pub struct ShadowRolloutCtx<'a> {
    /// Target firmware version being distributed.
    pub version: u32,
    /// Update id, part of the per-rollout verdict cache key.
    pub update_id: u32,
    /// The encoded bundle on the wire.
    pub encoded: &'a [u8],
    /// The old (genuinely signed) bundle a downgrade MITM substitutes.
    pub old_encoded: Option<&'a [u8]>,
    /// Trust store bundles are verified against.
    pub store: &'a TrustStore,
    /// CRLs the signer chain is checked against (empty outside
    /// incident-response revocation drills).
    pub crls: &'a [CertificateRevocationList],
    /// OTA chunk payload size, bytes.
    pub chunk_bytes: usize,
    /// Chunk transmissions per site per tick.
    pub budget: usize,
    /// Current fleet time, milliseconds.
    pub now_ms: u64,
    /// Monotone tick counter (the time axis of per-chunk loss draws).
    pub tick_index: u64,
    /// Whether an update-tampering campaign is active this tick.
    pub tamper: bool,
    /// Whether a downgrade MITM is active this tick.
    pub downgrade: bool,
    /// Whether rollout poisoning is active: sites applying now start
    /// misbehaving at the given instant.
    pub poison_at_ms: Option<u64>,
    /// Active uplink jamming intensity in `[0, 1]` (0 = clean air).
    pub jam: f64,
}

/// Aggregated outcome of one shard's distribution tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowWaveOut {
    /// Sites that applied the update this tick.
    pub applied: u32,
    /// Sites that rejected it this tick.
    pub rejected: u32,
    /// Rejections by reason, indexed as [`REJECT_REASONS`].
    pub reject_reasons: [u32; REJECT_REASONS.len()],
    /// Airtime spent this tick, bytes.
    pub bytes_on_air: u64,
    /// Frames transmitted this tick.
    pub frames_sent: u64,
    /// Shared (batched) bundle verifications performed.
    pub batch_verify_calls: u64,
    /// Sites resolved off a shared verdict.
    pub batch_verified_sites: u64,
    /// Sites verified individually (tampered deliveries).
    pub individually_verified_sites: u64,
}

impl ShadowWaveOut {
    /// Whether the tick did anything worth a trace event.
    #[must_use]
    pub fn resolved(&self) -> u32 {
        self.applied + self.rejected
    }

    /// Folds another output into this one.
    pub fn absorb(&mut self, other: &ShadowWaveOut) {
        self.applied += other.applied;
        self.rejected += other.rejected;
        for (a, b) in self.reject_reasons.iter_mut().zip(&other.reject_reasons) {
            *a += b;
        }
        self.bytes_on_air += other.bytes_on_air;
        self.frames_sent += other.frames_sent;
        self.batch_verify_calls += other.batch_verify_calls;
        self.batch_verified_sites += other.batch_verified_sites;
        self.individually_verified_sites += other.individually_verified_sites;
    }
}

/// A shared bundle verdict cached per shard per rollout: the
/// site-independent prefix of bundle verification, computed once and
/// reused for every untampered site in the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CachedVerdict {
    update_id: u32,
    old_bundle: bool,
    /// `Ok(offered_version)` when the shared checks pass, else the
    /// reject code.
    shared: Result<u32, u8>,
}

/// Sentinel: no delivery in flight.
const NO_DELIVERY: u16 = u16::MAX;

// ---------------------------------------------------------------------
// The shard.
// ---------------------------------------------------------------------

/// A struct-of-arrays population of shadow sites, stepped as one unit
/// by one sweep worker. All arrays are indexed by slot.
#[derive(Debug)]
pub struct ShadowShard {
    /// Global site index per slot, ascending.
    site_index: Vec<u32>,
    /// Anti-rollback: installed firmware version.
    installed_version: Vec<u32>,
    /// Link quality in Q0.16 (probability a transmitted chunk lands on
    /// clean air), commissioned per site from the fleet seed.
    link_q16: Vec<u16>,
    /// Commissioned session-key slot id (which backend session-key
    /// register the site's OTA channel uses).
    session_slot: Vec<u32>,
    /// Session epoch, bumped when an update applies (key rotation on
    /// new firmware).
    session_epoch: Vec<u16>,
    /// Saturating risk score, bumped per alert.
    risk_score: Vec<u16>,
    /// Saturating lifetime alert counter.
    alert_count: Vec<u16>,
    /// Rollout outcome code ([`OUTCOME_NONE`], [`OUTCOME_APPLIED`] or a
    /// reject code).
    outcome: Vec<u8>,
    /// Chunks still to deliver, [`NO_DELIVERY`] when idle.
    pending_chunks: Vec<u16>,
    /// Whether the in-flight delivery has been tampered with.
    tampered: Vec<bool>,
    /// Whether the in-flight delivery carries the old (downgrade)
    /// bundle.
    old_bundle: Vec<bool>,
    /// Poisoned sites: `(slot, misbehaviour start ms)`.
    poisoned: Vec<(u32, u64)>,
    /// Per-rollout shared verdicts (at most one per distributed bundle
    /// variant).
    verdicts: Vec<CachedVerdict>,
    /// Fleet seed material for this shard's stateless draws.
    seed: u64,
}

impl ShadowShard {
    fn new(site_indices: Vec<u32>, seed: u64) -> Self {
        let n = site_indices.len();
        let mut link_q16 = Vec::with_capacity(n);
        let mut session_slot = Vec::with_capacity(n);
        for &site in &site_indices {
            let key = site_key(seed, site);
            let q = 0.55 + 0.4 * u01(hash3(key, SALT_LINK, 0));
            link_q16.push((q * f64::from(u16::MAX)) as u16);
            session_slot.push(hash3(key, SALT_SESSION, 0) as u32);
        }
        ShadowShard {
            installed_version: vec![1; n],
            link_q16,
            session_slot,
            session_epoch: vec![0; n],
            risk_score: vec![0; n],
            alert_count: vec![0; n],
            outcome: vec![OUTCOME_NONE; n],
            pending_chunks: vec![NO_DELIVERY; n],
            tampered: vec![false; n],
            old_bundle: vec![false; n],
            poisoned: Vec::new(),
            verdicts: Vec::new(),
            seed,
            site_index: site_indices,
        }
    }

    /// Number of shadow sites in this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.site_index.len()
    }

    /// Whether the shard holds no sites.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.site_index.is_empty()
    }

    /// Installed firmware version at `slot`.
    #[must_use]
    pub fn installed_version(&self, slot: u32) -> u32 {
        self.installed_version[slot as usize]
    }

    /// Whether `slot` applied the in-progress rollout.
    #[must_use]
    pub fn is_applied(&self, slot: u32) -> bool {
        self.outcome[slot as usize] == OUTCOME_APPLIED
    }

    /// Session-key slot and epoch at `slot`.
    #[must_use]
    pub fn session(&self, slot: u32) -> (u32, u16) {
        (
            self.session_slot[slot as usize],
            self.session_epoch[slot as usize],
        )
    }

    /// Clears per-rollout state (outcomes, deliveries, verdict cache).
    pub fn reset_rollout(&mut self) {
        self.outcome.fill(OUTCOME_NONE);
        self.pending_chunks.fill(NO_DELIVERY);
        self.tampered.fill(false);
        self.old_bundle.fill(false);
        self.verdicts.clear();
    }

    /// Approximate resident bytes of this shard's arrays.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        self.site_index.capacity() * 4
            + self.installed_version.capacity() * 4
            + self.link_q16.capacity() * 2
            + self.session_slot.capacity() * 4
            + self.session_epoch.capacity() * 2
            + self.risk_score.capacity() * 2
            + self.alert_count.capacity() * 2
            + self.outcome.capacity()
            + self.pending_chunks.capacity() * 2
            + self.tampered.capacity()
            + self.old_bundle.capacity()
            + self.poisoned.capacity() * 12
            + std::mem::size_of::<Self>()
    }

    /// Runs one distribution tick for the shard's members of the global
    /// wave range `[lo, hi)`. Cost is proportional to the members in
    /// range, not the shard size.
    pub fn rollout_tick(&mut self, lo: u32, hi: u32, ctx: &ShadowRolloutCtx<'_>) -> ShadowWaveOut {
        let mut out = ShadowWaveOut::default();
        let from = self.site_index.partition_point(|&s| s < lo);
        let to = self.site_index.partition_point(|&s| s < hi);
        for slot in from..to {
            if self.outcome[slot] != OUTCOME_NONE {
                continue;
            }
            let site = self.site_index[slot];
            let key = site_key(self.seed, site);
            if self.pending_chunks[slot] == NO_DELIVERY {
                // Start the delivery: a downgrade MITM substitutes the
                // old but genuinely signed bundle on the wire.
                let old = ctx.downgrade && ctx.old_encoded.is_some();
                let len = if old {
                    ctx.old_encoded.map_or(0, <[u8]>::len)
                } else {
                    ctx.encoded.len()
                };
                self.pending_chunks[slot] = chunk_count(len, ctx.chunk_bytes) as u16;
                self.old_bundle[slot] = old;
                self.tampered[slot] = false;
            }
            let len = if self.old_bundle[slot] {
                ctx.old_encoded.map_or(0, <[u8]>::len)
            } else {
                ctx.encoded.len()
            };
            let total = chunk_count(len, ctx.chunk_bytes);
            let q = f64::from(self.link_q16[slot]) / f64::from(u16::MAX);
            let p_deliver = (q * (1.0 - 0.85 * ctx.jam)).clamp(0.02, 1.0);
            for attempt in 0..ctx.budget {
                let pending = self.pending_chunks[slot];
                if pending == 0 {
                    break;
                }
                // Chunks land in order; a lost chunk is retried on a
                // later attempt. The chunk on the air is therefore the
                // first undelivered one.
                let chunk = total - usize::from(pending);
                out.frames_sent += 1;
                out.bytes_on_air += chunk_wire_len(len, ctx.chunk_bytes, chunk);
                let draw = hash3(
                    key ^ SALT_CHUNK,
                    ctx.tick_index,
                    ((chunk as u64) << 16) | attempt as u64,
                );
                if u01(draw) < p_deliver {
                    self.pending_chunks[slot] = pending - 1;
                    if ctx.tamper {
                        // An active MITM corrupts chunks as they land.
                        self.tampered[slot] = true;
                    }
                }
            }
            if self.pending_chunks[slot] == 0 {
                self.pending_chunks[slot] = NO_DELIVERY;
                self.resolve(slot, key, ctx, &mut out);
            }
        }
        out
    }

    /// Verifies and applies a completed delivery at `slot`.
    fn resolve(
        &mut self,
        slot: usize,
        key: u64,
        ctx: &ShadowRolloutCtx<'_>,
        out: &mut ShadowWaveOut,
    ) {
        let old = self.old_bundle[slot];
        let bytes = if old {
            ctx.old_encoded.unwrap_or(ctx.encoded)
        } else {
            ctx.encoded
        };
        let verdict = if self.tampered[slot] {
            out.individually_verified_sites += 1;
            Self::verify_tampered(bytes, key, ctx)
        } else {
            out.batch_verified_sites += 1;
            self.shared_verdict(old, bytes, ctx, out)
        };
        let code = match verdict {
            Ok(version) => {
                // Only the per-site monotone version rule remains after
                // the shared prefix.
                if version > self.installed_version[slot] {
                    self.installed_version[slot] = version;
                    self.session_epoch[slot] = self.session_epoch[slot].saturating_add(1);
                    OUTCOME_APPLIED
                } else {
                    reject_code("downgrade")
                }
            }
            Err(code) => code,
        };
        self.outcome[slot] = code;
        if code == OUTCOME_APPLIED {
            out.applied += 1;
            if let Some(at_ms) = ctx.poison_at_ms {
                self.poisoned.push((slot as u32, at_ms));
            }
        } else {
            out.rejected += 1;
            out.reject_reasons[usize::from(code) - 2] += 1;
        }
    }

    /// The shared (site-independent) verdict for the distributed bundle
    /// variant, computed once per shard per rollout and cached. The one
    /// [`UpdateBundle::verify_shared`] call runs the Fiat–Shamir batch
    /// over bundle + image signatures — this is where per-site verifies
    /// collapse into one batched verification per shard.
    fn shared_verdict(
        &mut self,
        old_bundle: bool,
        bytes: &[u8],
        ctx: &ShadowRolloutCtx<'_>,
        out: &mut ShadowWaveOut,
    ) -> Result<u32, u8> {
        if let Some(cached) = self
            .verdicts
            .iter()
            .find(|v| v.update_id == ctx.update_id && v.old_bundle == old_bundle)
        {
            return cached.shared;
        }
        out.batch_verify_calls += 1;
        let shared = match UpdateBundle::decode(bytes) {
            Err(e) => Err(reject_code(e.reason())),
            Ok(bundle) => match bundle.verify_shared_with_crls(
                ctx.store,
                ctx.now_ms,
                ctx.crls,
                crate::FLEET_COMPONENT,
            ) {
                Ok(()) => Ok(bundle.manifest.version),
                Err(e) => Err(reject_code(match e {
                    BundleError::Chain(_) => "chain",
                    other => other.reason(),
                })),
            },
        };
        self.verdicts.push(CachedVerdict {
            update_id: ctx.update_id,
            old_bundle,
            shared,
        });
        shared
    }

    /// Verifies a tampered delivery individually: rebuilds the bytes
    /// the site received (three deterministic flips per chunk body,
    /// mirroring the full transport's MITM) and runs the complete
    /// verification on them. Per-site corruption cannot share a
    /// verdict.
    fn verify_tampered(bytes: &[u8], key: u64, ctx: &ShadowRolloutCtx<'_>) -> Result<u32, u8> {
        let mut copy = bytes.to_vec();
        let total = chunk_count(copy.len(), ctx.chunk_bytes);
        for chunk in 0..total {
            let start = chunk * ctx.chunk_bytes;
            let span = ctx.chunk_bytes.min(copy.len() - start) as u64;
            if span == 0 {
                continue;
            }
            for flip in 0..3u64 {
                let at = start + (hash3(key ^ SALT_TAMPER, chunk as u64, flip) % span) as usize;
                copy[at] ^= 0x41;
            }
        }
        match UpdateBundle::decode(&copy) {
            Err(e) => Err(reject_code(e.reason())),
            Ok(bundle) => {
                match bundle.verify_shared_with_crls(
                    ctx.store,
                    ctx.now_ms,
                    ctx.crls,
                    crate::FLEET_COMPONENT,
                ) {
                    Ok(()) => Ok(bundle.manifest.version),
                    Err(e) => Err(reject_code(match e {
                        BundleError::Chain(_) => "chain",
                        other => other.reason(),
                    })),
                }
            }
        }
    }

    /// Emits the shard's IDS alerts for the tick `(prev_ms, now_ms]`:
    /// campaign-driven alerts across every site plus misbehaviour from
    /// poisoned sites. Bumps the per-site alert and risk counters.
    pub fn alert_tick(
        &mut self,
        campaigns: &[ShadowCampaign],
        prev_ms: u64,
        now_ms: u64,
    ) -> Vec<ShadowAlert> {
        let mut alerts = Vec::new();
        // Campaign-driven alerts: skip the whole shard unless a window
        // overlaps this tick.
        let any_active = campaigns
            .iter()
            .any(|c| c.start_ms <= now_ms && c.end_ms > prev_ms.saturating_sub(ALERT_COOLDOWN_MS));
        if any_active {
            for (slot, &site) in self.site_index.iter().enumerate() {
                let key = site_key(self.seed, site);
                for c in campaigns {
                    alerts_in_tick(key, c.class, c.start_ms, c.end_ms, prev_ms, now_ms, |t| {
                        alerts.push(ShadowAlert {
                            site,
                            class: c.class,
                            at_ms: t,
                        });
                        self.alert_count[slot] = self.alert_count[slot].saturating_add(1);
                        self.risk_score[slot] = self.risk_score[slot].saturating_add(16);
                    });
                }
            }
        }
        for &(slot, start_ms) in &self.poisoned {
            let site = self.site_index[slot as usize];
            let key = site_key(self.seed, site);
            for class in POISON_CLASSES {
                alerts_in_tick(
                    key,
                    class,
                    start_ms,
                    start_ms + POISON_DURATION_MS,
                    prev_ms,
                    now_ms,
                    |t| {
                        alerts.push(ShadowAlert {
                            site,
                            class,
                            at_ms: t,
                        });
                        self.alert_count[slot as usize] =
                            self.alert_count[slot as usize].saturating_add(1);
                        self.risk_score[slot as usize] =
                            self.risk_score[slot as usize].saturating_add(16);
                    },
                );
            }
        }
        alerts
    }
}

// ---------------------------------------------------------------------
// The population: shards + deterministic sweep.
// ---------------------------------------------------------------------

/// The whole shadow population: shards, layout, and the sweep schedule
/// (parallel pool or sequential reference — both produce identical
/// merged output).
#[derive(Debug)]
pub struct ShadowPopulation {
    /// Index arithmetic for the two-fidelity split.
    pub layout: ShadowLayout,
    shards: Vec<ShadowShard>,
    sequential: bool,
}

impl ShadowPopulation {
    /// Commissions the shadow population for a fleet of `sites` sites
    /// under `config`, deriving all per-site state from `seed`.
    #[must_use]
    pub fn new(sites: usize, config: &ShadowConfig, seed: u64) -> Self {
        let layout = ShadowLayout::new(sites, config);
        let shadow_seed = mix64(seed ^ 0x5AD0_51DE);
        // Shadow global indices ascend; carve them into shard-sized
        // runs.
        let mut shadow_sites: Vec<u32> = Vec::with_capacity(layout.shadow_count());
        let mut full_iter = layout.full.iter().copied().peekable();
        for site in 0..sites as u32 {
            if full_iter.peek() == Some(&site) {
                full_iter.next();
            } else {
                shadow_sites.push(site);
            }
        }
        let shards: Vec<ShadowShard> = shadow_sites
            .chunks(layout.shard_sites)
            .map(|chunk| ShadowShard::new(chunk.to_vec(), shadow_seed))
            .collect();
        ShadowPopulation {
            layout,
            shards,
            sequential: config.sequential,
        }
    }

    /// Number of shadow sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layout.shadow_count()
    }

    /// Whether the population holds no shadow sites.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read access to a shard.
    #[must_use]
    pub fn shard(&self, shard: u32) -> &ShadowShard {
        &self.shards[shard as usize]
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Approximate resident bytes across every shard.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        self.shards.iter().map(ShadowShard::mem_bytes).sum()
    }

    /// Clears per-rollout state in every shard.
    pub fn reset_rollout(&mut self) {
        for shard in &mut self.shards {
            shard.reset_rollout();
        }
    }

    /// Steps every shard's distribution tick for the wave range
    /// `[lo, hi)` and returns the per-shard outputs in shard order —
    /// identical whether the shards ran on the sweep pool or
    /// sequentially.
    pub fn rollout_sweep(
        &mut self,
        lo: u32,
        hi: u32,
        ctx: &ShadowRolloutCtx<'_>,
    ) -> Vec<ShadowWaveOut> {
        if self.sequential {
            self.shards
                .iter_mut()
                .map(|s| s.rollout_tick(lo, hi, ctx))
                .collect()
        } else {
            par_sweep_mut(&mut self.shards, |_, s| s.rollout_tick(lo, hi, ctx))
        }
    }

    /// Steps every shard's alert tick and returns the merged alerts in
    /// shard order (order-preserving merge — the determinism anchor).
    pub fn alert_sweep(
        &mut self,
        campaigns: &[ShadowCampaign],
        prev_ms: u64,
        now_ms: u64,
    ) -> Vec<ShadowAlert> {
        let per_shard: Vec<Vec<ShadowAlert>> = if self.sequential {
            self.shards
                .iter_mut()
                .map(|s| s.alert_tick(campaigns, prev_ms, now_ms))
                .collect()
        } else {
            par_sweep_mut(&mut self.shards, |_, s| {
                s.alert_tick(campaigns, prev_ms, now_ms)
            })
        };
        let mut merged = Vec::with_capacity(per_shard.iter().map(Vec::len).sum());
        for alerts in per_shard {
            merged.extend(alerts);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_subset_is_strided_distinct_and_includes_canary() {
        for sites in [1usize, 2, 4, 63, 64, 1000] {
            for full in [1usize, 2, 4, 16] {
                let picks = full_site_indices(sites, full);
                assert_eq!(picks[0], 0, "canary must be full");
                assert!(picks.windows(2).all(|w| w[0] < w[1]), "{picks:?}");
                assert!(picks.iter().all(|&p| (p as usize) < sites));
                assert_eq!(picks.len(), full.clamp(1, sites));
            }
        }
    }

    #[test]
    fn layout_roundtrips_every_site() {
        let config = ShadowConfig {
            full_sites: 4,
            shard_sites: 10,
            sequential: true,
        };
        let layout = ShadowLayout::new(64, &config);
        let pop = ShadowPopulation::new(64, &config, 7);
        let mut full_seen = 0usize;
        let mut shadow_seen = 0usize;
        for site in 0..64u32 {
            match layout.slot_of(site) {
                SiteSlot::Full(pos) => {
                    assert_eq!(layout.full[pos as usize], site);
                    full_seen += 1;
                }
                SiteSlot::Shadow { shard, slot } => {
                    assert_eq!(pop.shard(shard).site_index[slot as usize], site);
                    shadow_seen += 1;
                }
            }
        }
        assert_eq!(full_seen, 4);
        assert_eq!(shadow_seen, 60);
        assert_eq!(pop.len(), 60);
        assert_eq!(pop.shard_count(), 6);
    }

    #[test]
    fn stateless_draws_are_deterministic_and_spread() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        let a = u01(hash3(1, 2, 3));
        assert!((0.0..1.0).contains(&a));
        assert_eq!(a, u01(hash3(1, 2, 3)));
        assert_ne!(u01(hash3(1, 2, 3)), u01(hash3(1, 2, 4)));
        // Mean of many u01 draws is near 1/2 (sanity, not statistics).
        let n = 4096;
        let mean: f64 = (0..n).map(|i| u01(mix64(i))).sum::<f64>() / f64::from(n as u32);
        assert!((mean - 0.5).abs() < 0.05, "{mean}");
    }

    #[test]
    fn alert_schedule_respects_window_latency_and_cooldown() {
        let key = site_key(9, 5);
        let mut fired = Vec::new();
        // Whole campaign in one evaluation window.
        alerts_in_tick(key, "deauth-flood", 10_000, 100_000, 0, 200_000, |t| {
            fired.push(t);
        });
        assert!(!fired.is_empty());
        assert!(fired[0] >= 11_000 && fired[0] < 21_000, "{fired:?}");
        assert!(fired.windows(2).all(|w| w[1] - w[0] == ALERT_COOLDOWN_MS));
        assert!(fired.iter().all(|&t| t < 100_000));
        // Tick-by-tick evaluation sees exactly the same instants.
        let mut stepped = Vec::new();
        let mut prev = 0u64;
        while prev < 200_000 {
            let now = prev + 500;
            alerts_in_tick(key, "deauth-flood", 10_000, 100_000, prev, now, |t| {
                stepped.push(t);
            });
            prev = now;
        }
        assert_eq!(fired, stepped, "schedule must be evaluation-invariant");
    }

    #[test]
    fn parallel_and_sequential_sweeps_merge_identically() {
        let mk = |sequential| {
            let config = ShadowConfig {
                full_sites: 2,
                shard_sites: 16,
                sequential,
            };
            ShadowPopulation::new(200, &config, 11)
        };
        let campaigns = [ShadowCampaign {
            class: "deauth-flood",
            start_ms: 1_000,
            end_ms: 90_000,
        }];
        let mut par = mk(false);
        let mut seq = mk(true);
        let mut prev = 0u64;
        for _ in 0..40 {
            let now = prev + 500;
            assert_eq!(
                par.alert_sweep(&campaigns, prev, now),
                seq.alert_sweep(&campaigns, prev, now)
            );
            prev = now;
        }
    }

    #[test]
    fn reject_codes_cover_all_reasons() {
        for (i, reason) in REJECT_REASONS.iter().enumerate() {
            assert_eq!(usize::from(reject_code(reason)), i + 2);
        }
        assert_eq!(reject_code("nonsense"), OUTCOME_NONE);
    }
}
