//! Property-based tests over the generative TARA's invariants:
//! canonical-hash dedup, enumeration-order-independent top-k ranking,
//! and hypothesis idempotence under duplicate SIEM evidence.

use proptest::prelude::*;
use silvasec_risk::catalog::worksite_model;
use silvasec_tara::engine::CellScore;
use silvasec_tara::{scenario_hash, HypothesisSet, ScenarioSpace, TaraCatalog, TopK};
use std::collections::HashMap;

/// Unpacks one word into a small canonical axis tuple (the real
/// catalog's axes are this size: ≤16 classes, ≤16 assets, ≤8 entries,
/// ≤8 odds, small variants).
fn tuple_of(word: u32) -> (u64, u64, u64, u64, u64) {
    (
        u64::from(word & 0xF),
        u64::from((word >> 4) & 0xF),
        u64::from((word >> 8) & 0x7),
        u64::from((word >> 11) & 0x7),
        u64::from((word >> 14) & 0xFF),
    )
}

proptest! {
    // ---------------- canonical scenario hash ----------------

    /// Over arbitrary samples of the axis space, equal tuples hash
    /// equal and distinct tuples never collide — duplicates fold to
    /// one scenario, distinct scenarios stay distinct.
    #[test]
    fn scenario_hash_is_injective_on_the_axis_space(
        words in proptest::collection::vec(any::<u32>(), 1..400),
    ) {
        let mut by_hash: HashMap<u64, (u64, u64, u64, u64, u64)> = HashMap::new();
        for word in words {
            let t = tuple_of(word);
            let h = scenario_hash(t.0, t.1, t.2, t.3, t.4);
            // Same tuple → same hash (stateless), different tuple with
            // the same hash would be a collision.
            prop_assert_eq!(h, scenario_hash(t.0, t.1, t.2, t.3, t.4));
            if let Some(prev) = by_hash.insert(h, t) {
                prop_assert_eq!(prev, t, "hash collision at {:#x}", h);
            }
        }
    }

    /// Whatever the scaling knobs, the engine's dedup accounting
    /// balances and matches the catalog's closed-form counts.
    #[test]
    fn dedup_accounting_balances_for_any_knobs(
        seed in any::<u64>(),
        variants in 1u32..6,
        top_k in 0usize..128,
    ) {
        let catalog = TaraCatalog::from_model(&worksite_model());
        let report = ScenarioSpace::new(&catalog, seed, variants, top_k).enumerate();
        prop_assert_eq!(report.enumerated, catalog.cells_per_variant() * u64::from(variants));
        prop_assert_eq!(report.distinct, catalog.distinct_per_variant() * u64::from(variants));
        prop_assert_eq!(report.enumerated, report.distinct + report.duplicates_folded);
        prop_assert_eq!(report.top.len(), top_k.min(report.distinct as usize));
    }

    // ---------------- top-k order independence ----------------

    /// The ranking depends only on the *set* of scenarios pushed:
    /// forward order, reverse order, and an arbitrary two-shard split
    /// merged back together all agree.
    #[test]
    fn topk_is_enumeration_order_independent(
        words in proptest::collection::vec(any::<u32>(), 1..200),
        k in 0usize..32,
        split in any::<u64>(),
    ) {
        let scores: Vec<CellScore> = words
            .iter()
            .map(|&w| CellScore::synthetic((w % 6) as u8, (w >> 3) as u16 & 0xFF, w >> 11))
            .collect();
        let mut forward = TopK::new(k);
        let mut backward = TopK::new(k);
        let mut left = TopK::new(k);
        let mut right = TopK::new(k);
        for s in &scores {
            forward.push(*s);
        }
        for s in scores.iter().rev() {
            backward.push(*s);
        }
        for (i, s) in scores.iter().enumerate() {
            if (split >> (i % 64)) & 1 == 0 {
                left.push(*s);
            } else {
                right.push(*s);
            }
        }
        left.merge(&right);
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(&forward, &left);
        // The contents really are sorted best-first under the total
        // order, and bounded by k.
        prop_assert!(forward.len() <= k);
        for w in forward.entries().windows(2) {
            prop_assert!(w[0].rank_key() < w[1].rank_key());
        }
    }

    /// Parallel enumeration over the variant axis is bit-identical to
    /// the sequential walk for arbitrary knobs.
    #[test]
    fn parallel_enumeration_matches_sequential(
        seed in any::<u64>(),
        variants in 1u32..5,
    ) {
        let catalog = TaraCatalog::from_model(&worksite_model());
        let space = ScenarioSpace::new(&catalog, seed, variants, 64);
        let seq = space.enumerate();
        let par = space.enumerate_parallel();
        prop_assert_eq!(&seq, &par);
        prop_assert_eq!(seq.digest(), par.digest());
    }

    // ---------------- hypothesis idempotence ----------------

    /// Replaying an evidence stream with every item duplicated (at a
    /// later timestamp) leaves the hypothesis set exactly where the
    /// deduplicated stream leaves it: confirm and retire are no-ops on
    /// already-transitioned hypotheses, and first timestamps stick.
    #[test]
    fn confirm_and_retire_are_idempotent_under_duplicate_evidence(
        seed in any::<u64>(),
        ops in proptest::collection::vec(any::<u16>(), 1..60),
    ) {
        let catalog = TaraCatalog::from_model(&worksite_model());
        let top = ScenarioSpace::new(&catalog, seed, 1, 96).enumerate().top;
        let classes = catalog.classes.clone();

        let mut once = HypothesisSet::from_ranking(top.clone());
        let mut twice = HypothesisSet::from_ranking(top);
        let mut now = 0u64;
        for word in ops {
            let class = &classes[usize::from(word) % classes.len()];
            let sites = u32::from(word >> 8) % 9 + 1;
            let retire = word & 0x40 != 0;
            if retire {
                once.retire(class, now);
                twice.retire(class, now);
                twice.retire(class, now + 1);
            } else {
                once.confirm(class, sites, now);
                twice.confirm(class, sites, now);
                twice.confirm(class, sites + 3, now + 1);
            }
            now += 100;
            prop_assert_eq!(once.first_divergence(&twice), None);
        }
        // Retirement is terminal: a retired hypothesis never reopens
        // or re-confirms, whatever evidence follows.
        for h in once.hypotheses() {
            if let Some(retired) = h.retired_at_ms {
                if let Some(confirmed) = h.confirmed_at_ms {
                    prop_assert!(confirmed <= retired);
                }
            }
        }
    }
}
