//! The enumerator/scorer: cross product → canonical hash dedup →
//! 21434 scoring → deterministic top-k.
//!
//! A [`ScenarioSpace`] walks `rows × assets × entry points × ODD
//! conditions × variants`. Each cell's canonical identity is the axis
//! tuple `(class, asset, entry, odd, variant)` — the Table I *row*
//! that exposed the class is deliberately not part of it, so a class
//! exposed by several characteristics enumerates several cells that
//! fold into one scenario. Identity is hashed with the stateless
//! SplitMix64 [`scenario_hash`]; scoring is pure arithmetic over the
//! existing 21434 machinery ([`RiskLevel::from_matrix`], the
//! attack-potential → feasibility thresholds, impact-rating overall),
//! so the grounded baseline cell of every hand-built threat reproduces
//! the `exp3_tara` score exactly.

use crate::catalog::{TaraCatalog, CLEAR_ODD, ENTRY_PENALTY, ENTRY_POINTS, UNGROUNDED_BASE_TOTAL};
use crate::topk::TopK;
use serde::Serialize;
use silvasec_crypto::sha256;
use silvasec_risk::feasibility::{AttackFeasibility, AttackPotential};
use silvasec_risk::impact::{ImpactLevel, ImpactRating};
use silvasec_risk::tara::{RiskLevel, Tara, Treatment};
use silvasec_sim::rng::hash3;
use silvasec_sim::sweep::par_sweep;
use std::collections::HashSet;

/// Canonical SplitMix64 hash of one scenario's axis tuple. Two cells
/// with the same tuple hash identically whatever enumeration path
/// reached them; distinct tuples collide with probability ~2⁻⁶⁴ (the
/// dedup proptests sample this over arbitrary catalogs).
#[must_use]
pub fn scenario_hash(class: u64, asset: u64, entry: u64, odd: u64, variant: u64) -> u64 {
    hash3(hash3(class, asset, entry), odd, variant)
}

/// Spreads a summed attack-potential total back over the 21434 factor
/// scales, so the existing [`AttackPotential::feasibility`] thresholds
/// stay the single source of the total → feasibility mapping.
fn spread_total(total: u8) -> AttackPotential {
    AttackPotential::new(
        total.min(19),
        total.saturating_sub(19).min(8),
        total.saturating_sub(27).min(11),
        total.saturating_sub(38).min(10),
        total.saturating_sub(48),
    )
}

/// Impact under an ODD condition: an adverse condition (any index
/// past [`CLEAR_ODD`]) escalates a safety-relevant rating one level —
/// the degraded ODD strips exactly the sensing margin the safety
/// argument leans on. Non-safety-relevant scenarios and the clear
/// baseline keep the rating's overall.
fn effective_impact(rating: &ImpactRating, odd: u8) -> ImpactLevel {
    let overall = rating.overall();
    if odd == 0 || !rating.is_safety_relevant() {
        return overall;
    }
    match overall {
        ImpactLevel::Negligible => ImpactLevel::Moderate,
        ImpactLevel::Moderate => ImpactLevel::Major,
        _ => ImpactLevel::Severe,
    }
}

/// A scored cell in compact, `Copy` form — what the hot enumeration
/// loop and [`TopK`] traffic in; materialized into a [`ScoredScenario`]
/// (with the axis names spelled out) only once ranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellScore {
    /// Canonical scenario hash.
    pub hash: u64,
    /// Class index into [`TaraCatalog::classes`].
    pub class: u16,
    /// Asset index into [`TaraCatalog::assets`].
    pub asset: u16,
    /// Entry-point index into [`ENTRY_POINTS`].
    pub entry: u8,
    /// ODD-condition index into [`TaraCatalog::odd_conditions`].
    pub odd: u8,
    /// Variant index.
    pub variant: u32,
    /// Whether a hand-built threat grounded the cell.
    pub grounded: bool,
    /// Scored impact.
    pub impact: ImpactLevel,
    /// Scored feasibility.
    pub feasibility: AttackFeasibility,
    /// Risk value from the 21434 matrix.
    pub risk: RiskLevel,
    /// Treatment under the default policy.
    pub treatment: Treatment,
}

impl CellScore {
    /// The ranking key: risk descending, then the canonical axis tuple
    /// ascending — a total order, so rankings are enumeration-order
    /// independent.
    #[must_use]
    pub fn rank_key(&self) -> (u8, u16, u16, u8, u8, u32) {
        (
            u8::MAX - self.risk.0,
            self.class,
            self.asset,
            self.entry,
            self.odd,
            self.variant,
        )
    }

    /// A minimal score for ranking tests (risk + class + variant set,
    /// everything else zeroed).
    #[must_use]
    pub fn synthetic(risk: u8, class: u16, variant: u32) -> Self {
        CellScore {
            hash: scenario_hash(u64::from(class), 0, 0, 0, u64::from(variant)),
            class,
            asset: 0,
            entry: 0,
            odd: 0,
            variant,
            grounded: false,
            impact: ImpactLevel::Negligible,
            feasibility: AttackFeasibility::VeryLow,
            risk: RiskLevel(risk),
            treatment: Tara::default_treatment(RiskLevel(risk)),
        }
    }
}

/// One ranked scenario with its axis names spelled out.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScoredScenario {
    /// Canonical scenario hash.
    pub hash: u64,
    /// Attack-class tag (e.g. `"gnss-spoofing"`).
    pub attack_class: String,
    /// Attacked asset id (e.g. `"fw.gnss"`).
    pub asset_id: String,
    /// Entry point (e.g. `"ep.gnss-band"`).
    pub entry_point: String,
    /// ODD condition (e.g. `"tc.fog"`, or `"odd.clear"`).
    pub odd: String,
    /// Variant index (0 = the baseline attack-path variant).
    pub variant: u32,
    /// Whether a hand-built threat grounded the cell.
    pub grounded: bool,
    /// Scored impact.
    pub impact: ImpactLevel,
    /// Scored feasibility.
    pub feasibility: AttackFeasibility,
    /// Risk value from the 21434 matrix.
    pub risk: RiskLevel,
    /// Treatment under the default policy.
    pub treatment: Treatment,
}

/// The result of one enumeration: dedup accounting plus the ranking.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EnumerationReport {
    /// Seed the variant perturbations were keyed by.
    pub seed: u64,
    /// Variants enumerated.
    pub variants: u32,
    /// Cells walked (before dedup).
    pub enumerated: u64,
    /// Distinct canonical scenarios scored.
    pub distinct: u64,
    /// Cells folded into an already-seen scenario.
    pub duplicates_folded: u64,
    /// Distinct scenarios a hand-built threat grounded.
    pub grounded_scored: u64,
    /// The top-k ranking, highest risk first.
    pub top: Vec<ScoredScenario>,
}

impl EnumerationReport {
    /// The ranking as canonical JSONL (one scenario per line) — the
    /// byte string determinism assertions compare.
    #[must_use]
    pub fn ranking_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.top {
            out.push_str(&serde_json::to_string(s).expect("scenario serializes"));
            out.push('\n');
        }
        out
    }

    /// SHA-256 over the dedup counters and the canonical ranking — a
    /// compact fingerprint for byte-identity assertions.
    #[must_use]
    pub fn digest(&self) -> [u8; 32] {
        let header = format!(
            "silvasec-tara seed={} variants={} enumerated={} distinct={} folded={} grounded={}\n",
            self.seed,
            self.variants,
            self.enumerated,
            self.distinct,
            self.duplicates_folded,
            self.grounded_scored
        );
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(self.ranking_jsonl().as_bytes());
        sha256::digest(&bytes)
    }
}

/// Per-variant partial result, merged in variant order.
struct VariantPartial {
    enumerated: u64,
    distinct: u64,
    duplicates_folded: u64,
    grounded_scored: u64,
    top: TopK,
}

/// The enumeration space: a catalog plus the scaling knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpace<'a> {
    /// The generative axes.
    pub catalog: &'a TaraCatalog,
    /// Seed keying the variant attack-path perturbations.
    pub seed: u64,
    /// Attack-path variants per canonical (class, asset, entry, odd)
    /// cell; variant 0 is the unperturbed baseline.
    pub variants: u32,
    /// Ranking capacity.
    pub top_k: usize,
}

impl<'a> ScenarioSpace<'a> {
    /// Creates a space over `catalog` with the given knobs.
    #[must_use]
    pub fn new(catalog: &'a TaraCatalog, seed: u64, variants: u32, top_k: usize) -> Self {
        ScenarioSpace {
            catalog,
            seed,
            variants,
            top_k,
        }
    }

    /// The smallest variant count whose cross product enumerates at
    /// least `target` cells.
    #[must_use]
    pub fn variants_for(catalog: &TaraCatalog, target: u64) -> u32 {
        let per = catalog.cells_per_variant().max(1);
        u32::try_from(target.div_ceil(per))
            .unwrap_or(u32::MAX)
            .max(1)
    }

    /// Extra attack potential variant `v` adds to a cell: 0 for the
    /// baseline variant, else a stateless draw in `0..9` keyed by
    /// `(seed, class, asset, variant)` — entry and ODD deliberately
    /// excluded, so a variant models one alternative attack path
    /// reused across the surface.
    #[must_use]
    pub fn variant_delta(&self, class: u16, asset: u16, variant: u32) -> u8 {
        if variant == 0 {
            return 0;
        }
        (hash3(
            self.seed,
            hash3(u64::from(class), u64::from(asset), u64::from(variant)),
            0xD51A,
        ) % 9) as u8
    }

    /// Scores one canonical cell.
    #[must_use]
    pub fn score_cell(
        &self,
        class: u16,
        asset: u16,
        entry: u8,
        odd: u8,
        variant: u32,
    ) -> CellScore {
        let grounding = self.catalog.grounded[class as usize]
            .as_ref()
            .filter(|g| g.asset == asset);
        let (base_total, rating) = match grounding {
            Some(g) => (g.base_total, &g.impact),
            None => (
                UNGROUNDED_BASE_TOTAL,
                &self.catalog.asset_impacts[asset as usize],
            ),
        };
        let native = TaraCatalog::native_entry(&self.catalog.classes[class as usize]);
        let entry_cost = if entry == native { 0 } else { ENTRY_PENALTY };
        let total = base_total
            .saturating_add(entry_cost)
            .saturating_add(self.variant_delta(class, asset, variant));
        let feasibility = spread_total(total).feasibility();
        let impact = effective_impact(rating, odd);
        let risk = RiskLevel::from_matrix(impact, feasibility);
        CellScore {
            hash: scenario_hash(
                u64::from(class),
                u64::from(asset),
                u64::from(entry),
                u64::from(odd),
                u64::from(variant),
            ),
            class,
            asset,
            entry,
            odd,
            variant,
            grounded: grounding.is_some(),
            impact,
            feasibility,
            risk,
            treatment: Tara::default_treatment(risk),
        }
    }

    /// Walks one variant of the cross product: every surface row ×
    /// asset × entry × ODD cell, deduped by canonical hash.
    fn enumerate_variant(&self, variant: u32) -> VariantPartial {
        let catalog = self.catalog;
        let mut seen: HashSet<u64> =
            HashSet::with_capacity(catalog.distinct_per_variant() as usize);
        let mut partial = VariantPartial {
            enumerated: 0,
            distinct: 0,
            duplicates_folded: 0,
            grounded_scored: 0,
            top: TopK::new(self.top_k),
        };
        for &(_, class) in &catalog.rows {
            for asset in 0..catalog.assets.len() as u16 {
                for entry in 0..ENTRY_POINTS.len() as u8 {
                    for odd in 0..catalog.odd_conditions.len() as u8 {
                        partial.enumerated += 1;
                        let hash = scenario_hash(
                            u64::from(class),
                            u64::from(asset),
                            u64::from(entry),
                            u64::from(odd),
                            u64::from(variant),
                        );
                        if !seen.insert(hash) {
                            partial.duplicates_folded += 1;
                            continue;
                        }
                        let score = self.score_cell(class, asset, entry, odd, variant);
                        partial.distinct += 1;
                        partial.grounded_scored += u64::from(score.grounded);
                        partial.top.push(score);
                    }
                }
            }
        }
        partial
    }

    fn report_from(&self, partials: Vec<VariantPartial>) -> EnumerationReport {
        let mut top = TopK::new(self.top_k);
        let mut report = EnumerationReport {
            seed: self.seed,
            variants: self.variants,
            enumerated: 0,
            distinct: 0,
            duplicates_folded: 0,
            grounded_scored: 0,
            top: Vec::new(),
        };
        for partial in partials {
            report.enumerated += partial.enumerated;
            report.distinct += partial.distinct;
            report.duplicates_folded += partial.duplicates_folded;
            report.grounded_scored += partial.grounded_scored;
            top.merge(&partial.top);
        }
        report.top = top
            .into_vec()
            .into_iter()
            .map(|c| self.materialize(&c))
            .collect();
        report
    }

    /// Spells out a compact score's axis names.
    #[must_use]
    pub fn materialize(&self, cell: &CellScore) -> ScoredScenario {
        ScoredScenario {
            hash: cell.hash,
            attack_class: self.catalog.classes[cell.class as usize].clone(),
            asset_id: self.catalog.assets[cell.asset as usize].clone(),
            entry_point: ENTRY_POINTS[cell.entry as usize].to_string(),
            odd: self.catalog.odd_conditions[cell.odd as usize].clone(),
            variant: cell.variant,
            grounded: cell.grounded,
            impact: cell.impact,
            feasibility: cell.feasibility,
            risk: cell.risk,
            treatment: cell.treatment,
        }
    }

    /// Sequential enumeration: variants in order, one pass each.
    #[must_use]
    pub fn enumerate(&self) -> EnumerationReport {
        let partials = (0..self.variants)
            .map(|v| self.enumerate_variant(v))
            .collect();
        self.report_from(partials)
    }

    /// Parallel enumeration over the variant axis via `par_sweep` —
    /// bit-identical to [`ScenarioSpace::enumerate`]: variants never
    /// share canonical scenarios (the variant index is part of the
    /// identity), dedup is variant-local, and the per-variant rankings
    /// merge through the order-independent [`TopK`].
    #[must_use]
    pub fn enumerate_parallel(&self) -> EnumerationReport {
        let points: Vec<u32> = (0..self.variants).collect();
        let partials = par_sweep(&points, |&v| self.enumerate_variant(v));
        self.report_from(partials)
    }

    /// The grounded baseline cells — native entry point, clear ODD,
    /// variant 0 — one per grounded class. These are the cells the
    /// hand-built `exp3_tara` assessment must agree with, paired with
    /// the grounding threat's id for the lookup.
    #[must_use]
    pub fn baseline_cells(&self) -> Vec<(String, ScoredScenario)> {
        let clear = self
            .catalog
            .odd_conditions
            .iter()
            .position(|o| o == CLEAR_ODD)
            .unwrap_or(0) as u8;
        let mut cells = Vec::new();
        for (class, grounding) in self.catalog.grounded.iter().enumerate() {
            let Some(g) = grounding else { continue };
            let native = TaraCatalog::native_entry(&self.catalog.classes[class]);
            let cell = self.score_cell(class as u16, g.asset, native, clear, 0);
            cells.push((g.threat_id.clone(), self.materialize(&cell)));
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_risk::catalog::worksite_model;

    fn space(catalog: &TaraCatalog, variants: u32) -> ScenarioSpace<'_> {
        ScenarioSpace::new(catalog, 11, variants, 32)
    }

    #[test]
    fn dedup_accounting_balances() {
        let catalog = TaraCatalog::from_model(&worksite_model());
        let report = space(&catalog, 3).enumerate();
        assert_eq!(report.enumerated, catalog.cells_per_variant() * 3);
        assert_eq!(report.distinct, catalog.distinct_per_variant() * 3);
        assert_eq!(
            report.enumerated,
            report.distinct + report.duplicates_folded
        );
        assert!(report.duplicates_folded > 0, "Table I rows must overlap");
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let catalog = TaraCatalog::from_model(&worksite_model());
        let s = space(&catalog, 8);
        let seq = s.enumerate();
        let par = s.enumerate_parallel();
        assert_eq!(seq, par);
        assert_eq!(seq.digest(), par.digest());
    }

    #[test]
    fn same_seed_is_byte_identical_and_seeds_differ() {
        let catalog = TaraCatalog::from_model(&worksite_model());
        let a = ScenarioSpace::new(&catalog, 7, 4, 32).enumerate();
        let b = ScenarioSpace::new(&catalog, 7, 4, 32).enumerate();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.ranking_jsonl(), b.ranking_jsonl());
        let c = ScenarioSpace::new(&catalog, 8, 4, 32).enumerate();
        assert_ne!(a.digest(), c.digest(), "seed must key the variants");
    }

    #[test]
    fn baseline_cells_reproduce_the_hand_built_assessment() {
        let model = worksite_model();
        let catalog = TaraCatalog::from_model(&model);
        let oracle = Tara::assess(&model);
        let cells = space(&catalog, 1).baseline_cells();
        assert_eq!(cells.len(), 8);
        for (threat_id, cell) in &cells {
            let expected = oracle
                .risks
                .iter()
                .find(|r| &r.threat_id == threat_id)
                .expect("grounding threat is assessed");
            assert_eq!(cell.impact, expected.impact, "{threat_id}");
            assert_eq!(cell.feasibility, expected.feasibility, "{threat_id}");
            assert_eq!(cell.risk, expected.risk, "{threat_id}");
            assert_eq!(cell.treatment, expected.treatment, "{threat_id}");
            assert!(cell.grounded);
        }
    }

    #[test]
    fn ranking_is_sorted_and_bounded() {
        let catalog = TaraCatalog::from_model(&worksite_model());
        let report = space(&catalog, 2).enumerate();
        assert_eq!(report.top.len(), 32);
        for w in report.top.windows(2) {
            assert!(w[0].risk >= w[1].risk);
        }
        // The worksite's headline risks must surface at the top.
        assert_eq!(report.top[0].risk, RiskLevel(5));
    }

    #[test]
    fn variants_for_covers_the_target() {
        let catalog = TaraCatalog::from_model(&worksite_model());
        let per = catalog.cells_per_variant();
        assert_eq!(ScenarioSpace::variants_for(&catalog, 1), 1);
        assert_eq!(ScenarioSpace::variants_for(&catalog, per), 1);
        assert_eq!(ScenarioSpace::variants_for(&catalog, per + 1), 2);
        let v = ScenarioSpace::variants_for(&catalog, 1_000_000);
        assert!(u64::from(v) * per >= 1_000_000);
    }

    #[test]
    fn adverse_odd_escalates_only_safety_relevant_cells() {
        let catalog = TaraCatalog::from_model(&worksite_model());
        let s = space(&catalog, 1);
        let camera = catalog
            .classes
            .iter()
            .position(|c| c == "camera-blinding")
            .unwrap() as u16;
        let g = catalog.grounded[camera as usize].as_ref().unwrap();
        let clear = s.score_cell(camera, g.asset, 2, 0, 0);
        let fog = s.score_cell(camera, g.asset, 2, 1, 0);
        assert!(fog.impact >= clear.impact);
        assert!(fog.risk >= clear.risk);
    }
}
