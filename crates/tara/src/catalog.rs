//! The generative axes: what the cross product ranges over.
//!
//! A [`TaraCatalog`] is distilled from a
//! [`WorksiteModel`]: the distinct attack classes (with every Table I
//! surface row that exposes them), the asset ids, a fixed entry-point
//! vocabulary, and the ODD conditions (the model's SOTIF triggering
//! conditions plus the clear-weather baseline). The hand-built threat
//! scenarios *ground* the catalog: for a (class, asset) pair the expert
//! already assessed, the generator starts from the expert's attack
//! paths and impact rating, so the baseline cell reproduces the
//! hand-built score exactly (the `exp3_tara` oracle cross-check).

use serde::Serialize;
use silvasec_risk::catalog::ForestryCharacteristic;
use silvasec_risk::impact::{ImpactCategory, ImpactRating};
use silvasec_risk::threat::WorksiteModel;

/// The entry-point surface every scenario is reached through. The
/// vocabulary is fixed: entry points are *how* the attacker touches the
/// worksite, not *what* they attack, and the worksite's physical
/// surface does not change with the model.
pub const ENTRY_POINTS: [&str; 5] = [
    "ep.radio-link",
    "ep.gnss-band",
    "ep.optical-path",
    "ep.update-channel",
    "ep.physical-access",
];

/// The ODD condition under which nothing is degraded (the baseline
/// cell of the ODD axis; adverse conditions come from the model's
/// SOTIF triggering conditions).
pub const CLEAR_ODD: &str = "odd.clear";

/// Attack potential a non-native entry point adds to every path: the
/// attacker must first build a foothold on a surface the attack class
/// was not designed for.
pub const ENTRY_PENALTY: u8 = 6;

/// Base attack-potential total for a (class, asset) pair no hand-built
/// threat grounds — a moderate two-step campaign (cf. the `moderate`
/// step builder of the hand-built catalog, total 15).
pub const UNGROUNDED_BASE_TOTAL: u8 = 15;

/// Grounding of one attack class by a hand-built threat scenario.
#[derive(Debug, Clone, Serialize)]
pub struct Grounding {
    /// The hand-built threat scenario id (e.g. `"ts.gnss-spoofing"`).
    pub threat_id: String,
    /// Index (into [`TaraCatalog::assets`]) of the asset the threat's
    /// damage scenario attacks.
    pub asset: u16,
    /// The easiest hand-built attack path's required potential: min
    /// over paths of the hardest step's total (21434: a path is
    /// dominated by its hardest step, the scenario takes its easiest
    /// path).
    pub base_total: u8,
    /// The hand-built damage scenario's impact rating.
    pub impact: ImpactRating,
}

/// The generative axes distilled from one worksite model.
#[derive(Debug, Clone)]
pub struct TaraCatalog {
    /// Distinct attack classes, sorted — the canonical class index
    /// order every hash and ranking tiebreak uses.
    pub classes: Vec<String>,
    /// Table I surface rows as (characteristic, class index) pairs —
    /// the *enumeration source*. Classes exposed by several
    /// characteristics appear once per row, so the cross product
    /// produces duplicate canonical scenarios that dedup must fold.
    pub rows: Vec<(ForestryCharacteristic, u16)>,
    /// Asset ids, in model order.
    pub assets: Vec<String>,
    /// ODD conditions: [`CLEAR_ODD`] first, then the model's
    /// triggering-condition ids in model order.
    pub odd_conditions: Vec<String>,
    /// Per-class grounding from the hand-built threats (index-aligned
    /// with `classes`; `None` for classes no hand-built threat covers).
    pub grounded: Vec<Option<Grounding>>,
    /// Per-asset worst-case impact rating, merged per category across
    /// the model's damage scenarios on that asset (used for ungrounded
    /// cells).
    pub asset_impacts: Vec<ImpactRating>,
}

/// Merges two impact ratings per category (worst case wins).
fn merge_ratings(a: &ImpactRating, b: &ImpactRating) -> ImpactRating {
    let mut merged = ImpactRating::new();
    for cat in ImpactCategory::ALL {
        merged = merged.with(cat, a.level(cat).max(b.level(cat)));
    }
    merged
}

impl TaraCatalog {
    /// Distils the generative axes from a worksite model and the
    /// Table I attack catalog.
    #[must_use]
    pub fn from_model(model: &WorksiteModel) -> Self {
        // Distinct classes across Table I *and* the model's threats
        // (either side may name a class the other does not), sorted
        // for a canonical index order.
        let mut classes: Vec<String> = ForestryCharacteristic::ALL
            .iter()
            .flat_map(|c| c.attack_classes().iter().map(|s| (*s).to_string()))
            .chain(model.threats.iter().filter_map(|t| t.attack_class.clone()))
            .collect();
        classes.sort();
        classes.dedup();

        let class_index = |name: &str| -> u16 {
            classes
                .iter()
                .position(|c| c == name)
                .expect("class collected above") as u16
        };

        // One surface row per (characteristic, class) pair of Table I;
        // classes the model grounds but no characteristic exposes still
        // enumerate via a synthetic ThreatProfile row, so grounding is
        // never silently dropped.
        let mut rows: Vec<(ForestryCharacteristic, u16)> = ForestryCharacteristic::ALL
            .iter()
            .flat_map(|c| {
                c.attack_classes()
                    .iter()
                    .map(move |class| (*c, class_index(class)))
            })
            .collect();
        for (i, _) in classes.iter().enumerate() {
            if !rows.iter().any(|(_, ci)| *ci == i as u16) {
                rows.push((ForestryCharacteristic::ThreatProfile, i as u16));
            }
        }

        let assets: Vec<String> = model.assets.iter().map(|a| a.id.clone()).collect();
        let asset_index =
            |id: &str| -> Option<u16> { assets.iter().position(|a| a == id).map(|i| i as u16) };

        let mut odd_conditions = vec![CLEAR_ODD.to_string()];
        odd_conditions.extend(model.triggering_conditions.iter().map(|tc| tc.id.clone()));

        let mut grounded: Vec<Option<Grounding>> = vec![None; classes.len()];
        for threat in &model.threats {
            let Some(class) = threat.attack_class.as_deref() else {
                continue;
            };
            let Some(ds) = model.damage_scenario(&threat.damage_scenario_id) else {
                continue;
            };
            let Some(asset) = asset_index(&ds.asset_id) else {
                continue;
            };
            let Some(base_total) = threat
                .attack_paths
                .iter()
                .filter_map(|path| path.iter().map(|s| s.potential.total()).max())
                .min()
            else {
                continue;
            };
            let slot = &mut grounded[class_index(class) as usize];
            // First grounding wins; the hand-built model keeps one
            // threat per class, so this is belt-and-braces.
            if slot.is_none() {
                *slot = Some(Grounding {
                    threat_id: threat.id.clone(),
                    asset,
                    base_total,
                    impact: ds.impact.clone(),
                });
            }
        }

        let asset_impacts: Vec<ImpactRating> = assets
            .iter()
            .map(|id| {
                model
                    .damage_scenarios
                    .iter()
                    .filter(|ds| &ds.asset_id == id)
                    .fold(ImpactRating::new(), |acc, ds| {
                        merge_ratings(&acc, &ds.impact)
                    })
            })
            .collect();

        TaraCatalog {
            classes,
            rows,
            assets,
            odd_conditions,
            grounded,
            asset_impacts,
        }
    }

    /// The entry point an attack class natively comes through (index
    /// into [`ENTRY_POINTS`]); every other entry point costs
    /// [`ENTRY_PENALTY`] extra attack potential.
    #[must_use]
    pub fn native_entry(class: &str) -> u8 {
        match class {
            "gnss-spoofing" | "gnss-jamming" => 1,
            "camera-blinding" => 2,
            "firmware-tampering" => 3,
            // Radio-borne classes (jamming, deauth, replay, rogue
            // node) and anything unknown default to the radio link.
            _ => 0,
        }
    }

    /// Cells one variant of the cross product enumerates (before
    /// dedup): surface rows × assets × entry points × ODD conditions.
    #[must_use]
    pub fn cells_per_variant(&self) -> u64 {
        self.rows.len() as u64
            * self.assets.len() as u64
            * ENTRY_POINTS.len() as u64
            * self.odd_conditions.len() as u64
    }

    /// Distinct canonical scenarios one variant holds (classes ×
    /// assets × entry points × ODD conditions).
    #[must_use]
    pub fn distinct_per_variant(&self) -> u64 {
        self.classes.len() as u64
            * self.assets.len() as u64
            * ENTRY_POINTS.len() as u64
            * self.odd_conditions.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_risk::catalog::worksite_model;
    use silvasec_risk::impact::ImpactLevel;

    #[test]
    fn catalog_distils_the_worksite_model() {
        let catalog = TaraCatalog::from_model(&worksite_model());
        assert_eq!(catalog.classes.len(), 8, "{:?}", catalog.classes);
        assert!(catalog.rows.len() > catalog.classes.len(), "duplicates");
        assert_eq!(catalog.assets.len(), 10);
        assert_eq!(catalog.odd_conditions.len(), 5);
        assert_eq!(catalog.odd_conditions[0], CLEAR_ODD);
        // Every class of the hand-built model is grounded.
        for (i, g) in catalog.grounded.iter().enumerate() {
            assert!(g.is_some(), "class {} ungrounded", catalog.classes[i]);
        }
    }

    #[test]
    fn grounding_reproduces_hand_built_feasibility_totals() {
        let model = worksite_model();
        let catalog = TaraCatalog::from_model(&model);
        for threat in model.threats.iter().filter(|t| t.attack_class.is_some()) {
            let class = threat.attack_class.as_deref().unwrap();
            let idx = catalog.classes.iter().position(|c| c == class).unwrap();
            let g = catalog.grounded[idx].as_ref().unwrap();
            assert_eq!(g.threat_id, threat.id);
            let expected: u8 = threat
                .attack_paths
                .iter()
                .filter_map(|p| p.iter().map(|s| s.potential.total()).max())
                .min()
                .unwrap();
            assert_eq!(g.base_total, expected);
        }
    }

    #[test]
    fn asset_impacts_take_the_worst_damage_scenario() {
        let model = worksite_model();
        let catalog = TaraCatalog::from_model(&model);
        let gnss = catalog.assets.iter().position(|a| a == "fw.gnss").unwrap();
        // fw.gnss carries both ds.nav-corrupted (Severe safety) and
        // ds.nav-denied (Major operational): the merge keeps Severe.
        assert_eq!(catalog.asset_impacts[gnss].overall(), ImpactLevel::Severe);
    }

    #[test]
    fn every_class_appears_in_some_row() {
        let catalog = TaraCatalog::from_model(&worksite_model());
        for i in 0..catalog.classes.len() {
            assert!(catalog.rows.iter().any(|(_, ci)| *ci == i as u16));
        }
    }
}
