//! Generative threat analysis and risk assessment for the silvasec
//! worksite.
//!
//! The hand-curated TARA of `silvasec-risk` scores ten threat scenarios
//! an expert wrote down — exactly the manual bottleneck the paper's
//! certification pathway inherits from ISO/SAE 21434. This crate
//! *derives* the scenario set instead: threat scenarios are enumerated
//! as the cross product of the worksite asset model, the forestry
//! attack catalog (the paper's Table I), the entry-point surface and
//! the operational-design-domain conditions, then scored with the same
//! 21434 impact/feasibility matrices the hand-built assessment uses.
//!
//! * [`catalog`] — the generative axes, distilled from a
//!   [`WorksiteModel`](silvasec_risk::threat::WorksiteModel): distinct
//!   attack classes with their Table I surface rows, asset ids,
//!   entry points, ODD conditions, and the hand-built threats as
//!   *grounding* (baseline attack paths and impact ratings).
//! * [`engine`] — the enumerator/scorer: walks the cross product,
//!   dedups by a canonical SplitMix64 scenario hash
//!   ([`engine::scenario_hash`]), scores every distinct scenario and
//!   keeps a deterministic top-k risk ranking. Sequential and
//!   `par_sweep`-parallel enumeration are bit-identical.
//! * [`topk`] — the order-independent bounded ranking the engine and
//!   its parallel shards merge through.
//! * [`hypothesis`] — the live end: the top-k ranking becomes a set of
//!   *hypotheses* that fleet SIEM evidence (correlated campaigns by
//!   attack class) confirms, and completed mitigations retire. Every
//!   transition is a `TaraHypothesis` telemetry event, so the
//!   hypothesis state replays from the JSONL trace alone.
//!
//! # Determinism contract
//!
//! Given the same model, seed and configuration, enumeration produces a
//! byte-identical ranking regardless of worker count or enumeration
//! order: scenario identity is a pure function of the canonical axis
//! tuple, scoring is pure arithmetic, and the top-k order is total
//! (risk descending, then the canonical tuple ascending). Duplicate
//! cells — the same canonical scenario reached through different
//! Table I rows — fold into one. `exp11_tara` asserts parallel ==
//! sequential and same-seed byte-identity on every sweep point, and
//! cross-checks grounded baseline cells against the hand-built
//! `exp3_tara` scores. Hypothesis confirm/retire is idempotent under
//! duplicate SIEM evidence; `trace_compare --tara` replays the
//! transition trace and exits non-zero on the first divergence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod hypothesis;
pub mod topk;

pub use catalog::TaraCatalog;
pub use engine::{scenario_hash, EnumerationReport, ScenarioSpace, ScoredScenario};
pub use hypothesis::{HypothesisSet, HypothesisStatus, TaraHypothesis};
pub use topk::TopK;

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::catalog::TaraCatalog;
    pub use crate::engine::{scenario_hash, EnumerationReport, ScenarioSpace, ScoredScenario};
    pub use crate::hypothesis::{HypothesisSet, HypothesisStatus, TaraHypothesis};
    pub use crate::topk::TopK;
}
