//! Live TARA hypotheses: the top-k ranking meets fleet evidence.
//!
//! A generated ranking is a stack of *claims* — "this scenario is the
//! risk to worry about" — and the fleet produces exactly the evidence
//! that can test them: SIEM-correlated campaigns name an attack class
//! and the number of sites reporting it, and completed mitigations
//! (e.g. a fleet-wide firmware rollout) remove the attack's standing.
//! A [`HypothesisSet`] holds the ranked scenarios as [`TaraHypothesis`]
//! entries and folds that evidence in: campaign evidence *confirms*
//! every open hypothesis of the class, a mitigation *retires* them.
//!
//! Transitions are monotone (`Open → Confirmed → Retired`; retirement
//! is terminal) and idempotent under duplicate evidence, and every
//! transition is mirrored as an `Event::TaraHypothesis` record — the
//! set's state is therefore a pure function of the JSONL trace, which
//! [`HypothesisSet::replay_from_jsonl`] exploits and `trace_compare
//! --tara` checks divergence with.

use crate::engine::ScoredScenario;
use silvasec_sim::SimTime;
use silvasec_telemetry::{Event, Label, Record, Recorder};

/// Lifecycle of one live hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HypothesisStatus {
    /// Ranked but not yet supported by fleet evidence.
    Open,
    /// Fleet SIEM evidence supports the scenario.
    Confirmed,
    /// A completed mitigation closed the scenario (terminal).
    Retired,
}

/// One ranked scenario with its evidence state.
#[derive(Debug, Clone, PartialEq)]
pub struct TaraHypothesis {
    /// The ranked scenario the hypothesis claims.
    pub scenario: ScoredScenario,
    /// Current lifecycle state.
    pub status: HypothesisStatus,
    /// When the first confirming evidence arrived (worksite ms).
    pub confirmed_at_ms: Option<u64>,
    /// When the hypothesis was retired (worksite ms).
    pub retired_at_ms: Option<u64>,
    /// Distinct sites behind the strongest confirming evidence seen.
    pub evidence_sites: u32,
}

/// The ranked hypotheses plus the recorder their transitions mirror to.
#[derive(Debug, Clone)]
pub struct HypothesisSet {
    hypotheses: Vec<TaraHypothesis>,
    recorder: Recorder,
}

impl HypothesisSet {
    /// Wraps a ranking (best first) as open hypotheses.
    #[must_use]
    pub fn from_ranking(top: Vec<ScoredScenario>) -> Self {
        HypothesisSet {
            hypotheses: top
                .into_iter()
                .map(|scenario| TaraHypothesis {
                    scenario,
                    status: HypothesisStatus::Open,
                    confirmed_at_ms: None,
                    retired_at_ms: None,
                    evidence_sites: 0,
                })
                .collect(),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a telemetry recorder; every subsequent transition is
    /// mirrored as an `Event::TaraHypothesis` stamped with the evidence
    /// time.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The hypotheses, in ranking order.
    #[must_use]
    pub fn hypotheses(&self) -> &[TaraHypothesis] {
        &self.hypotheses
    }

    /// `(open, confirmed, retired)` counts.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for h in &self.hypotheses {
            match h.status {
                HypothesisStatus::Open => counts.0 += 1,
                HypothesisStatus::Confirmed => counts.1 += 1,
                HypothesisStatus::Retired => counts.2 += 1,
            }
        }
        counts
    }

    fn emit(&self, h: &TaraHypothesis, phase: &str, sites: u32, at_ms: u64) {
        self.recorder.record_at(
            SimTime::from_millis(at_ms),
            Event::TaraHypothesis {
                scenario: h.scenario.hash,
                class: Label::new(&h.scenario.attack_class),
                phase: Label::new(phase),
                risk: h.scenario.risk.0,
                sites,
            },
        );
    }

    /// Folds in SIEM campaign evidence: every *open* hypothesis of
    /// `attack_class` becomes confirmed. Duplicate evidence is a no-op
    /// (already-confirmed and retired hypotheses are untouched).
    /// Returns the number of transitions.
    pub fn confirm(&mut self, attack_class: &str, sites: u32, at_ms: u64) -> usize {
        let mut transitions = Vec::new();
        for (i, h) in self.hypotheses.iter_mut().enumerate() {
            if h.scenario.attack_class != attack_class || h.status != HypothesisStatus::Open {
                continue;
            }
            h.status = HypothesisStatus::Confirmed;
            h.confirmed_at_ms = Some(at_ms);
            h.evidence_sites = sites;
            transitions.push(i);
        }
        for &i in &transitions {
            let h = self.hypotheses[i].clone();
            self.emit(&h, "confirm", sites, at_ms);
        }
        transitions.len()
    }

    /// Folds in a completed mitigation: every open or confirmed
    /// hypothesis of `attack_class` retires. Retirement is terminal, so
    /// duplicates are a no-op. Returns the number of transitions.
    pub fn retire(&mut self, attack_class: &str, at_ms: u64) -> usize {
        let mut transitions = Vec::new();
        for (i, h) in self.hypotheses.iter_mut().enumerate() {
            if h.scenario.attack_class != attack_class || h.status == HypothesisStatus::Retired {
                continue;
            }
            h.status = HypothesisStatus::Retired;
            h.retired_at_ms = Some(at_ms);
            transitions.push(i);
        }
        for &i in &transitions {
            let h = self.hypotheses[i].clone();
            self.emit(&h, "retire", 0, at_ms);
        }
        transitions.len()
    }

    /// Rebuilds a set from the ranking plus a JSONL telemetry trace:
    /// every `TaraHypothesis` record is applied, addressed by scenario
    /// hash. Unknown scenario hashes and unknown phase tags are errors
    /// (the trace and the ranking must come from the same run).
    pub fn replay_from_jsonl(top: Vec<ScoredScenario>, jsonl: &str) -> Result<Self, String> {
        let mut set = HypothesisSet::from_ranking(top);
        for (lineno, line) in jsonl.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: Record = serde_json::from_str(line)
                .map_err(|e| format!("line {}: unparseable record: {e:?}", lineno + 1))?;
            let Event::TaraHypothesis {
                scenario,
                phase,
                sites,
                ..
            } = record.event
            else {
                continue;
            };
            let at_ms = record.at.as_millis();
            let h = set
                .hypotheses
                .iter_mut()
                .find(|h| h.scenario.hash == scenario)
                .ok_or_else(|| {
                    format!("line {}: unknown scenario hash {scenario:#x}", lineno + 1)
                })?;
            match phase.as_str() {
                "confirm" => {
                    if h.status == HypothesisStatus::Open {
                        h.status = HypothesisStatus::Confirmed;
                        h.confirmed_at_ms = Some(at_ms);
                        h.evidence_sites = sites;
                    }
                }
                "retire" => {
                    if h.status != HypothesisStatus::Retired {
                        h.status = HypothesisStatus::Retired;
                        h.retired_at_ms = Some(at_ms);
                    }
                }
                other => {
                    return Err(format!("line {}: unknown phase {other:?}", lineno + 1));
                }
            }
        }
        Ok(set)
    }

    /// The first hypothesis whose state differs from `other`'s, as a
    /// human-readable description — `None` when the sets agree.
    #[must_use]
    pub fn first_divergence(&self, other: &HypothesisSet) -> Option<String> {
        if self.hypotheses.len() != other.hypotheses.len() {
            return Some(format!(
                "hypothesis count {} != {}",
                self.hypotheses.len(),
                other.hypotheses.len()
            ));
        }
        for (a, b) in self.hypotheses.iter().zip(&other.hypotheses) {
            if a != b {
                return Some(format!(
                    "scenario {:#018x} ({}): {:?}@{:?}/{:?} != {:?}@{:?}/{:?}",
                    a.scenario.hash,
                    a.scenario.attack_class,
                    a.status,
                    a.confirmed_at_ms,
                    a.retired_at_ms,
                    b.status,
                    b.confirmed_at_ms,
                    b.retired_at_ms
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TaraCatalog;
    use crate::engine::ScenarioSpace;
    use silvasec_risk::catalog::worksite_model;
    use silvasec_telemetry::EventKind;

    fn ranking() -> Vec<ScoredScenario> {
        let catalog = TaraCatalog::from_model(&worksite_model());
        ScenarioSpace::new(&catalog, 11, 2, 96).enumerate().top
    }

    #[test]
    fn evidence_confirms_only_the_matching_open_hypotheses() {
        let top = ranking();
        let class = top[0].attack_class.clone();
        let expected = top.iter().filter(|s| s.attack_class == class).count();
        let mut set = HypothesisSet::from_ranking(top);
        assert_eq!(set.confirm(&class, 3, 1_000), expected);
        let (_, confirmed, retired) = set.counts();
        assert_eq!(confirmed, expected);
        assert_eq!(retired, 0);
        // Duplicate evidence is a no-op.
        assert_eq!(set.confirm(&class, 7, 2_000), 0);
        for h in set.hypotheses() {
            if h.scenario.attack_class == class {
                assert_eq!(h.confirmed_at_ms, Some(1_000));
                assert_eq!(h.evidence_sites, 3);
            } else {
                assert_eq!(h.status, HypothesisStatus::Open);
            }
        }
    }

    #[test]
    fn retirement_is_terminal_and_idempotent() {
        let top = ranking();
        let class = top[0].attack_class.clone();
        let matching = top.iter().filter(|s| s.attack_class == class).count();
        let mut set = HypothesisSet::from_ranking(top);
        set.confirm(&class, 2, 500);
        assert_eq!(set.retire(&class, 1_500), matching);
        assert_eq!(set.retire(&class, 2_500), 0);
        // Evidence after retirement changes nothing.
        assert_eq!(set.confirm(&class, 9, 3_500), 0);
        for h in set.hypotheses() {
            if h.scenario.attack_class == class {
                assert_eq!(h.status, HypothesisStatus::Retired);
                assert_eq!(h.retired_at_ms, Some(1_500));
            }
        }
    }

    #[test]
    fn transitions_emit_events_and_replay_reproduces_the_state() {
        let top = ranking();
        let recorder = Recorder::new();
        let sub = recorder.subscribe("tara", 256);
        let mut set = HypothesisSet::from_ranking(top.clone());
        set.set_recorder(recorder.clone());

        let class_a = top[0].attack_class.clone();
        let class_b = top
            .iter()
            .map(|s| &s.attack_class)
            .find(|c| **c != class_a)
            .expect("ranking spans classes")
            .clone();
        set.confirm(&class_a, 4, 1_000);
        set.confirm(&class_b, 2, 2_000);
        set.retire(&class_a, 3_000);

        let records = recorder.records(sub);
        assert!(records
            .iter()
            .all(|r| r.event.kind() == EventKind::TaraHypothesis));
        let jsonl: String = records
            .iter()
            .map(|r| serde_json::to_string(r).unwrap() + "\n")
            .collect();
        let replayed = HypothesisSet::replay_from_jsonl(top, &jsonl).unwrap();
        assert_eq!(replayed.first_divergence(&set), None);
        assert_eq!(replayed.counts(), set.counts());
    }

    #[test]
    fn replay_rejects_foreign_traces() {
        let top = ranking();
        let recorder = Recorder::new();
        let sub = recorder.subscribe("tara", 16);
        recorder.record(Event::TaraHypothesis {
            scenario: 0xDEAD_BEEF,
            class: Label::new("rf-jamming"),
            phase: Label::new("confirm"),
            risk: 5,
            sites: 1,
        });
        let jsonl: String = recorder
            .records(sub)
            .iter()
            .map(|r| serde_json::to_string(r).unwrap() + "\n")
            .collect();
        let err = HypothesisSet::replay_from_jsonl(top, &jsonl).unwrap_err();
        assert!(err.contains("unknown scenario hash"), "{err}");
    }

    #[test]
    fn divergence_is_reported_with_the_scenario() {
        let top = ranking();
        let class = top[0].attack_class.clone();
        let mut a = HypothesisSet::from_ranking(top.clone());
        let b = HypothesisSet::from_ranking(top);
        a.confirm(&class, 1, 100);
        let d = a.first_divergence(&b).expect("states differ");
        assert!(d.contains(&class), "{d}");
    }
}
