//! The order-independent bounded risk ranking.
//!
//! [`TopK`] keeps the k highest-risk scenarios under a *total* order —
//! risk descending, then the canonical axis tuple ascending — so the
//! final contents depend only on the set of scenarios pushed, never on
//! the order they arrive in. That makes a sequential enumeration, a
//! shuffled one and a merge of per-shard rankings all byte-identical,
//! which is exactly what `exp11_tara` asserts.

use crate::engine::CellScore;

/// A bounded, order-independent top-k ranking of [`CellScore`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    k: usize,
    /// Sorted ascending by [`CellScore::rank_key`] (best first).
    entries: Vec<CellScore>,
}

impl TopK {
    /// Creates an empty ranking holding at most `k` scenarios.
    #[must_use]
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            entries: Vec::with_capacity(k.min(4_096)),
        }
    }

    /// The capacity bound.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Scenarios currently ranked, best (highest risk) first.
    #[must_use]
    pub fn entries(&self) -> &[CellScore] {
        &self.entries
    }

    /// Number of ranked scenarios (≤ k).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ranking is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers one scenario; it enters iff it ranks among the best k
    /// seen so far. A scenario already present (same canonical key) is
    /// left untouched, so repeated pushes are idempotent.
    pub fn push(&mut self, score: CellScore) {
        if self.k == 0 {
            return;
        }
        let key = score.rank_key();
        match self.entries.binary_search_by_key(&key, CellScore::rank_key) {
            Ok(_) => {}
            Err(pos) => {
                if pos < self.k {
                    self.entries.insert(pos, score);
                    self.entries.truncate(self.k);
                }
            }
        }
    }

    /// Merges another ranking in (the union's best k survive). The
    /// result equals pushing every scenario of both rankings into a
    /// fresh one, whatever the split was — the parallel-shard merge.
    pub fn merge(&mut self, other: &TopK) {
        for score in &other.entries {
            self.push(*score);
        }
    }

    /// Consumes the ranking, best first.
    #[must_use]
    pub fn into_vec(self) -> Vec<CellScore> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(risk: u8, class: u16, variant: u32) -> CellScore {
        CellScore::synthetic(risk, class, variant)
    }

    #[test]
    fn keeps_the_best_k_in_total_order() {
        let mut top = TopK::new(3);
        for (risk, class) in [(1, 0), (5, 2), (3, 1), (5, 1), (4, 0)] {
            top.push(cell(risk, class, 0));
        }
        let risks: Vec<(u8, u16)> = top.entries().iter().map(|c| (c.risk.0, c.class)).collect();
        // Risk descending, class ascending on the tie.
        assert_eq!(risks, vec![(5, 1), (5, 2), (4, 0)]);
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let scores: Vec<CellScore> = (0..40).map(|i| cell((i % 5) as u8 + 1, i, 0)).collect();
        let mut forward = TopK::new(7);
        let mut backward = TopK::new(7);
        for s in &scores {
            forward.push(*s);
        }
        for s in scores.iter().rev() {
            backward.push(*s);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn merge_equals_global_push() {
        let scores: Vec<CellScore> = (0..50).map(|i| cell((i % 6) as u8, i, i as u32)).collect();
        let mut global = TopK::new(9);
        for s in &scores {
            global.push(*s);
        }
        let mut left = TopK::new(9);
        let mut right = TopK::new(9);
        for (i, s) in scores.iter().enumerate() {
            if i % 2 == 0 {
                left.push(*s);
            } else {
                right.push(*s);
            }
        }
        left.merge(&right);
        assert_eq!(left, global);
    }

    #[test]
    fn duplicate_pushes_fold() {
        let mut top = TopK::new(4);
        top.push(cell(5, 1, 0));
        top.push(cell(5, 1, 0));
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn zero_capacity_holds_nothing() {
        let mut top = TopK::new(0);
        top.push(cell(5, 0, 0));
        assert!(top.is_empty());
    }
}
