//! Attack injection for the forestry worksite.
//!
//! Implements the attack classes the paper's survey (Sec. IV-C) collects
//! from the mining and automotive literature: RF jamming, Wi-Fi
//! de-authentication floods, GNSS spoofing and jamming, camera blinding,
//! frame replay, rogue nodes and firmware tampering.
//!
//! **Security-boundary realism**: every attack here operates through the
//! simulated physics — forged frames on the [`silvasec_comms::Medium`],
//! interference power, the regional [`silvasec_machines::GnssField`], or
//! optical interference with a sensor. Attacks never reach into victim
//! state. Camera blinding and firmware tampering are returned as
//! [`SideEffect`] commands because their physical carriers (a laser
//! pointed at a lens; a compromised update server) live outside the radio
//! medium; the orchestrator applies them to the targeted component only.
//!
//! * [`campaign`] — attack campaign descriptions and scheduling.
//! * [`engine`] — the [`engine::AttackEngine`] driving active campaigns
//!   each tick and logging ground-truth [`engine::AttackEvent`]s (used by
//!   the evaluation to measure detection latency).
//!
//! # Example
//!
//! ```
//! use silvasec_attacks::prelude::*;
//! use silvasec_comms::prelude::*;
//! use silvasec_machines::GnssField;
//! use silvasec_sim::prelude::*;
//!
//! let mut medium = Medium::new(MediumConfig::default(), SimRng::from_seed(1));
//! let _bs = medium.add_node(Vec3::new(0.0, 0.0, 5.0));
//! let mut gnss = GnssField::new();
//!
//! let mut engine = AttackEngine::new();
//! engine.add_campaign(AttackCampaign {
//!     kind: AttackKind::RfJamming,
//!     target: AttackTarget::Area { center: Vec2::new(100.0, 100.0), radius_m: 150.0 },
//!     start: SimTime::from_secs(10),
//!     duration: SimDuration::from_secs(60),
//!     intensity: 1.0,
//! });
//!
//! // Before start: nothing active.
//! engine.step(SimTime::from_secs(5), &mut medium, &mut gnss);
//! assert!(!engine.is_active(AttackKind::RfJamming));
//! // During the window: the jammer is on the medium.
//! engine.step(SimTime::from_secs(20), &mut medium, &mut gnss);
//! assert!(engine.is_active(AttackKind::RfJamming));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod engine;

pub use campaign::{AttackCampaign, AttackKind, AttackTarget};
pub use engine::{AttackEngine, AttackEvent, AttackPhase, SideEffect};

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::campaign::{AttackCampaign, AttackKind, AttackTarget};
    pub use crate::engine::{AttackEngine, AttackEvent, AttackPhase, SideEffect};
}
