//! Attack campaign descriptions.

use serde::{Deserialize, Serialize};
use silvasec_comms::NodeId;
use silvasec_sim::geom::Vec2;
use silvasec_sim::time::{SimDuration, SimTime};
use std::fmt;

/// The attack class (the paper's Sec. IV-C catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackKind {
    /// Broadband RF interference on the worksite channel.
    RfJamming,
    /// Forged de-authentication frames against an associated station.
    DeauthFlood,
    /// GNSS position-drag spoofing over a region.
    GnssSpoofing,
    /// GNSS denial over a region.
    GnssJamming,
    /// Optical blinding of a people-detection sensor.
    CameraBlinding,
    /// Capture-and-replay of previously observed frames.
    Replay,
    /// A rogue radio attempting to join the worksite network.
    RogueNode,
    /// Tampering with a machine's firmware update.
    FirmwareTampering,
    /// Corrupting OTA update chunks in transit to the fleet (a
    /// man-in-the-middle on the update distribution path).
    UpdateTampering,
    /// Substituting an old but genuinely signed update bundle for the
    /// one being rolled out (version rollback at the fleet layer).
    Downgrade,
    /// A correctly signed but malicious update injected at the build or
    /// distribution backend (supply-chain compromise); sites that apply
    /// it start misbehaving, which the staged rollout must catch.
    RolloutPoisoning,
}

impl AttackKind {
    /// Short stable name of the attack class, used as a telemetry label
    /// and as the TARA attack-class vocabulary.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            AttackKind::RfJamming => "rf-jamming",
            AttackKind::DeauthFlood => "deauth-flood",
            AttackKind::GnssSpoofing => "gnss-spoofing",
            AttackKind::GnssJamming => "gnss-jamming",
            AttackKind::CameraBlinding => "camera-blinding",
            AttackKind::Replay => "replay",
            AttackKind::RogueNode => "rogue-node",
            AttackKind::FirmwareTampering => "firmware-tampering",
            AttackKind::UpdateTampering => "update-tampering",
            AttackKind::Downgrade => "downgrade",
            AttackKind::RolloutPoisoning => "rollout-poisoning",
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an attack campaign is aimed at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackTarget {
    /// A geographic region (jamming, GNSS attacks).
    Area {
        /// Region centre.
        center: Vec2,
        /// Region radius, metres.
        radius_m: f64,
    },
    /// A directed link: de-auth frames claim to come from `spoof_as` and
    /// are sent to `victim`.
    Link {
        /// The identity the forged frames claim (typically the base
        /// station).
        spoof_as: NodeId,
        /// The station being knocked off the network.
        victim: NodeId,
    },
    /// A machine identified by its worksite label (sensor/firmware
    /// attacks).
    Machine {
        /// The machine's label, e.g. `"forwarder-01"`.
        label: String,
    },
    /// The whole worksite network (replay, rogue node).
    Network,
}

/// A scheduled attack campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackCampaign {
    /// The attack class.
    pub kind: AttackKind,
    /// What it targets.
    pub target: AttackTarget,
    /// When it begins.
    pub start: SimTime,
    /// How long it runs.
    pub duration: SimDuration,
    /// Attack strength in `[0, 1]` (jammer power, flood rate, blinding
    /// depth, spoof drag rate).
    pub intensity: f64,
}

impl AttackCampaign {
    /// Whether the campaign is active at `now`.
    #[must_use]
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.start && now < self.start + self.duration
    }

    /// The campaign's end time.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign() -> AttackCampaign {
        AttackCampaign {
            kind: AttackKind::RfJamming,
            target: AttackTarget::Network,
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(30),
            intensity: 0.8,
        }
    }

    #[test]
    fn activity_window() {
        let c = campaign();
        assert!(!c.active_at(SimTime::from_secs(9)));
        assert!(c.active_at(SimTime::from_secs(10)));
        assert!(c.active_at(SimTime::from_secs(39)));
        assert!(!c.active_at(SimTime::from_secs(40)));
        assert_eq!(c.end(), SimTime::from_secs(40));
    }

    #[test]
    fn display_names() {
        assert_eq!(AttackKind::GnssSpoofing.to_string(), "gnss-spoofing");
        assert_eq!(AttackKind::CameraBlinding.to_string(), "camera-blinding");
    }

    #[test]
    fn serde_roundtrip() {
        let c = campaign();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<AttackCampaign>(&json).unwrap(), c);
    }
}
