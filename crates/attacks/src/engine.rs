//! The attack engine: drives campaigns against the simulated worksite.

use crate::campaign::{AttackCampaign, AttackKind, AttackTarget};
use serde::{Deserialize, Serialize};
use silvasec_comms::medium::InterfererId;
use silvasec_comms::{Frame, Medium, NodeId};
use silvasec_machines::gnss::{GnssJammer, Spoofer};
use silvasec_machines::GnssField;
use silvasec_sim::geom::Vec2;
use silvasec_sim::time::SimTime;
use silvasec_telemetry::{Event, Label, Recorder};

/// Campaign life-cycle phases, logged as ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackPhase {
    /// The campaign switched on.
    Started,
    /// The campaign switched off.
    Ended,
}

/// A ground-truth attack event (for measuring detection latency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackEvent {
    /// Index of the campaign in the engine.
    pub campaign: usize,
    /// The attack class.
    pub kind: AttackKind,
    /// Start or end.
    pub phase: AttackPhase,
    /// When it happened.
    pub at: SimTime,
}

/// Commands whose physical carrier lives outside the radio medium; the
/// orchestrator applies them to the targeted component.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SideEffect {
    /// Degrade a machine's people-detection sensor (optical blinding).
    BlindSensor {
        /// Target machine label.
        machine_label: String,
        /// New sensor health in `[0, 1]`.
        health: f64,
    },
    /// Restore a previously blinded sensor.
    RestoreSensor {
        /// Target machine label.
        machine_label: String,
    },
    /// Corrupt the pending firmware update of a machine.
    TamperFirmware {
        /// Target machine label.
        machine_label: String,
    },
}

#[derive(Debug)]
struct CampaignState {
    campaign: AttackCampaign,
    active: bool,
    interferer: Option<InterfererId>,
    gnss_handle: Option<u64>,
    frames_sent: u64,
}

/// Drives attack campaigns against the medium, GNSS field and sensors.
#[derive(Debug, Default)]
pub struct AttackEngine {
    campaigns: Vec<CampaignState>,
    attacker_node: Option<NodeId>,
    captured: Vec<Frame>,
    events: Vec<AttackEvent>,
    seq: u64,
    recorder: Recorder,
}

impl AttackEngine {
    /// Creates an idle engine.
    #[must_use]
    pub fn new() -> Self {
        AttackEngine::default()
    }

    /// Resets the engine to the idle state [`AttackEngine::new`]
    /// produces, keeping the campaign, capture and event-log
    /// allocations warm. The attacker node and recorder must be
    /// re-attached by the caller, exactly as for a fresh engine —
    /// the episode-reset fast path.
    pub fn reset(&mut self) {
        self.campaigns.clear();
        self.attacker_node = None;
        self.captured.clear();
        self.events.clear();
        self.seq = 0;
        self.recorder = Recorder::disabled();
    }

    /// Schedules a campaign; returns its index.
    pub fn add_campaign(&mut self, campaign: AttackCampaign) -> usize {
        self.campaigns.push(CampaignState {
            campaign,
            active: false,
            interferer: None,
            gnss_handle: None,
            frames_sent: 0,
        });
        self.campaigns.len() - 1
    }

    /// Registers the attacker's own radio (required for frame-injection
    /// attacks: de-auth, replay, rogue node).
    pub fn set_attacker_node(&mut self, node: NodeId) {
        self.attacker_node = Some(node);
    }

    /// Attaches a telemetry recorder; the engine then mirrors its
    /// ground-truth event log as `AttackPhase` telemetry events.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Feeds a sniffed frame into the replay buffer (the attacker
    /// passively records traffic it can hear).
    pub fn capture(&mut self, frame: Frame) {
        if self.captured.len() < 4096 {
            self.captured.push(frame);
        }
    }

    /// Whether any campaign of `kind` is currently active.
    #[must_use]
    pub fn is_active(&self, kind: AttackKind) -> bool {
        self.campaigns
            .iter()
            .any(|c| c.active && c.campaign.kind == kind)
    }

    /// Whether any scheduled campaign (active or not) ever consumes
    /// captured frames. Only replay campaigns read the capture buffer,
    /// so when this is `false` the orchestrator can skip sniffing
    /// (cloning frames into [`AttackEngine::capture`]) entirely with no
    /// observable difference.
    #[must_use]
    pub fn wants_captures(&self) -> bool {
        self.campaigns
            .iter()
            .any(|c| c.campaign.kind == AttackKind::Replay)
    }

    /// Ground-truth event log.
    #[must_use]
    pub fn events(&self) -> &[AttackEvent] {
        &self.events
    }

    /// Total frames the engine has injected.
    #[must_use]
    pub fn frames_injected(&self) -> u64 {
        self.campaigns.iter().map(|c| c.frames_sent).sum()
    }

    /// Advances all campaigns to `now`, applying radio and GNSS effects
    /// directly and returning side-effect commands for the orchestrator.
    pub fn step(
        &mut self,
        now: SimTime,
        medium: &mut Medium,
        gnss: &mut GnssField,
    ) -> Vec<SideEffect> {
        let mut effects = Vec::new();
        let attacker = self.attacker_node;
        let captured = std::mem::take(&mut self.captured);

        for (idx, state) in self.campaigns.iter_mut().enumerate() {
            let should_be_active = state.campaign.active_at(now);
            if should_be_active && !state.active {
                state.active = true;
                self.events.push(AttackEvent {
                    campaign: idx,
                    kind: state.campaign.kind,
                    phase: AttackPhase::Started,
                    at: now,
                });
                self.recorder.record_at(
                    now,
                    Event::AttackPhase {
                        campaign: idx as u32,
                        kind: Label::new(state.campaign.kind.as_str()),
                        started: true,
                    },
                );
                Self::activate(state, medium, gnss, now, &mut effects);
            } else if !should_be_active && state.active {
                state.active = false;
                self.events.push(AttackEvent {
                    campaign: idx,
                    kind: state.campaign.kind,
                    phase: AttackPhase::Ended,
                    at: now,
                });
                self.recorder.record_at(
                    now,
                    Event::AttackPhase {
                        campaign: idx as u32,
                        kind: Label::new(state.campaign.kind.as_str()),
                        started: false,
                    },
                );
                Self::deactivate(state, medium, gnss, &mut effects);
            }

            if state.active {
                Self::per_tick(state, attacker, &captured, medium, now, &mut self.seq);
            }
        }
        self.captured = captured;
        effects
    }

    fn area_of(target: &AttackTarget) -> Option<(Vec2, f64)> {
        match target {
            AttackTarget::Area { center, radius_m } => Some((*center, *radius_m)),
            _ => None,
        }
    }

    fn activate(
        state: &mut CampaignState,
        medium: &mut Medium,
        gnss: &mut GnssField,
        now: SimTime,
        effects: &mut Vec<SideEffect>,
    ) {
        let intensity = state.campaign.intensity.clamp(0.0, 1.0);
        match state.campaign.kind {
            AttackKind::RfJamming => {
                if let Some((center, _)) = Self::area_of(&state.campaign.target) {
                    // 10..40 dBm with intensity.
                    let power = 10.0 + 30.0 * intensity;
                    state.interferer = Some(medium.add_interferer(center.with_z(2.0), power));
                }
            }
            AttackKind::GnssSpoofing => {
                if let Some((center, radius_m)) = Self::area_of(&state.campaign.target) {
                    let handle = gnss.add_spoofer(Spoofer {
                        center,
                        radius_m,
                        drag_mps: Vec2::new(0.2 + 1.8 * intensity, 0.0),
                        since: now,
                    });
                    state.gnss_handle = Some(handle);
                }
            }
            AttackKind::GnssJamming => {
                if let Some((center, radius_m)) = Self::area_of(&state.campaign.target) {
                    state.gnss_handle = Some(gnss.add_jammer(GnssJammer { center, radius_m }));
                }
            }
            AttackKind::CameraBlinding => {
                if let AttackTarget::Machine { label } = &state.campaign.target {
                    effects.push(SideEffect::BlindSensor {
                        machine_label: label.clone(),
                        health: 1.0 - intensity,
                    });
                }
            }
            AttackKind::FirmwareTampering => {
                if let AttackTarget::Machine { label } = &state.campaign.target {
                    effects.push(SideEffect::TamperFirmware {
                        machine_label: label.clone(),
                    });
                }
            }
            AttackKind::DeauthFlood | AttackKind::Replay | AttackKind::RogueNode => {
                // Frame-injection attacks act per tick, not on activation.
            }
            AttackKind::UpdateTampering | AttackKind::Downgrade | AttackKind::RolloutPoisoning => {
                // Fleet-layer attacks: applied by the fleet orchestrator
                // (`silvasec-fleet`) to the update distribution path, not
                // to a single worksite's radio medium.
            }
        }
    }

    fn deactivate(
        state: &mut CampaignState,
        medium: &mut Medium,
        gnss: &mut GnssField,
        effects: &mut Vec<SideEffect>,
    ) {
        if let Some(id) = state.interferer.take() {
            medium.remove_interferer(id);
        }
        if let Some(handle) = state.gnss_handle.take() {
            match state.campaign.kind {
                AttackKind::GnssSpoofing => {
                    gnss.remove_spoofer(handle);
                }
                AttackKind::GnssJamming => {
                    gnss.remove_jammer(handle);
                }
                _ => {}
            }
        }
        if state.campaign.kind == AttackKind::CameraBlinding {
            if let AttackTarget::Machine { label } = &state.campaign.target {
                effects.push(SideEffect::RestoreSensor {
                    machine_label: label.clone(),
                });
            }
        }
    }

    fn per_tick(
        state: &mut CampaignState,
        attacker: Option<NodeId>,
        captured: &[Frame],
        medium: &mut Medium,
        now: SimTime,
        seq: &mut u64,
    ) {
        let Some(attacker) = attacker else {
            return; // frame injection needs a radio
        };
        let intensity = state.campaign.intensity.clamp(0.0, 1.0);
        match state.campaign.kind {
            AttackKind::DeauthFlood => {
                if let AttackTarget::Link { spoof_as, victim } = state.campaign.target.clone() {
                    let burst = 1 + (intensity * 4.0) as u32;
                    for _ in 0..burst {
                        *seq += 1;
                        let frame = Frame::deauth(spoof_as, victim).with_seq(*seq);
                        let _ = medium.transmit(attacker, frame, now);
                        state.frames_sent += 1;
                    }
                }
            }
            AttackKind::Replay => {
                // Re-inject up to `burst` previously captured frames.
                let burst = (1 + (intensity * 2.0) as usize).min(captured.len());
                for frame in captured.iter().rev().take(burst) {
                    let _ = medium.transmit(attacker, frame.clone(), now);
                    state.frames_sent += 1;
                }
            }
            AttackKind::RogueNode => {
                if let AttackTarget::Link {
                    spoof_as: _,
                    victim,
                } = state.campaign.target.clone()
                {
                    *seq += 1;
                    let frame = Frame::assoc_request(attacker, victim).with_seq(*seq);
                    let _ = medium.transmit(attacker, frame, now);
                    state.frames_sent += 1;
                } else {
                    *seq += 1;
                    let frame = Frame::broadcast(attacker, b"rogue-hello".to_vec()).with_seq(*seq);
                    let _ = medium.transmit(attacker, frame, now);
                    state.frames_sent += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_comms::MediumConfig;
    use silvasec_sim::geom::Vec3;
    use silvasec_sim::rng::SimRng;
    use silvasec_sim::time::SimDuration;

    struct Fixture {
        medium: Medium,
        gnss: GnssField,
        engine: AttackEngine,
        bs: NodeId,
        victim: NodeId,
    }

    fn fixture() -> Fixture {
        let mut medium = Medium::new(MediumConfig::default(), SimRng::from_seed(1));
        let bs = medium.add_node(Vec3::new(0.0, 0.0, 5.0));
        let victim = medium.add_node(Vec3::new(50.0, 0.0, 2.0));
        let attacker = medium.add_node(Vec3::new(80.0, 0.0, 2.0));
        medium.associate(bs);
        medium.associate(victim);
        let mut engine = AttackEngine::new();
        engine.set_attacker_node(attacker);
        Fixture {
            medium,
            gnss: GnssField::new(),
            engine,
            bs,
            victim,
        }
    }

    fn jam_campaign(start_s: u64, dur_s: u64) -> AttackCampaign {
        AttackCampaign {
            kind: AttackKind::RfJamming,
            target: AttackTarget::Area {
                center: Vec2::new(50.0, 0.0),
                radius_m: 100.0,
            },
            start: SimTime::from_secs(start_s),
            duration: SimDuration::from_secs(dur_s),
            intensity: 1.0,
        }
    }

    #[test]
    fn lifecycle_events_logged() {
        let mut f = fixture();
        f.engine.add_campaign(jam_campaign(10, 20));
        f.engine
            .step(SimTime::from_secs(5), &mut f.medium, &mut f.gnss);
        assert!(f.engine.events().is_empty());
        f.engine
            .step(SimTime::from_secs(10), &mut f.medium, &mut f.gnss);
        assert_eq!(f.engine.events().len(), 1);
        assert_eq!(f.engine.events()[0].phase, AttackPhase::Started);
        f.engine
            .step(SimTime::from_secs(30), &mut f.medium, &mut f.gnss);
        assert_eq!(f.engine.events().len(), 2);
        assert_eq!(f.engine.events()[1].phase, AttackPhase::Ended);
        assert!(!f.engine.is_active(AttackKind::RfJamming));
    }

    #[test]
    fn jamming_adds_and_removes_interference() {
        let mut f = fixture();
        f.engine.add_campaign(jam_campaign(0, 10));
        f.engine
            .step(SimTime::from_secs(1), &mut f.medium, &mut f.gnss);
        let during = f.medium.interference_at(Vec3::new(50.0, 0.0, 2.0));
        assert!(during.is_some());
        f.engine
            .step(SimTime::from_secs(20), &mut f.medium, &mut f.gnss);
        let after = f.medium.interference_at(Vec3::new(50.0, 0.0, 2.0));
        assert!(after.is_none());
    }

    #[test]
    fn deauth_flood_disassociates_victim() {
        let mut f = fixture();
        f.engine.add_campaign(AttackCampaign {
            kind: AttackKind::DeauthFlood,
            target: AttackTarget::Link {
                spoof_as: f.bs,
                victim: f.victim,
            },
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(60),
            intensity: 1.0,
        });
        for t in 0..10 {
            f.engine
                .step(SimTime::from_secs(t), &mut f.medium, &mut f.gnss);
        }
        assert!(f.engine.frames_injected() >= 10);
        assert!(!f.medium.is_associated(f.victim, SimTime::from_secs(10)));
    }

    #[test]
    fn gnss_attacks_manage_field() {
        let mut f = fixture();
        f.engine.add_campaign(AttackCampaign {
            kind: AttackKind::GnssSpoofing,
            target: AttackTarget::Area {
                center: Vec2::new(50.0, 0.0),
                radius_m: 200.0,
            },
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(10),
            intensity: 0.5,
        });
        f.engine.add_campaign(AttackCampaign {
            kind: AttackKind::GnssJamming,
            target: AttackTarget::Area {
                center: Vec2::new(400.0, 0.0),
                radius_m: 50.0,
            },
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(10),
            intensity: 1.0,
        });
        f.engine
            .step(SimTime::from_secs(1), &mut f.medium, &mut f.gnss);
        assert_eq!(f.gnss.counts(), (1, 1));
        assert!(f.gnss.is_jammed(Vec2::new(400.0, 0.0)));
        f.engine
            .step(SimTime::from_secs(15), &mut f.medium, &mut f.gnss);
        assert_eq!(f.gnss.counts(), (0, 0));
    }

    #[test]
    fn blinding_produces_side_effects() {
        let mut f = fixture();
        f.engine.add_campaign(AttackCampaign {
            kind: AttackKind::CameraBlinding,
            target: AttackTarget::Machine {
                label: "forwarder-01".into(),
            },
            start: SimTime::from_secs(5),
            duration: SimDuration::from_secs(10),
            intensity: 0.9,
        });
        let effects = f
            .engine
            .step(SimTime::from_secs(5), &mut f.medium, &mut f.gnss);
        assert_eq!(effects.len(), 1);
        match &effects[0] {
            SideEffect::BlindSensor {
                machine_label,
                health,
            } => {
                assert_eq!(machine_label, "forwarder-01");
                assert!((health - 0.1).abs() < 1e-9);
            }
            other => panic!("unexpected effect {other:?}"),
        }
        let effects = f
            .engine
            .step(SimTime::from_secs(20), &mut f.medium, &mut f.gnss);
        assert!(
            matches!(&effects[0], SideEffect::RestoreSensor { machine_label } if machine_label == "forwarder-01")
        );
    }

    #[test]
    fn replay_reinjects_captured_frames() {
        let mut f = fixture();
        // Capture a legitimate frame.
        let legit = Frame::data(f.victim, f.bs, b"waypoint".to_vec()).with_seq(42);
        f.engine.capture(legit.clone());
        f.engine.add_campaign(AttackCampaign {
            kind: AttackKind::Replay,
            target: AttackTarget::Network,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(5),
            intensity: 1.0,
        });
        f.engine
            .step(SimTime::from_secs(1), &mut f.medium, &mut f.gnss);
        let rx = f.medium.drain_inbox(f.bs);
        assert!(
            rx.iter().any(|r| r.frame == legit),
            "replayed frame did not arrive"
        );
    }

    #[test]
    fn frame_attacks_without_attacker_node_are_inert() {
        let mut medium = Medium::new(MediumConfig::default(), SimRng::from_seed(2));
        let bs = medium.add_node(Vec3::new(0.0, 0.0, 5.0));
        let victim = medium.add_node(Vec3::new(10.0, 0.0, 2.0));
        medium.associate(victim);
        let mut gnss = GnssField::new();
        let mut engine = AttackEngine::new();
        engine.add_campaign(AttackCampaign {
            kind: AttackKind::DeauthFlood,
            target: AttackTarget::Link {
                spoof_as: bs,
                victim,
            },
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(10),
            intensity: 1.0,
        });
        engine.step(SimTime::from_secs(1), &mut medium, &mut gnss);
        assert_eq!(engine.frames_injected(), 0);
        assert!(medium.is_associated(victim, SimTime::from_secs(1)));
    }

    #[test]
    fn firmware_tamper_is_one_shot() {
        let mut f = fixture();
        f.engine.add_campaign(AttackCampaign {
            kind: AttackKind::FirmwareTampering,
            target: AttackTarget::Machine {
                label: "drone-01".into(),
            },
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            intensity: 1.0,
        });
        let e1 = f.engine.step(SimTime::ZERO, &mut f.medium, &mut f.gnss);
        assert_eq!(e1.len(), 1);
        let e2 = f
            .engine
            .step(SimTime::from_millis(500), &mut f.medium, &mut f.gnss);
        assert!(e2.is_empty(), "tamper must fire once");
    }
}
