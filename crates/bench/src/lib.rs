//! Shared helpers for the benchmark harness.
//!
//! The table/figure regeneration binaries live in `src/bin/`; the
//! Criterion micro/mesobenchmarks in `benches/`. Each binary prints the
//! rows of one table or the series of one figure from `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use silvasec_channel::{HandshakePolicy, Identity, Initiator, Responder, Session};
use silvasec_crypto::schnorr::SigningKey;
use silvasec_pki::prelude::*;

/// Builds a two-party PKI and an established session pair, for channel
/// benchmarks and binaries.
#[must_use]
pub fn session_pair(seed: u8) -> (Session, Session) {
    let mut root = CertificateAuthority::new_root("root", &[seed; 32], Validity::new(0, 1_000_000));
    let store = TrustStore::with_roots([root.certificate().clone()]);
    let make = |id: &str, role, s: u8, root: &mut CertificateAuthority| {
        let key = SigningKey::from_seed(&[s; 32]);
        let cert = root.issue_mut(
            &Subject::new(id, role),
            &key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 500_000),
        );
        Identity::new(vec![cert], key)
    };
    let a = make(
        "a",
        ComponentRole::Forwarder,
        seed.wrapping_add(1),
        &mut root,
    );
    let b = make(
        "b",
        ComponentRole::BaseStation,
        seed.wrapping_add(2),
        &mut root,
    );
    let policy = HandshakePolicy::new(store, 100);
    let (init, hello) = Initiator::start(a, [seed.wrapping_add(3); 32], [seed.wrapping_add(4); 32]);
    let (resp, reply) = Responder::respond(
        b,
        &policy,
        &hello,
        [seed.wrapping_add(5); 32],
        [seed.wrapping_add(6); 32],
    )
    .expect("handshake");
    let (sa, finished) = init.finish(&policy, &reply).expect("finish");
    let sb = resp.complete(&finished).expect("complete");
    (sa, sb)
}

/// Formats a fraction as a percentage string.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_pair_works() {
        let (mut a, mut b) = session_pair(1);
        let rec = a.seal(b"x").unwrap();
        assert_eq!(b.open(&rec).unwrap(), b"x");
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}
