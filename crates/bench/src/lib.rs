//! Shared helpers for the benchmark harness.
//!
//! The table/figure regeneration binaries live in `src/bin/`; the
//! Criterion micro/mesobenchmarks in `benches/`. Each binary prints the
//! rows of one table or the series of one figure from `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};
use silvasec::experiments::standard_config;
use silvasec::prelude::*;
use silvasec_channel::{HandshakePolicy, Identity, Initiator, Responder, Session};
use silvasec_crypto::schnorr::SigningKey;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Run-identity keys for a `BENCH_*.json` trajectory entry, read from
/// the environment so no wall clock ever leaks into the simulation:
/// `SILVASEC_GIT_SHA` (falling back to `git rev-parse HEAD`, then
/// `unknown`) and `SILVASEC_RUN_TS` (default `unspecified`).
#[must_use]
pub fn run_keys() -> (String, String) {
    let sha = std::env::var("SILVASEC_GIT_SHA")
        .ok()
        .or_else(git_head_sha)
        .unwrap_or_else(|| "unknown".into());
    (
        sha,
        std::env::var("SILVASEC_RUN_TS").unwrap_or_else(|_| "unspecified".into()),
    )
}

/// Best-effort `git rev-parse HEAD` of the workspace checkout; `None`
/// when git is unavailable or the output is not a commit hash.
fn git_head_sha() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let sha = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (sha.len() == 40 && sha.bytes().all(|b| b.is_ascii_hexdigit())).then_some(sha)
}

/// Resolves the trajectory output path for one bench binary: the
/// binary's env override when set, else `default_file` at the
/// workspace root.
#[must_use]
pub fn trajectory_out_path(env_override: &str, default_file: &str) -> PathBuf {
    std::env::var(env_override).map_or_else(
        |_| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(default_file)
        },
        PathBuf::from,
    )
}

/// Loads the `runs` array of an existing trajectory file. Missing files
/// start a fresh trajectory; unparseable ones are reported and start
/// fresh too. When `legacy_schema` is given, a file holding a single
/// object of that pre-trajectory schema is migrated in place as the
/// first run.
#[must_use]
pub fn existing_trajectory_runs(path: &Path, legacy_schema: Option<&str>) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(value) = serde_json::parse(&text) else {
        eprintln!(
            "warning: {} is not valid JSON; starting a fresh trajectory",
            path.display()
        );
        return Vec::new();
    };
    if let Some(runs) = value.get_field("runs").as_array() {
        return runs.to_vec();
    }
    if let (Some(legacy), Value::String(schema)) = (legacy_schema, value.get_field("schema")) {
        if schema == legacy {
            return vec![value];
        }
    }
    Vec::new()
}

/// Appends one run entry to the trajectory file at `path` under the
/// given trajectory `schema`, migrating a `legacy_schema` single-object
/// file if present, and returns the resulting run count. Every
/// `BENCH_*.json` writer goes through here so the trajectory format
/// stays uniform across binaries.
pub fn append_trajectory_run<T: Serialize>(
    path: &Path,
    schema: &str,
    legacy_schema: Option<&str>,
    entry: &T,
) -> usize {
    let mut runs = existing_trajectory_runs(path, legacy_schema);
    runs.push(entry.serialize());
    let run_count = runs.len();
    let trajectory = Value::Object(vec![
        ("schema".to_string(), Value::String(schema.to_string())),
        ("runs".to_string(), Value::Array(runs)),
    ]);
    let text = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    std::fs::write(path, text).expect("write trajectory file");
    eprintln!("appended run ({run_count} total) to {}", path.display());
    run_count
}

/// Builds a two-party PKI and an established session pair, for channel
/// benchmarks and binaries.
#[must_use]
pub fn session_pair(seed: u8) -> (Session, Session) {
    let mut root = CertificateAuthority::new_root("root", &[seed; 32], Validity::new(0, 1_000_000));
    let store = TrustStore::with_roots([root.certificate().clone()]);
    let make = |id: &str, role, s: u8, root: &mut CertificateAuthority| {
        let key = SigningKey::from_seed(&[s; 32]);
        let cert = root.issue_mut(
            &Subject::new(id, role),
            &key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 500_000),
        );
        Identity::new(vec![cert], key)
    };
    let a = make(
        "a",
        ComponentRole::Forwarder,
        seed.wrapping_add(1),
        &mut root,
    );
    let b = make(
        "b",
        ComponentRole::BaseStation,
        seed.wrapping_add(2),
        &mut root,
    );
    let policy = HandshakePolicy::new(store, 100);
    let (init, hello) = Initiator::start(a, [seed.wrapping_add(3); 32], [seed.wrapping_add(4); 32]);
    let (resp, reply) = Responder::respond(
        b,
        &policy,
        &hello,
        [seed.wrapping_add(5); 32],
        [seed.wrapping_add(6); 32],
    )
    .expect("handshake");
    let (sa, finished) = init.finish(&policy, &reply).expect("finish");
    let sb = resp.complete(&finished).expect("complete");
    (sa, sb)
}

/// Formats a fraction as a percentage string.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Returns the median of a sample (mean of the middle two for even
/// sizes). Panics on an empty slice.
#[must_use]
pub fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Flight-recorder overhead measured on the standard worksite episode
/// with interleaved enabled/disabled rounds (median of each arm), so a
/// frequency ramp or background load during the measurement biases
/// both arms equally instead of making the overhead look negative.
#[derive(Debug, Clone, Serialize)]
pub struct RecorderOverhead {
    /// Simulated episode length, seconds.
    pub sim_secs: u64,
    /// Interleaved measurement rounds per arm.
    pub rounds: u32,
    /// Median wall-clock with the recorder enabled, seconds.
    pub enabled_wall_s: f64,
    /// Median wall-clock with the recorder disabled, seconds.
    pub disabled_wall_s: f64,
    /// Fractional wall-time overhead of recording, clamped at zero
    /// (`max(0, enabled / disabled - 1)`).
    pub overhead_frac: f64,
    /// Unclamped overhead; may dip below zero within the noise floor.
    pub raw_overhead_frac: f64,
    /// Measurement noise floor: relative half-spread of the disabled
    /// arm's round times. `raw_overhead_frac` within ±this of zero is
    /// indistinguishable from noise.
    pub noise_floor_frac: f64,
    /// Events recorded during the instrumented run.
    pub events: u64,
    /// Events recorded per wall-clock second.
    pub events_per_s: f64,
    /// Mean JSONL export size per flight-ring record, bytes.
    pub bytes_per_event: f64,
    /// Fraction of pushed records dropped by ring overflow.
    pub drop_rate: f64,
}

/// Measures recorder overhead on the standard secure worksite with
/// `rounds` interleaved enabled/disabled pairs.
#[must_use]
pub fn measure_recorder_overhead(seed: u64, sim_secs: u64, rounds: u32) -> RecorderOverhead {
    let rounds = rounds.max(1);
    let run = |enabled: bool| {
        let mut config = standard_config(SecurityPosture::secure());
        config.telemetry.enabled = enabled;
        let mut site = Worksite::new(&config, seed);
        let t = Instant::now();
        site.run(SimDuration::from_secs(sim_secs));
        (t.elapsed().as_secs_f64(), site)
    };
    // Warm-up pair (untimed): page in code and allocator state.
    let _ = run(true);
    let _ = run(false);
    let mut enabled_times = Vec::with_capacity(rounds as usize);
    let mut disabled_times = Vec::with_capacity(rounds as usize);
    let mut last_site = None;
    for _ in 0..rounds {
        let (t_on, site) = run(true);
        enabled_times.push(t_on);
        last_site = Some(site);
        let (t_off, _) = run(false);
        disabled_times.push(t_off);
    }
    let enabled_wall_s = median(&enabled_times);
    let disabled_wall_s = median(&disabled_times);
    let raw_overhead_frac = enabled_wall_s / disabled_wall_s.max(1e-9) - 1.0;
    let spread = disabled_times
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        - disabled_times.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let noise_floor_frac = spread / 2.0 / disabled_wall_s.max(1e-9);

    let site = last_site.expect("at least one round");
    let events = site.recorder().events_recorded();
    let jsonl = site.export_flight_jsonl();
    let lines = jsonl.lines().count();
    let snapshot = site.telemetry_snapshot();
    let pushed = snapshot.total_pushed();
    RecorderOverhead {
        sim_secs,
        rounds,
        enabled_wall_s,
        disabled_wall_s,
        overhead_frac: raw_overhead_frac.max(0.0),
        raw_overhead_frac,
        noise_floor_frac,
        events,
        events_per_s: events as f64 / enabled_wall_s.max(1e-9),
        bytes_per_event: jsonl.len() as f64 / lines.max(1) as f64,
        drop_rate: if pushed == 0 {
            0.0
        } else {
            snapshot.total_dropped() as f64 / pushed as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_pair_works() {
        let (mut a, mut b) = session_pair(1);
        let rec = a.seal(b"x").unwrap();
        assert_eq!(b.open(&rec).unwrap(), b"x");
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}
