//! Shared helpers for the benchmark harness.
//!
//! The table/figure regeneration binaries live in `src/bin/`; the
//! Criterion micro/mesobenchmarks in `benches/`. Each binary prints the
//! rows of one table or the series of one figure from `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};
use silvasec::experiments::standard_config;
use silvasec::prelude::*;
use silvasec_channel::{HandshakePolicy, Identity, Initiator, Responder, Session};
use silvasec_crypto::schnorr::SigningKey;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Run-identity keys for a `BENCH_*.json` trajectory entry, read from
/// the environment so no wall clock ever leaks into the simulation:
/// `SILVASEC_GIT_SHA` (default `unknown`) and `SILVASEC_RUN_TS`
/// (default `unspecified`).
#[must_use]
pub fn run_keys() -> (String, String) {
    (
        std::env::var("SILVASEC_GIT_SHA").unwrap_or_else(|_| "unknown".into()),
        std::env::var("SILVASEC_RUN_TS").unwrap_or_else(|_| "unspecified".into()),
    )
}

/// Resolves the trajectory output path for one bench binary: the
/// binary's env override when set, else `default_file` at the
/// workspace root.
#[must_use]
pub fn trajectory_out_path(env_override: &str, default_file: &str) -> PathBuf {
    std::env::var(env_override).map_or_else(
        |_| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(default_file)
        },
        PathBuf::from,
    )
}

/// Loads the `runs` array of an existing trajectory file. Missing files
/// start a fresh trajectory; unparseable ones are reported and start
/// fresh too. When `legacy_schema` is given, a file holding a single
/// object of that pre-trajectory schema is migrated in place as the
/// first run.
#[must_use]
pub fn existing_trajectory_runs(path: &Path, legacy_schema: Option<&str>) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(value) = serde_json::parse(&text) else {
        eprintln!(
            "warning: {} is not valid JSON; starting a fresh trajectory",
            path.display()
        );
        return Vec::new();
    };
    if let Some(runs) = value.get_field("runs").as_array() {
        return runs.to_vec();
    }
    if let (Some(legacy), Value::String(schema)) = (legacy_schema, value.get_field("schema")) {
        if schema == legacy {
            return vec![value];
        }
    }
    Vec::new()
}

/// Appends one run entry to the trajectory file at `path` under the
/// given trajectory `schema`, migrating a `legacy_schema` single-object
/// file if present, and returns the resulting run count. Every
/// `BENCH_*.json` writer goes through here so the trajectory format
/// stays uniform across binaries.
pub fn append_trajectory_run<T: Serialize>(
    path: &Path,
    schema: &str,
    legacy_schema: Option<&str>,
    entry: &T,
) -> usize {
    let mut runs = existing_trajectory_runs(path, legacy_schema);
    runs.push(entry.serialize());
    let run_count = runs.len();
    let trajectory = Value::Object(vec![
        ("schema".to_string(), Value::String(schema.to_string())),
        ("runs".to_string(), Value::Array(runs)),
    ]);
    let text = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    std::fs::write(path, text).expect("write trajectory file");
    eprintln!("appended run ({run_count} total) to {}", path.display());
    run_count
}

/// Builds a two-party PKI and an established session pair, for channel
/// benchmarks and binaries.
#[must_use]
pub fn session_pair(seed: u8) -> (Session, Session) {
    let mut root = CertificateAuthority::new_root("root", &[seed; 32], Validity::new(0, 1_000_000));
    let store = TrustStore::with_roots([root.certificate().clone()]);
    let make = |id: &str, role, s: u8, root: &mut CertificateAuthority| {
        let key = SigningKey::from_seed(&[s; 32]);
        let cert = root.issue_mut(
            &Subject::new(id, role),
            &key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 500_000),
        );
        Identity::new(vec![cert], key)
    };
    let a = make(
        "a",
        ComponentRole::Forwarder,
        seed.wrapping_add(1),
        &mut root,
    );
    let b = make(
        "b",
        ComponentRole::BaseStation,
        seed.wrapping_add(2),
        &mut root,
    );
    let policy = HandshakePolicy::new(store, 100);
    let (init, hello) = Initiator::start(a, [seed.wrapping_add(3); 32], [seed.wrapping_add(4); 32]);
    let (resp, reply) = Responder::respond(
        b,
        &policy,
        &hello,
        [seed.wrapping_add(5); 32],
        [seed.wrapping_add(6); 32],
    )
    .expect("handshake");
    let (sa, finished) = init.finish(&policy, &reply).expect("finish");
    let sb = resp.complete(&finished).expect("complete");
    (sa, sb)
}

/// Formats a fraction as a percentage string.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Flight-recorder overhead measured on one standard worksite episode
/// run twice — once with full instrumentation, once with the recorder
/// disabled.
#[derive(Debug, Clone, Serialize)]
pub struct RecorderOverhead {
    /// Simulated episode length, seconds.
    pub sim_secs: u64,
    /// Wall-clock with the recorder enabled, seconds.
    pub enabled_wall_s: f64,
    /// Wall-clock with the recorder disabled, seconds.
    pub disabled_wall_s: f64,
    /// Fractional wall-time overhead of recording
    /// (`enabled / disabled - 1`; negative values are measurement noise).
    pub overhead_frac: f64,
    /// Events recorded during the instrumented run.
    pub events: u64,
    /// Events recorded per wall-clock second.
    pub events_per_s: f64,
    /// Mean JSONL export size per flight-ring record, bytes.
    pub bytes_per_event: f64,
    /// Fraction of pushed records dropped by ring overflow.
    pub drop_rate: f64,
}

/// Measures recorder overhead on the standard secure worksite.
#[must_use]
pub fn measure_recorder_overhead(seed: u64, sim_secs: u64) -> RecorderOverhead {
    let run = |enabled: bool| {
        let mut config = standard_config(SecurityPosture::secure());
        config.telemetry.enabled = enabled;
        let mut site = Worksite::new(&config, seed);
        let t = Instant::now();
        site.run(SimDuration::from_secs(sim_secs));
        (t.elapsed().as_secs_f64(), site)
    };
    let (enabled_wall_s, site) = run(true);
    let (disabled_wall_s, _) = run(false);

    let events = site.recorder().events_recorded();
    let jsonl = site.export_flight_jsonl();
    let lines = jsonl.lines().count();
    let snapshot = site.telemetry_snapshot();
    let pushed = snapshot.total_pushed();
    RecorderOverhead {
        sim_secs,
        enabled_wall_s,
        disabled_wall_s,
        overhead_frac: enabled_wall_s / disabled_wall_s.max(1e-9) - 1.0,
        events,
        events_per_s: events as f64 / enabled_wall_s.max(1e-9),
        bytes_per_event: jsonl.len() as f64 / lines.max(1) as f64,
        drop_rate: if pushed == 0 {
            0.0
        } else {
            snapshot.total_dropped() as f64 / pushed as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_pair_works() {
        let (mut a, mut b) = session_pair(1);
        let rec = a.seal(b"x").unwrap();
        assert_eq!(b.open(&rec).unwrap(), b"x");
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}
