//! **E10: fleet OTA rollout and fleet security operations.**
//!
//! Sweeps fleet size 1 → 64 through the staged OTA rollout of
//! `silvasec-fleet` and exercises every fleet-layer attack scenario at
//! the largest size:
//!
//! * **clean** — per-size rollout latency, bytes on air and frame count
//!   (the bandwidth/latency scaling axes);
//! * **tampered** — chunks corrupted in transit: every site must reject
//!   the reassembled bundle;
//! * **downgrade** — the old signed bundle substituted on the wire:
//!   every site must reject the rollback;
//! * **poisoned** — a correctly signed malicious bundle: the canary's
//!   IDS spike must halt the rollout, and detection-to-halt time is
//!   reported;
//! * **jammed** — broadband jamming on every uplink (reported, not
//!   asserted: the interesting number is the retransmission cost).
//!
//! The determinism contract is asserted on every run by rolling the
//! largest fleet twice from the same seed and comparing the security
//! traces byte for byte. One run entry is **appended** to
//! `BENCH_exp10_fleet.json` so successive revisions accumulate into a
//! trajectory (same pattern as `perf_snapshot`).
//!
//! Run keys come from the environment, never from a wall clock inside
//! the simulation:
//!
//! * `SILVASEC_GIT_SHA` — revision identifier (default `unknown`);
//! * `SILVASEC_RUN_TS` — timestamp string (default `unspecified`);
//! * `SILVASEC_FLEET_OUT` — output path (default
//!   `BENCH_exp10_fleet.json` at the workspace root).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp10_fleet`
//! (pass `--sites-max 4` for a CI-sized smoke run, `--seed N` to vary
//! the fleet seed).

use serde::Serialize;
use silvasec::experiments::{run_fleet_rollout, FleetScenario};
use silvasec::fleet::RolloutReport;
use silvasec::sweep::{par_sweep_with_stats, worker_count};
use silvasec_bench::{append_trajectory_run, run_keys, trajectory_out_path};

const FLEET_SIZES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
const DEFAULT_SEED: u64 = 11;

#[derive(Debug, Serialize)]
struct SizeRow {
    sites: usize,
    completed: bool,
    latency_ms: u64,
    bytes_on_air: u64,
    frames_sent: u64,
    /// Mean per-site bundle-verification wall time, microseconds.
    verify_mean_us: f64,
    /// Slowest single bundle verification in this rollout, microseconds.
    verify_max_us: u64,
}

fn verify_mean_us(report: &RolloutReport) -> f64 {
    if report.verify_calls == 0 {
        return 0.0;
    }
    report.verify_wall_us as f64 / f64::from(report.verify_calls)
}

#[derive(Debug, Serialize)]
struct RunEntry {
    /// Revision identifier (`SILVASEC_GIT_SHA`, `unknown` if unset).
    git_sha: String,
    /// Run timestamp (`SILVASEC_RUN_TS`, `unspecified` if unset).
    run_ts: String,
    /// Fleet seed the whole run used.
    seed: u64,
    /// Worker threads the sweep engine used.
    workers: usize,
    /// Fleet sizes swept under the clean scenario.
    fleet_sizes: Vec<usize>,
    /// Largest fleet size (attack scenarios ran at this size).
    max_sites: usize,
    /// Wall-clock for the whole sweep, seconds.
    sweep_wall_s: f64,
    /// Site-updates applied per wall-clock second across the clean
    /// sweep — the fleet-layer throughput axis of the trajectory.
    rollout_sites_per_s: f64,
    /// Clean rollout latency at the largest size, fleet milliseconds.
    clean_latency_ms: u64,
    /// Clean rollout bytes on air at the largest size.
    clean_bytes_on_air: u64,
    /// Same-seed traces at the largest size were byte-identical.
    deterministic: bool,
    /// Sites rejecting the tampered bundle (must equal `max_sites`).
    tampered_rejected: u32,
    /// Sites rejecting the downgrade (must equal `max_sites`).
    downgrade_rejected: u32,
    /// Wave at which the poisoned rollout halted.
    poisoned_halted_at_wave: u32,
    /// Canary-spike detection to rollout halt, fleet milliseconds.
    detect_to_halt_ms: u64,
    /// Jammed-uplink rollout frames vs clean, at the jam size.
    jammed_frames_sent: u64,
    /// Mean per-site bundle-verification wall time at the largest clean
    /// size, microseconds — the crypto fast-path axis of the trajectory.
    bundle_verify_mean_us: f64,
    /// Slowest single bundle verification at the largest clean size,
    /// microseconds.
    bundle_verify_max_us: u64,
    /// Per-size clean rows (latency/bandwidth scaling).
    clean_rows: Vec<SizeRow>,
}

fn parse_args() -> (usize, u64) {
    let mut sites_max = *FLEET_SIZES.last().expect("non-empty");
    let mut seed = DEFAULT_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sites-max" => {
                let value = args.next().expect("--sites-max needs a value");
                sites_max = value.parse().expect("--sites-max must be an integer");
                assert!(sites_max >= 1, "--sites-max must be at least 1");
            }
            "--seed" => {
                let value = args.next().expect("--seed needs a value");
                seed = value.parse().expect("--seed must be an integer");
            }
            other => panic!("unknown argument: {other} (expected --sites-max / --seed)"),
        }
    }
    (sites_max, seed)
}

fn reason_total(report: &RolloutReport, reason: &str) -> u32 {
    report.reject_reasons.get(reason).copied().unwrap_or(0)
}

fn main() {
    let (sites_max, seed) = parse_args();
    let sizes: Vec<usize> = FLEET_SIZES
        .iter()
        .copied()
        .filter(|&s| s <= sites_max)
        .collect();
    let sizes = if sizes.is_empty() {
        vec![sites_max]
    } else {
        sizes
    };
    let max_sites = *sizes.last().expect("non-empty");
    let jam_sites = max_sites.min(8);

    // One grid for everything: the clean size sweep, a same-seed twin of
    // the largest size (determinism witness), and the attack scenarios.
    let mut points: Vec<(usize, FleetScenario)> =
        sizes.iter().map(|&s| (s, FleetScenario::Clean)).collect();
    let twin = points.len();
    points.push((max_sites, FleetScenario::Clean));
    points.push((max_sites, FleetScenario::Tampered));
    points.push((max_sites, FleetScenario::Downgrade));
    points.push((max_sites, FleetScenario::Poisoned));
    points.push((jam_sites, FleetScenario::Jammed));

    eprintln!(
        "exp10_fleet: {} points (sizes {:?}, seed {seed}) on {} workers",
        points.len(),
        sizes,
        worker_count(points.len())
    );
    let (results, stats) = par_sweep_with_stats(&points, |&(sites, scenario)| {
        run_fleet_rollout(sites, seed, scenario)
    });

    // Clean scaling rows.
    let mut clean_rows = Vec::new();
    for (i, &sites) in sizes.iter().enumerate() {
        let (report, _) = &results[i];
        assert!(
            report.completed,
            "clean rollout must complete at {sites} sites: {report:?}"
        );
        assert_eq!(
            report.applied_sites, sites as u32,
            "clean rollout must update every one of {sites} sites"
        );
        assert_eq!(
            report.rejected_sites, 0,
            "clean rollout must reject nothing at {sites} sites"
        );
        clean_rows.push(SizeRow {
            sites,
            completed: report.completed,
            latency_ms: report.latency_ms,
            bytes_on_air: report.bytes_on_air,
            frames_sent: report.frames_sent,
            verify_mean_us: verify_mean_us(report),
            verify_max_us: report.verify_wall_us_max,
        });
    }

    // Determinism: the twin ran the identical point — traces must match
    // byte for byte.
    let (_, base_trace) = &results[sizes.len() - 1];
    let (_, twin_trace) = &results[twin];
    let deterministic = base_trace == twin_trace;
    assert!(
        deterministic,
        "same-seed fleet traces diverged at {max_sites} sites — determinism contract broken"
    );

    // Tampered: every site rejects the corrupted bundle.
    let (tampered, _) = &results[twin + 1];
    assert_eq!(
        tampered.applied_sites, 0,
        "tampered bundle must never apply: {tampered:?}"
    );
    assert_eq!(
        tampered.rejected_sites, max_sites as u32,
        "tampered bundle must be rejected on every site: {tampered:?}"
    );

    // Downgrade: every site rejects the rollback, for the right reason.
    let (downgrade, _) = &results[twin + 2];
    assert_eq!(
        downgrade.applied_sites, 0,
        "downgrade must never apply: {downgrade:?}"
    );
    assert_eq!(
        reason_total(downgrade, "downgrade"),
        max_sites as u32,
        "every site must reject the rollback as a downgrade: {downgrade:?}"
    );

    // Poisoned: the canary's IDS spike halts the rollout before the
    // fleet is lost.
    let (poisoned, _) = &results[twin + 3];
    let halted_at = poisoned
        .halted_at_wave
        .expect("poisoned rollout must halt on the canary IDS spike");
    let detect_to_halt_ms = poisoned
        .detect_to_halt_ms
        .expect("halt must carry detection-to-halt time");
    assert!(
        !poisoned.completed,
        "poisoned rollout must not complete: {poisoned:?}"
    );
    assert!(
        (poisoned.applied_sites as usize) < max_sites.max(2),
        "halt must spare most of the fleet: {poisoned:?}"
    );

    // Jammed: reported, not asserted (the outcome depends on jamming
    // margin; the retransmission cost is the datapoint).
    let (jammed, _) = &results[twin + 4];

    let applied_total: u32 = sizes
        .iter()
        .enumerate()
        .map(|(i, _)| results[i].0.applied_sites)
        .sum();
    let last_clean = clean_rows.last().expect("non-empty");
    let (git_sha, run_ts) = run_keys();
    let entry = RunEntry {
        git_sha,
        run_ts,
        seed,
        workers: stats.workers,
        fleet_sizes: sizes.clone(),
        max_sites,
        sweep_wall_s: stats.wall_s,
        rollout_sites_per_s: f64::from(applied_total) / stats.wall_s.max(1e-9),
        clean_latency_ms: last_clean.latency_ms,
        clean_bytes_on_air: last_clean.bytes_on_air,
        deterministic,
        tampered_rejected: tampered.rejected_sites,
        downgrade_rejected: downgrade.rejected_sites,
        poisoned_halted_at_wave: halted_at,
        detect_to_halt_ms,
        jammed_frames_sent: jammed.frames_sent,
        bundle_verify_mean_us: last_clean.verify_mean_us,
        bundle_verify_max_us: last_clean.verify_max_us,
        clean_rows,
    };

    println!("--- E10: clean rollout scaling (seed {seed}) ---");
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "sites", "latency (s)", "bytes on air", "frames"
    );
    for row in &entry.clean_rows {
        println!(
            "{:>6} {:>12.1} {:>14} {:>12}",
            row.sites,
            row.latency_ms as f64 / 1e3,
            row.bytes_on_air,
            row.frames_sent
        );
    }
    println!(
        "bundle verify at {max_sites} sites: mean {:.1} us, max {} us per site",
        entry.bundle_verify_mean_us, entry.bundle_verify_max_us
    );
    println!("--- E10: attack scenarios at {max_sites} sites ---");
    println!(
        "tampered : applied {} rejected {} ({:?})",
        tampered.applied_sites, tampered.rejected_sites, tampered.reject_reasons
    );
    println!(
        "downgrade: applied {} rejected {} ({:?})",
        downgrade.applied_sites, downgrade.rejected_sites, downgrade.reject_reasons
    );
    println!(
        "poisoned : halted at wave {halted_at}, detect-to-halt {:.1} s, {} site(s) exposed",
        detect_to_halt_ms as f64 / 1e3,
        poisoned.applied_sites
    );
    println!(
        "jammed   : {jam_sites} sites, completed {}, frames {} (clean at that size would be fewer)",
        jammed.completed, jammed.frames_sent
    );
    println!("deterministic: same-seed traces at {max_sites} sites byte-identical");

    let out_path = trajectory_out_path("SILVASEC_FLEET_OUT", "BENCH_exp10_fleet.json");
    append_trajectory_run(&out_path, "silvasec-fleet-trajectory/1", None, &entry);
}
