//! **E11: generative TARA at scale** — the machine-readable datapoints
//! behind `BENCH_tara.json`.
//!
//! Sweeps the enumerated scenario count 10² → 10⁶ through the
//! generative TARA engine (`silvasec-tara`): each point derives the
//! variant count covering the target, enumerates the asset × attack ×
//! entry × ODD cross product on the parallel sweep pool, scores every
//! distinct scenario with the ISO/SAE 21434 matrices and keeps the
//! deterministic top-k. On **every** point the subsystem's contracts
//! are proved before timing is reported:
//!
//! * **Determinism** — the `par_sweep` enumeration is byte-identical to
//!   the sequential walk, and a same-seed twin reproduces the ranking
//!   digest exactly;
//! * **Dedup accounting** — `enumerated == distinct +
//!   duplicates_folded`, with the closed-form catalog counts matched;
//! * **Oracle cross-check** — every grounded baseline cell (native
//!   entry, clear ODD, variant 0) scores identically to the hand-built
//!   `exp3_tara` assessment (`Tara::assess`) on impact, feasibility,
//!   risk and treatment;
//! * **Live hypotheses** — the E11 fleet scenario confirms hypotheses
//!   from SIEM campaign evidence, retires them on rollout mitigation,
//!   and the hypothesis state replays from the fleet trace alone.
//!
//! Run keys come from the environment, never from a wall clock inside
//! the simulation:
//!
//! * `SILVASEC_GIT_SHA` — revision identifier (default `unknown`);
//! * `SILVASEC_RUN_TS` — timestamp string (default `unspecified`);
//! * `SILVASEC_TARA_OUT` — output path (default `BENCH_tara.json` at
//!   the workspace root).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp11_tara`
//! (pass `--smoke` for a CI-sized run: 10²/10³-scenario points,
//! contracts asserted, no trajectory append).

use serde::Serialize;
use silvasec::experiments::{run_tara_hypotheses, tara_ranking};
use silvasec::risk::catalog::worksite_model;
use silvasec::risk::tara::Tara;
use silvasec::tara::{HypothesisSet, ScenarioSpace, TaraCatalog};
use silvasec_bench::{append_trajectory_run, run_keys, trajectory_out_path};
use std::time::Instant;

const TARGETS: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];
const SMOKE_TARGETS: [u64; 2] = [100, 1_000];
const SEED: u64 = 11;
const TOP_K: usize = 64;

/// The acceptance floor: at the 10⁵-scenario point and above, the
/// engine must enumerate, dedup and score at least this many scenarios
/// per wall-clock second.
const MIN_SCENARIOS_PER_S: f64 = 50_000.0;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[derive(Debug, Serialize)]
struct TaraRow {
    /// Requested scenario count for this point.
    target: u64,
    /// Attack-path variants enumerated to cover the target.
    variants: u32,
    /// Cells actually walked (≥ target).
    enumerated: u64,
    /// Distinct canonical scenarios scored after dedup.
    distinct: u64,
    /// Cells folded into an already-seen scenario.
    duplicates_folded: u64,
    /// Distinct scenarios grounded by a hand-built threat.
    grounded_scored: u64,
    /// Wall-clock of the timed parallel enumeration, seconds.
    wall_s: f64,
    /// Enumerated scenarios per wall-clock second.
    scenarios_per_s: f64,
    /// Risk value (1..=5) of the top-ranked scenario.
    top_risk: u8,
    /// Attack class of the top-ranked scenario.
    top_class: String,
    /// Hex SHA-256 over the dedup counters and the canonical top-k
    /// ranking (the byte string the determinism assertions compare).
    ranking_digest: String,
}

#[derive(Debug, Serialize)]
struct RunEntry {
    /// Revision identifier (`SILVASEC_GIT_SHA`, `unknown` if unset).
    git_sha: String,
    /// Run timestamp (`SILVASEC_RUN_TS`, `unspecified` if unset).
    run_ts: String,
    /// Seed keying the variant attack-path perturbations.
    seed: u64,
    /// Ranking capacity at every sweep point.
    top_k: usize,
    /// Whether this was a reduced CI run.
    smoke: bool,
    /// Parallel enumeration was byte-identical to sequential at every point.
    parallel_identical: bool,
    /// Same-seed twin reproduced the ranking digest at every point.
    deterministic_same_seed: bool,
    /// Grounded baseline cells matched the hand-built `exp3_tara` scores.
    oracle_match: bool,
    /// Live hypotheses: SIEM evidence confirmed and mitigation retired
    /// hypotheses in the E11 fleet scenario, and the state replayed
    /// from the trace alone.
    hypotheses_replay_identical: bool,
    /// Hypotheses confirmed by campaign evidence in the fleet scenario.
    hypotheses_confirmed: usize,
    /// Hypotheses retired by the rollout mitigation.
    hypotheses_retired: usize,
    /// Enumerated scenarios per second at the largest point.
    scenarios_per_s_max_scale: f64,
    /// One row per sweep point.
    rows: Vec<TaraRow>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let targets: &[u64] = if smoke { &SMOKE_TARGETS } else { &TARGETS };

    let model = worksite_model();
    let catalog = TaraCatalog::from_model(&model);
    let oracle = Tara::assess(&model);

    let mut rows = Vec::new();
    eprintln!("exp11_tara: sweeping {targets:?} scenarios (seed {SEED}, top-{TOP_K})");
    for &target in targets {
        let variants = ScenarioSpace::variants_for(&catalog, target);
        let space = ScenarioSpace::new(&catalog, SEED, variants, TOP_K);

        let t0 = Instant::now();
        let report = space.enumerate_parallel();
        let wall_s = t0.elapsed().as_secs_f64();

        // Determinism: parallel == sequential, bit for bit, and a
        // same-seed twin reproduces the digest.
        let sequential = space.enumerate();
        assert_eq!(
            report, sequential,
            "parallel enumeration diverged from sequential at target {target}"
        );
        let twin = space.enumerate_parallel();
        assert_eq!(
            twin.digest(),
            report.digest(),
            "same-seed ranking digests diverged at target {target}"
        );

        // Dedup accounting balances and matches the closed form.
        assert!(report.enumerated >= target, "target covered");
        assert_eq!(
            report.enumerated,
            catalog.cells_per_variant() * u64::from(variants)
        );
        assert_eq!(
            report.distinct,
            catalog.distinct_per_variant() * u64::from(variants)
        );
        assert_eq!(
            report.enumerated,
            report.distinct + report.duplicates_folded,
            "dedup accounting must balance at target {target}"
        );

        // Oracle cross-check: grounded baseline cells reproduce the
        // hand-built exp3_tara assessment exactly.
        let baselines = space.baseline_cells();
        assert!(!baselines.is_empty(), "catalog must be grounded");
        for (threat_id, cell) in &baselines {
            let expected = oracle
                .risks
                .iter()
                .find(|r| &r.threat_id == threat_id)
                .unwrap_or_else(|| panic!("oracle assesses {threat_id}"));
            assert_eq!(cell.impact, expected.impact, "impact for {threat_id}");
            assert_eq!(
                cell.feasibility, expected.feasibility,
                "feasibility for {threat_id}"
            );
            assert_eq!(cell.risk, expected.risk, "risk for {threat_id}");
            assert_eq!(
                cell.treatment, expected.treatment,
                "treatment for {threat_id}"
            );
        }

        let scenarios_per_s = report.enumerated as f64 / wall_s.max(1e-9);
        if !smoke && report.enumerated >= 100_000 {
            assert!(
                scenarios_per_s >= MIN_SCENARIOS_PER_S,
                "throughput floor missed at target {target}: {scenarios_per_s:.0}/s"
            );
        }

        let top = report.top.first().expect("non-empty ranking");
        let row = TaraRow {
            target,
            variants,
            enumerated: report.enumerated,
            distinct: report.distinct,
            duplicates_folded: report.duplicates_folded,
            grounded_scored: report.grounded_scored,
            wall_s,
            scenarios_per_s,
            top_risk: top.risk.0,
            top_class: top.attack_class.clone(),
            ranking_digest: hex(&report.digest()),
        };
        eprintln!(
            "  {target:>8} target: {variants:>4} variants, {:>8} enumerated \
             ({} folded), {wall_s:>7.3} s wall, {scenarios_per_s:>10.0}/s, \
             top risk {} ({})",
            row.enumerated, row.duplicates_folded, row.top_risk, row.top_class
        );
        rows.push(row);
    }

    // Live hypotheses: the E11 fleet scenario confirms from SIEM
    // campaign evidence, retires on rollout mitigation, and the state
    // is a pure function of the fleet trace.
    eprintln!("exp11_tara: running the live-hypothesis fleet scenario");
    let fleet = run_tara_hypotheses(4, SEED);
    let live = fleet.tara().expect("tara knob on");
    let (_, confirmed, retired) = live.counts();
    assert!(confirmed > 0, "campaign evidence must confirm hypotheses");
    assert!(retired > 0, "rollout mitigation must retire hypotheses");
    let replayed =
        HypothesisSet::replay_from_jsonl(tara_ranking(SEED), &fleet.export_trace_jsonl())
            .expect("fleet trace replays");
    assert_eq!(
        replayed.first_divergence(live),
        None,
        "replayed hypothesis state diverged"
    );

    let last = rows.last().expect("non-empty sweep");
    let (git_sha, run_ts) = run_keys();
    let entry = RunEntry {
        git_sha,
        run_ts,
        seed: SEED,
        top_k: TOP_K,
        smoke,
        parallel_identical: true,
        deterministic_same_seed: true,
        oracle_match: true,
        hypotheses_replay_identical: true,
        hypotheses_confirmed: confirmed,
        hypotheses_retired: retired,
        scenarios_per_s_max_scale: last.scenarios_per_s,
        rows,
    };

    println!("--- E11: generative TARA at scale (seed {SEED}, top-{TOP_K}) ---");
    println!(
        "{:>9} {:>8} {:>10} {:>9} {:>8} {:>9} {:>12} {:>8}",
        "target", "variants", "enumerated", "distinct", "folded", "wall (s)", "scenarios/s", "top"
    );
    for row in &entry.rows {
        println!(
            "{:>9} {:>8} {:>10} {:>9} {:>8} {:>9.3} {:>12.0} {:>5} r{}",
            row.target,
            row.variants,
            row.enumerated,
            row.distinct,
            row.duplicates_folded,
            row.wall_s,
            row.scenarios_per_s,
            row.top_class,
            row.top_risk
        );
    }
    println!("determinism: parallel == sequential, same-seed digest identical");
    println!("oracle: grounded baselines match exp3_tara on impact/feasibility/risk/treatment");
    println!(
        "hypotheses: {confirmed} confirmed by SIEM evidence, {retired} retired by mitigation, \
         replay identical"
    );

    if smoke {
        eprintln!("smoke mode: skipping trajectory append");
        return;
    }

    let out_path = trajectory_out_path("SILVASEC_TARA_OUT", "BENCH_tara.json");
    append_trajectory_run(&out_path, "silvasec-tara-trajectory/1", None, &entry);
}
