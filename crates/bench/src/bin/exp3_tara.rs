//! **E3** — the full TARA output for the use case: per threat scenario
//! the impact, feasibility, risk value and treatment, plus the IEC 62443
//! zone gap analysis.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp3_tara`

use silvasec::risk::catalog;
use silvasec::risk::iec62443::control_catalog;
use silvasec::risk::tara::Tara;

fn main() {
    let model = catalog::worksite_model();
    let report = Tara::assess(&model);

    println!("E3 — TARA for the Figure 1/2 worksite\n");
    println!(
        "{:<22} {:<24} {:>10} {:>12} {:>5}  {:<9}",
        "threat scenario", "damage scenario", "impact", "feasibility", "risk", "treatment"
    );
    for r in &report.risks {
        println!(
            "{:<22} {:<24} {:>10} {:>12} {:>5}  {:<9}",
            r.threat_id,
            r.damage_scenario_id,
            format!("{:?}", r.impact),
            format!("{:?}", r.feasibility),
            r.risk.0,
            format!("{:?}", r.treatment)
        );
    }

    println!("\nderived requirements and candidate controls:");
    for req in report.requirements() {
        println!("  {:<26} {:?}", req.id, req.candidate_controls);
    }

    println!("\nIEC 62443 zone gaps (undefended → with controls):");
    let controls = control_catalog();
    let before = catalog::worksite_zones(false);
    let after = catalog::worksite_zones(true);
    for (b, a) in before.iter().zip(after.iter()) {
        println!(
            "  {:<26} {} FR gaps → {} FR gaps",
            b.id,
            b.gap(&controls).len(),
            a.gap(&controls).len()
        );
    }

    println!("\nshape to verify: the easy, safety-critical attacks (camera blinding,");
    println!("GNSS spoofing, de-auth) rank at the top; all level-4/5 risks are treated");
    println!("by reduction; the control deployment closes every zone gap.");
}
