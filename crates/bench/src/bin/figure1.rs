//! Regenerates **Figure 1** as a quantitative scenario: the full
//! partially-autonomous worksite (autonomous forwarder, manned harvester,
//! observation drone) over a simulated shift, with and without the
//! security controls, under a combined attack campaign.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin figure1`

use silvasec::experiments::{campaign_for, standard_config};
use silvasec::prelude::*;

fn run(
    posture: SecurityPosture,
    attacks: bool,
    seed: u64,
) -> silvasec::sos::metrics::WorksiteMetrics {
    let mut site = Worksite::new(&standard_config(posture), seed);
    if attacks {
        for (kind, start) in [
            (AttackKind::DeauthFlood, 300),
            (AttackKind::RfJamming, 700),
            (AttackKind::CameraBlinding, 1100),
            (AttackKind::GnssSpoofing, 1500),
            (AttackKind::Replay, 1900),
        ] {
            site.attack_engine_mut().add_campaign(campaign_for(
                kind,
                SimTime::from_secs(start),
                SimDuration::from_secs(180),
            ));
        }
    }
    site.run(SimDuration::from_secs(2400));
    site.metrics().clone()
}

fn print_row(label: &str, m: &silvasec::sos::metrics::WorksiteMetrics) {
    println!(
        "{:<30} {:>6} {:>10.0} {:>10.1} {:>9.1} {:>9} {:>8} {:>7}",
        label,
        m.loads_delivered,
        m.distance_m,
        m.delivery_ratio() * 100.0,
        m.drone_feed_ratio() * 100.0,
        m.safety_incidents.len(),
        m.forged_accepted,
        m.alerts.values().sum::<u64>()
    );
}

fn main() {
    println!("FIGURE 1 — the partially-autonomous worksite, 40 simulated minutes");
    println!("(five-phase attack campaign in the attacked runs)\n");
    println!(
        "{:<30} {:>6} {:>10} {:>10} {:>9} {:>9} {:>8} {:>7}",
        "scenario", "loads", "dist (m)", "deliv %", "drone %", "incid.", "forged", "alerts"
    );
    for seed in [11u64, 12, 13] {
        print_row(
            &format!("secure, no attacks (s{seed})"),
            &run(SecurityPosture::secure(), false, seed),
        );
    }
    for seed in [11u64, 12, 13] {
        print_row(
            &format!("secure, attacked   (s{seed})"),
            &run(SecurityPosture::secure(), true, seed),
        );
    }
    for seed in [11u64, 12, 13] {
        print_row(
            &format!("insecure, attacked (s{seed})"),
            &run(SecurityPosture::insecure(), true, seed),
        );
    }
    println!("\nshape to verify: the hardened worksite under attack keeps forged=0 and");
    println!("raises alerts; the undefended one silently accepts forged traffic and");
    println!("loses more telemetry and drone-feed availability.");
}
