//! **E6** — secure-channel overhead on safety traffic, in wall-clock and
//! in on-air bytes (the criterion benches measure the primitives; this
//! binary reports the end-to-end numbers a safety engineer asks about).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp6_overhead`

use silvasec_bench::session_pair;
use silvasec_channel::session::RECORD_OVERHEAD;
use std::time::Instant;

fn main() {
    println!("E6 — secure-channel overhead\n");

    // Handshake latency.
    let n = 20;
    let start = Instant::now();
    for i in 0..n {
        let _ = session_pair(i as u8);
    }
    let hs_ms = start.elapsed().as_secs_f64() * 1000.0 / f64::from(n);
    println!("mutual handshake (X25519 + 2 cert verifications + 2 signatures):");
    println!("  {hs_ms:.2} ms per handshake (amortized over {n})\n");

    println!(
        "{:>12} {:>14} {:>14} {:>12} {:>14}",
        "payload (B)", "seal+open (µs)", "plain copy(µs)", "bytes added", "airtime @6Mbps"
    );
    for size in [32usize, 128, 512, 2048] {
        let (mut a, mut b) = session_pair(9);
        let msg = vec![0u8; size];
        let iterations = 2000;
        let start = Instant::now();
        for _ in 0..iterations {
            let rec = a.seal(&msg).unwrap();
            let _ = b.open(&rec).unwrap();
        }
        let crypt_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(iterations);

        let start = Instant::now();
        for _ in 0..iterations {
            let _ = std::hint::black_box(msg.clone());
        }
        let copy_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(iterations);

        let added = RECORD_OVERHEAD;
        let airtime_us = (added * 8) as f64 / 6.0; // µs on a 6 Mbps link
        println!(
            "{:>12} {:>14.2} {:>14.2} {:>12} {:>11.1} µs",
            size, crypt_us, copy_us, added, airtime_us
        );
    }
    println!("\nshape to verify: per-record overhead is tens of microseconds of CPU and");
    println!("{RECORD_OVERHEAD} bytes on the air — negligible against the ~0.5 s safety tick and");
    println!("frame airtimes, so securing the safety traffic costs essentially nothing.");
}
