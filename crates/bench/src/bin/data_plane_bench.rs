//! **Data-plane fast-path benchmark** — the machine-readable datapoints
//! behind `BENCH_data_plane.json`.
//!
//! Times the bulk data-plane fast paths of `silvasec-crypto` against the
//! frozen naive references in the **same run**, on the same inputs:
//!
//! * multi-block ChaCha20 keystream (`apply_keystream_inplace`, the
//!   eight-block wide path) vs the frozen per-block
//!   `apply_keystream_naive`;
//! * one-pass AEAD `seal_in_place` (encrypt-and-MAC in a single sweep
//!   over a reused buffer) vs the frozen two-pass allocating
//!   `seal_naive`;
//! * one-pass AEAD `open_in_place` vs the frozen `open_naive`;
//! * streaming SHA-256 bulk throughput for context;
//! * established-session record throughput (`Session::seal_into` /
//!   `open_into` over reused buffers), the end-to-end headline.
//!
//! Every timed pair is preceded by a cross-check that the fast and
//! naive paths produce byte-identical output across an edge-heavy
//! length schedule (empty, single byte, around the Poly1305 block
//! boundary, around the ChaCha20 block boundary, and multi-wide-chunk);
//! a digest over every checked ciphertext is stored in the entry
//! (`check_digest`), so two entries from the same code are identical
//! modulo the timing fields.
//!
//! The binary also asserts the allocation contract directly: once the
//! reused record buffer has reached steady-state capacity,
//! `Session::seal_into` must perform **zero** heap allocations per
//! record, counted by a wrapping global allocator.
//!
//! Timing hygiene: the nonce and initial counter change on every timed
//! iteration. With a loop-invariant nonce/counter the whole keystream
//! becomes hoistable and LLVM will happily lift it out of the timing
//! loop, producing speedups that measure the optimizer rather than the
//! cipher.
//!
//! Run keys come from the environment, never from a wall clock inside
//! the measurement:
//!
//! * `SILVASEC_GIT_SHA` — revision identifier (default `unknown`);
//! * `SILVASEC_RUN_TS` — timestamp string (default `unspecified`);
//! * `SILVASEC_DATA_PLANE_OUT` — output path (default
//!   `BENCH_data_plane.json` at the workspace root).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin
//! data_plane_bench` (pass `--smoke` for a CI-sized run: reduced
//! iterations, cross-checks and the zero-allocation assertion only, no
//! speedup floors, no trajectory append).

use serde::Serialize;
use silvasec_bench::{append_trajectory_run, run_keys, session_pair, trajectory_out_path};
use silvasec_crypto::aead::ChaCha20Poly1305;
use silvasec_crypto::chacha20::ChaCha20;
use silvasec_crypto::sha256;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with an allocation counter, so the
/// steady-state zero-allocation contract of `Session::seal_into` is
/// asserted by observation rather than by code review. Only
/// allocations are counted (`dealloc` is pass-through): the contract
/// is about acquiring memory in the hot loop.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Bulk buffer size for the keystream / AEAD / hash measurements. Large
/// enough that the 512-byte wide chunks dominate and per-call setup is
/// noise, small enough to stay in cache (this measures the cipher, not
/// the memory bus).
const BULK_LEN: usize = 16 * 1024;

/// Record payload for the session throughput headline — the order of a
/// telemetry batch or a detection report, the records the data plane
/// actually carries.
const RECORD_PAYLOAD_LEN: usize = 1024;

const AAD: &[u8] = b"data-plane-bench-aad";

/// Edge-heavy plaintext length schedule for the cross-check: empty,
/// single byte, around the Poly1305 16-byte boundary, around the
/// ChaCha20 64-byte boundary, around the 512-byte wide-chunk boundary,
/// and genuinely multi-chunk.
const CHECK_LENS: [usize; 15] = [
    0, 1, 15, 16, 17, 63, 64, 65, 255, 511, 512, 513, 1024, 4096, 9001,
];

/// Per-iteration nonce: every timed call keys a different stream so
/// nothing about the keystream is loop-invariant.
fn nonce_for(i: usize) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&(i as u64).to_le_bytes());
    nonce[8] = 0xD7;
    nonce
}

/// Deterministic payload bytes (xorshift64*), so every run times and
/// cross-checks the same inputs.
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes();
        let take = word.len().min(len - out.len());
        out.extend_from_slice(&word[..take]);
    }
    out
}

/// Times `f` over `iters` calls, best of three passes, returning
/// (seconds per call, ops per second).
fn time_best_of_3<T>(iters: usize, mut f: impl FnMut(usize) -> T) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for i in 0..iters {
            std::hint::black_box(f(i));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let per_call = best / iters as f64;
    (per_call, 1.0 / per_call.max(1e-12))
}

/// Times a fast/reference pair with per-iteration interleaving and
/// returns (fast ops/s, reference ops/s, speedup). Same discipline as
/// `crypto_bench`: the closures alternate call by call so each fast
/// call runs within microseconds of the reference call it is compared
/// against, the speedup is the median of per-round total-time ratios,
/// and throughputs are best-of-rounds.
fn time_pair<T, U>(
    iters: usize,
    mut fast: impl FnMut(usize) -> T,
    mut reference: impl FnMut(usize) -> U,
) -> (f64, f64, f64) {
    const ROUNDS: usize = 5;
    let mut best_fast = f64::INFINITY;
    let mut best_ref = f64::INFINITY;
    let mut ratios = [0.0f64; ROUNDS];
    for ratio in &mut ratios {
        let mut tf = 0.0f64;
        let mut tr = 0.0f64;
        for i in 0..iters {
            let t0 = Instant::now();
            std::hint::black_box(fast(i));
            tf += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            std::hint::black_box(reference(i));
            tr += t0.elapsed().as_secs_f64();
        }
        let tf = tf.max(1e-12);
        best_fast = best_fast.min(tf);
        best_ref = best_ref.min(tr);
        *ratio = tr / tf;
    }
    ratios.sort_by(f64::total_cmp);
    (
        iters as f64 / best_fast,
        iters as f64 / best_ref,
        ratios[ROUNDS / 2],
    )
}

#[derive(Debug, Serialize)]
struct RunEntry {
    /// Revision identifier (`SILVASEC_GIT_SHA`, `unknown` if unset).
    git_sha: String,
    /// Run timestamp (`SILVASEC_RUN_TS`, `unspecified` if unset).
    run_ts: String,
    /// Iterations per timed pair.
    iters: usize,
    /// SHA-256 over every cross-checked ciphertext — identical for two
    /// runs of the same code, so entries are comparable modulo the
    /// timing fields.
    check_digest: String,
    /// Multi-block keystream throughput, MiB/s.
    chacha20_wide_mib_per_s: f64,
    /// Frozen per-block keystream, MiB/s (same inputs, same run).
    chacha20_naive_mib_per_s: f64,
    /// Wide keystream speedup over naive.
    chacha20_keystream_speedup: f64,
    /// One-pass in-place AEAD seal throughput, MiB/s.
    aead_seal_mib_per_s: f64,
    /// Frozen two-pass allocating seal, MiB/s.
    aead_seal_naive_mib_per_s: f64,
    /// One-pass seal speedup over naive.
    aead_seal_speedup: f64,
    /// One-pass in-place AEAD open throughput, MiB/s.
    aead_open_mib_per_s: f64,
    /// Frozen tag-then-decrypt allocating open, MiB/s.
    aead_open_naive_mib_per_s: f64,
    /// One-pass open speedup over naive.
    aead_open_speedup: f64,
    /// Streaming SHA-256 bulk throughput, MiB/s.
    sha256_mib_per_s: f64,
    /// Established-session records sealed **and** opened per second
    /// (1 KiB payloads, reused buffers).
    session_records_per_s: f64,
    /// Session plaintext throughput implied by the record rate, MB/s.
    session_mb_per_s: f64,
    /// Heap allocations per `Session::seal_into` at steady state —
    /// asserted to be exactly zero.
    session_seal_allocs_per_record: f64,
}

/// Loads the existing trajectory file and returns its `runs` array.
/// Cross-checks every fast path against its frozen reference across the
/// edge-heavy length schedule and feeds every ciphertext into the
/// digest; panics on the first divergence (the proptests cover this too
/// — the bench refuses to time wrong code).
fn cross_check(cipher: &ChaCha20, aead: &ChaCha20Poly1305) -> String {
    let mut h = sha256::Sha256::new();
    for (i, &len) in CHECK_LENS.iter().enumerate() {
        let nonce = nonce_for(i);
        let pt = payload(0xDA7A ^ len as u64, len);

        // Keystream: wide path vs frozen per-block reference, at an
        // offset counter so partial leading chunks are exercised too.
        let mut fast = pt.clone();
        let mut naive = pt.clone();
        cipher.apply_keystream_inplace(&nonce, i as u32, &mut fast);
        cipher.apply_keystream_naive(&nonce, i as u32, &mut naive);
        assert_eq!(
            fast, naive,
            "wide keystream diverged from naive at len {len}"
        );

        // Seal: one-pass in-place vs frozen two-pass, byte-identical
        // records.
        let mut sealed = pt.clone();
        aead.seal_in_place(&nonce, AAD, &mut sealed);
        let sealed_naive = aead.seal_naive(&nonce, AAD, &pt);
        assert_eq!(
            sealed, sealed_naive,
            "seal_in_place diverged from seal_naive at len {len}"
        );

        // Open: both paths recover the plaintext from either record.
        let mut opened = sealed.clone();
        aead.open_in_place(&nonce, AAD, &mut opened)
            .expect("in-place open of a valid record");
        assert_eq!(opened, pt, "open_in_place wrong plaintext at len {len}");
        let opened_naive = aead
            .open_naive(&nonce, AAD, &sealed)
            .expect("naive open of a valid record");
        assert_eq!(opened_naive, pt, "open_naive wrong plaintext at len {len}");

        // Tamper-rejection parity: flip one ciphertext byte (or the tag
        // for empty plaintexts) and both paths must reject.
        let mut forged = sealed.clone();
        forged[len / 2] ^= 0x80;
        assert!(
            aead.open_naive(&nonce, AAD, &forged).is_err(),
            "open_naive accepted a forged record at len {len}"
        );
        let mut forged_in_place = forged.clone();
        assert!(
            aead.open_in_place(&nonce, AAD, &mut forged_in_place)
                .is_err(),
            "open_in_place accepted a forged record at len {len}"
        );
        assert!(
            forged_in_place.is_empty(),
            "open_in_place must clear the buffer on rejection"
        );

        h.update(&sealed);
    }
    let digest = h.finalize();
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// Counts heap allocations per `Session::seal_into` once the reused
/// buffer has reached steady-state capacity.
fn measure_seal_allocs() -> f64 {
    const RECORDS: u64 = 512;
    let (mut tx, mut rx) = session_pair(23);
    let pt = payload(0x5EA1, RECORD_PAYLOAD_LEN);
    let mut record = Vec::new();
    let mut opened = Vec::new();
    // Warm-up: the first seal grows `record` to its steady-state
    // capacity (and proves the pair actually works).
    tx.seal_into(&pt, &mut record).expect("warm-up seal");
    rx.open_into(&record, &mut opened).expect("warm-up open");
    assert_eq!(opened, pt);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..RECORDS {
        tx.seal_into(&pt, &mut record).expect("steady-state seal");
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    delta as f64 / RECORDS as f64
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 8 } else { 64 };

    let cipher = ChaCha20::new(&[0x42u8; 32]);
    let aead = ChaCha20Poly1305::new(&[0x42u8; 32]);

    eprintln!("data_plane_bench: cross-checking fast paths against the frozen references");
    let check_digest = cross_check(&cipher, &aead);
    let check_digest_again = cross_check(&cipher, &aead);
    assert_eq!(
        check_digest, check_digest_again,
        "cross-check digest must be deterministic within a run"
    );

    eprintln!("data_plane_bench: asserting the steady-state allocation contract");
    let session_seal_allocs_per_record = measure_seal_allocs();
    assert!(
        session_seal_allocs_per_record == 0.0,
        "Session::seal_into must not allocate at steady state \
         (measured {session_seal_allocs_per_record} allocations per record)"
    );

    let bulk = payload(0xB01D, BULK_LEN);
    let mib = BULK_LEN as f64 / (1024.0 * 1024.0);

    eprintln!("data_plane_bench: timing ChaCha20 keystream ({iters} iters, paired rounds)");
    let mut ks_fast = bulk.clone();
    let mut ks_naive = bulk.clone();
    let (ks_fast_per_s, ks_naive_per_s, ks_speedup) = time_pair(
        iters,
        |i| cipher.apply_keystream_inplace(&nonce_for(i), i as u32, &mut ks_fast),
        |i| cipher.apply_keystream_naive(&nonce_for(i), i as u32, &mut ks_naive),
    );

    eprintln!("data_plane_bench: timing AEAD seal (one-pass in-place vs two-pass)");
    let mut seal_buf: Vec<u8> = Vec::with_capacity(BULK_LEN + ChaCha20Poly1305::overhead());
    let (seal_fast_per_s, seal_naive_per_s, seal_speedup) = time_pair(
        iters,
        |i| {
            seal_buf.clear();
            seal_buf.extend_from_slice(&bulk);
            aead.seal_in_place(&nonce_for(i), AAD, &mut seal_buf);
            seal_buf.len()
        },
        |i| aead.seal_naive(&nonce_for(i), AAD, &bulk).len(),
    );

    eprintln!("data_plane_bench: timing AEAD open (one-pass in-place vs tag-then-decrypt)");
    let records: Vec<Vec<u8>> = (0..iters)
        .map(|i| aead.seal(&nonce_for(i), AAD, &bulk))
        .collect();
    let mut open_buf: Vec<u8> = Vec::with_capacity(records[0].len());
    let (open_fast_per_s, open_naive_per_s, open_speedup) = time_pair(
        iters,
        |i| {
            open_buf.clear();
            open_buf.extend_from_slice(&records[i]);
            aead.open_in_place(&nonce_for(i), AAD, &mut open_buf)
                .expect("open a valid record");
            open_buf.len()
        },
        |i| {
            aead.open_naive(&nonce_for(i), AAD, &records[i])
                .expect("naively open a valid record")
                .len()
        },
    );

    eprintln!("data_plane_bench: timing streaming SHA-256");
    let hash_iters = if smoke { 4 } else { 16 };
    let (sha_per_call, _) = time_best_of_3(hash_iters, |_| sha256::digest(&bulk));

    eprintln!("data_plane_bench: timing established-session record throughput");
    let (mut tx, mut rx) = session_pair(31);
    let record_pt = payload(0x7E1E, RECORD_PAYLOAD_LEN);
    let mut record = Vec::new();
    let mut opened = Vec::new();
    let session_iters = if smoke { 64 } else { 4096 };
    let (_, session_records_per_s) = time_best_of_3(session_iters, |_| {
        tx.seal_into(&record_pt, &mut record).expect("seal record");
        rx.open_into(&record, &mut opened).expect("open record");
        opened.len()
    });

    let (git_sha, run_ts) = run_keys();
    let entry = RunEntry {
        git_sha,
        run_ts,
        iters,
        check_digest,
        chacha20_wide_mib_per_s: ks_fast_per_s * mib,
        chacha20_naive_mib_per_s: ks_naive_per_s * mib,
        chacha20_keystream_speedup: ks_speedup,
        aead_seal_mib_per_s: seal_fast_per_s * mib,
        aead_seal_naive_mib_per_s: seal_naive_per_s * mib,
        aead_seal_speedup: seal_speedup,
        aead_open_mib_per_s: open_fast_per_s * mib,
        aead_open_naive_mib_per_s: open_naive_per_s * mib,
        aead_open_speedup: open_speedup,
        sha256_mib_per_s: mib / sha_per_call.max(1e-12),
        session_records_per_s,
        session_mb_per_s: session_records_per_s * RECORD_PAYLOAD_LEN as f64 / 1e6,
        session_seal_allocs_per_record,
    };

    println!(
        "{}",
        serde_json::to_string_pretty(&entry).expect("entry serializes")
    );

    if smoke {
        eprintln!("smoke mode: skipping speedup floors and trajectory append");
        return;
    }

    // Full-run acceptance floors: the fast paths must beat the frozen
    // references decisively, measured on the same inputs in this run.
    assert!(
        entry.chacha20_keystream_speedup >= 3.0,
        "wide keystream must be at least 3x naive (got {:.2}x)",
        entry.chacha20_keystream_speedup
    );
    assert!(
        entry.aead_seal_speedup >= 2.0,
        "one-pass seal must be at least 2x naive (got {:.2}x)",
        entry.aead_seal_speedup
    );

    let out_path = trajectory_out_path("SILVASEC_DATA_PLANE_OUT", "BENCH_data_plane.json");
    append_trajectory_run(&out_path, "silvasec-data-plane-trajectory/1", None, &entry);
}
