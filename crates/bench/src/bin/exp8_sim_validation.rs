//! **E8** — validation of the simulation toolchain (the paper's Sec. VI
//! future work): compare a candidate simulation's people-sensor
//! detection curve against a reference campaign, accepting only
//! candidates whose per-distance detection rates match within threshold.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp8_sim_validation`

use silvasec::machines::sensors::{PeopleSensor, SensorKind};
use silvasec::machines::validation::{measure_detection_curve, validate_curves, DetectionCurve};
use silvasec::prelude::*;
use silvasec::sim::terrain::TerrainConfig;
use silvasec::sim::vegetation::StandConfig;
use silvasec::sim::weather::Weather as W;

fn curve(seed: u64, weather: W, density: f64) -> DetectionCurve {
    let config = WorldConfig {
        terrain: TerrainConfig {
            size_m: 150.0,
            relief_m: 2.0,
            ..TerrainConfig::default()
        },
        stand: StandConfig {
            trees_per_hectare: density,
            ..StandConfig::default()
        },
        human_count: 6,
        human: silvasec::sim::humans::HumanConfig {
            work_area_bias: 0.8,
            ..silvasec::sim::humans::HumanConfig::default()
        },
        work_area: Vec2::new(75.0, 75.0),
        landing_area: Vec2::new(20.0, 20.0),
        initial_weather: weather,
        weather_change_prob: 0.0,
    };
    let mut world = World::generate(&config, SimRng::from_seed(seed));
    let sensor = PeopleSensor::new(SensorKind::Lidar, 3.0);
    let mut rng = SimRng::from_seed(seed ^ 0xabc);
    measure_detection_curve(
        &mut world,
        &sensor,
        Vec2::new(75.0, 75.0),
        SimDuration::from_secs(1800),
        &mut rng,
    )
}

fn main() {
    println!("E8 — simulation-toolchain validation (LiDAR people sensor)");
    println!("reference: 30 min clear-weather campaign at 150 trees/ha\n");
    let reference = curve(1, W::Clear, 150.0);
    println!(
        "reference curve: {} samples across {} bins",
        reference.total_samples(),
        reference.bins.len()
    );
    println!("\n{:>10} {:>12}", "bin (m)", "det. rate");
    for (i, bin) in reference.bins.iter().enumerate() {
        if bin.samples >= 30 {
            println!(
                "{:>7}-{:<3} {:>11.1}%",
                i * 5,
                (i + 1) * 5,
                bin.rate() * 100.0
            );
        }
    }

    println!("\ncandidates (threshold: max per-bin divergence ≤ 0.20):\n");
    println!(
        "{:<44} {:>9} {:>9} {:>9}",
        "candidate", "max div", "mean div", "verdict"
    );
    let candidates: [(&str, DetectionCurve); 4] = [
        (
            "faithful replica (different seed)",
            curve(2, W::Clear, 150.0),
        ),
        ("wrong weather model (fog)", curve(2, W::Fog, 150.0)),
        ("wrong stand density (900/ha)", curve(2, W::Clear, 900.0)),
        ("mild density error (250/ha)", curve(2, W::Clear, 250.0)),
    ];
    for (name, candidate) in candidates {
        let report = validate_curves(&reference, &candidate, 30, 0.2);
        println!(
            "{:<44} {:>9.3} {:>9.3} {:>9}",
            name,
            report.max_divergence,
            report.mean_divergence,
            if report.accepted { "ACCEPT" } else { "REJECT" }
        );
    }
    println!("\nshape to verify: a faithful candidate passes; a simulation with the");
    println!("wrong weather or occlusion model is rejected — the systematic component");
    println!("validation the paper's Sec. VI demands before trusting simulation-trained");
    println!("AI components.");
}
