//! Regenerates **Figure 2**: people-detection coverage and time-to-detect
//! with and without the collaborative drone, swept over terrain relief
//! (the paper's occlusion driver) and stand density.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin figure2`

use silvasec::experiments::occlusion_sweep;
use silvasec::sweep::par_sweep;
use silvasec_sim::time::SimDuration;

fn main() {
    let seeds = [5u64, 17, 29];
    let duration = SimDuration::from_secs(400);

    println!("FIGURE 2a — coverage vs terrain relief (300 trees/ha)\n");
    println!(
        "{:>10} {:>10} {:>10} {:>8} {:>11} {:>11}",
        "relief(m)", "fw", "fw+drone", "gain", "fw ttd(s)", "comb ttd(s)"
    );
    // The relief axis is itself a sweep: evaluate all relief levels on
    // the engine, then print in order.
    let reliefs = [0.5, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0];
    let relief_rows = par_sweep(&reliefs, |&relief| {
        occlusion_sweep(&[300.0], relief, &seeds, duration).swap_remove(0)
    });
    for (relief, r) in reliefs.iter().zip(&relief_rows) {
        println!(
            "{:>10.1} {:>9.1}% {:>9.1}% {:>7.1}% {:>11.2} {:>11.2}",
            relief,
            r.forwarder_coverage * 100.0,
            r.combined_coverage * 100.0,
            (r.combined_coverage - r.forwarder_coverage) * 100.0,
            r.forwarder_ttd_s,
            r.combined_ttd_s
        );
    }

    println!("\nFIGURE 2b — coverage vs stand density (relief 15 m)\n");
    // 2b is a single densities × seeds grid; `occlusion_sweep`
    // parallelizes it internally.
    println!(
        "{:>12} {:>10} {:>10} {:>8} {:>11} {:>11}",
        "trees/ha", "fw", "fw+drone", "gain", "fw ttd(s)", "comb ttd(s)"
    );
    let densities = [0.0, 100.0, 300.0, 600.0, 900.0, 1200.0, 1500.0];
    for r in occlusion_sweep(&densities, 15.0, &seeds, duration) {
        println!(
            "{:>12.0} {:>9.1}% {:>9.1}% {:>7.1}% {:>11.2} {:>11.2}",
            r.density,
            r.forwarder_coverage * 100.0,
            r.combined_coverage * 100.0,
            (r.combined_coverage - r.forwarder_coverage) * 100.0,
            r.forwarder_ttd_s,
            r.combined_ttd_s
        );
    }

    println!("\nshape to verify: the forwarder-only curve falls with relief while the");
    println!("combined curve stays high (the drone eliminates terrain occlusion); at");
    println!("extreme canopy density both degrade (canopy also attenuates the aerial");
    println!("view), which bounds where the collaborative function helps.");
}
