//! **E1** — the attack × defense matrix: detection rate, time-to-detect
//! and mission impact for every runtime attack class, with the IDS on
//! and off.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp1_attack_matrix`

use silvasec::experiments::{attack_matrix, AttackMatrixRow};
use silvasec::prelude::*;
use silvasec::sweep::par_sweep;
use silvasec_sim::time::SimDuration;

fn print_matrix(label: &str, rows: Vec<AttackMatrixRow>) {
    println!("--- {label} ---");
    println!(
        "{:<18} {:>9} {:>9} {:>13} {:>10} {:>8} {:>8}",
        "attack", "detected", "ttd (s)", "productivity", "delivery", "incid.", "forged"
    );
    for r in rows {
        println!(
            "{:<18} {:>9} {:>9} {:>12.0}% {:>9.1}% {:>8} {:>8}",
            r.attack,
            if r.detected { "yes" } else { "no" },
            r.time_to_detect_s.map_or("-".into(), |t| format!("{t:.1}")),
            r.productivity_ratio * 100.0,
            r.delivery_ratio * 100.0,
            r.safety_incidents,
            r.forged_accepted
        );
    }
    println!();
}

fn main() {
    println!("E1 — attack × defense matrix (300 s runs, attack t=60 s for 150 s)\n");
    // All three postures sweep in parallel (each posture already fans
    // its eight episodes out internally); printing stays in order.
    let postures = [
        (
            "full security posture (secure channel + MFP + IDS)",
            SecurityPosture::secure(),
        ),
        (
            "no IDS (channels still secured)",
            SecurityPosture {
                ids: false,
                ..SecurityPosture::secure()
            },
        ),
        ("undefended baseline", SecurityPosture::insecure()),
    ];
    let matrices = par_sweep(&postures, |(_, posture)| {
        attack_matrix(*posture, 3, SimDuration::from_secs(300))
    });
    for ((label, _), rows) in postures.iter().zip(matrices) {
        print_matrix(label, rows);
    }
    println!("shape to verify: with the IDS on, every attack class is detected with");
    println!("bounded delay; without it, nothing is detected; undefended runs accept");
    println!("forged traffic and suffer larger availability loss.");
    println!();
    println!("reading notes: 'productivity' is distance driven relative to the clean");
    println!("baseline — under GNSS spoofing without a response it can exceed 100%");
    println!("because the dragged machine drives *further yet off-course*; the secure");
    println!("posture's lower value there is the protective stop doing its job.");
}
