//! **E15: tick-loop hot path** — the machine-readable datapoints behind
//! `BENCH_tick.json`.
//!
//! Measures the steady-state worksite tick after the zero-alloc
//! perception + spatial-culling overhaul (`Worksite::tick`) against the
//! frozen pre-optimization tick body (`Worksite::tick_reference`), and
//! on every run proves the subsystem's contracts before timing is
//! reported:
//!
//! * **Optimized == reference** — full-episode fingerprints (metrics +
//!   security trace + flight trace) from the optimized tick are
//!   bit-identical to the frozen reference across postures and attack
//!   scenarios (quiet, jamming, replay);
//! * **Zero steady-state allocation** — after a warmup that sizes every
//!   ring, table and scratch buffer, a window of quiet secure ticks
//!   performs **no** heap allocation, asserted by a counting global
//!   allocator rather than by code review;
//! * **Speedup floor** — the optimized full run must simulate at least
//!   2.5× as many worksite-seconds per wall-second as the reference
//!   (interleaved median-of-rounds, full mode only).
//!
//! Run keys come from the environment, never from a wall clock inside
//! the simulation:
//!
//! * `SILVASEC_GIT_SHA` — revision identifier (falls back to
//!   `git rev-parse HEAD`, then `unknown`);
//! * `SILVASEC_RUN_TS` — timestamp string (default `unspecified`);
//! * `SILVASEC_TICK_OUT` — output path (default `BENCH_tick.json` at
//!   the workspace root).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp15_tick`
//! (pass `--smoke` for a CI-sized run: short rounds, contracts
//! asserted, no speedup floor, no trajectory append).

use serde::Serialize;
use silvasec::experiments::standard_config;
use silvasec::prelude::*;
use silvasec_bench::{append_trajectory_run, median, run_keys, trajectory_out_path};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with an allocation counter, so the
/// zero-allocation steady-tick contract is asserted by observation.
/// Only acquisitions are counted (`dealloc` is pass-through): the
/// contract is about *acquiring* memory in the steady-state loop.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Seed shared by every scenario in the run.
const SEED: u64 = 7;

/// Speedup floor for the optimized tick over the frozen reference
/// (full mode, largest point).
const SPEEDUP_FLOOR: f64 = 2.5;

fn jam_campaign() -> AttackCampaign {
    AttackCampaign {
        kind: AttackKind::RfJamming,
        target: AttackTarget::Area {
            center: Vec2::new(150.0, 150.0),
            radius_m: 300.0,
        },
        start: SimTime::from_secs(30),
        duration: SimDuration::from_secs(60),
        intensity: 1.0,
    }
}

fn replay_campaign() -> AttackCampaign {
    AttackCampaign {
        kind: AttackKind::Replay,
        target: AttackTarget::Network,
        start: SimTime::from_secs(30),
        duration: SimDuration::from_secs(60),
        intensity: 1.0,
    }
}

/// Scalar + trace fingerprint of a finished episode; byte-equal
/// fingerprints mean observably identical runs.
fn fingerprint(site: &Worksite) -> (u64, u64, u64, u64, String, String) {
    let m = site.metrics();
    (
        m.ticks,
        m.messages_delivered,
        m.distance_m.to_bits(),
        m.danger_zone_ticks,
        site.export_security_jsonl(),
        site.export_flight_jsonl(),
    )
}

/// Proves optimized == reference on every parity scenario; returns the
/// scenario labels for the trajectory entry.
fn prove_parity(parity_secs: u64) -> Vec<String> {
    let scenarios: [(&str, SecurityPosture, Option<AttackCampaign>); 4] = [
        ("secure/quiet", SecurityPosture::secure(), None),
        (
            "secure/jamming",
            SecurityPosture::secure(),
            Some(jam_campaign()),
        ),
        ("insecure/quiet", SecurityPosture::insecure(), None),
        (
            "insecure/replay",
            SecurityPosture::insecure(),
            Some(replay_campaign()),
        ),
    ];
    let mut labels = Vec::new();
    for (label, posture, campaign) in scenarios {
        let config = standard_config(posture);
        let mut optimized = Worksite::new(&config, SEED);
        let mut reference = Worksite::new(&config, SEED);
        if let Some(c) = campaign {
            optimized.attack_engine_mut().add_campaign(c.clone());
            reference.attack_engine_mut().add_campaign(c);
        }
        optimized.run(SimDuration::from_secs(parity_secs));
        reference.run_reference(SimDuration::from_secs(parity_secs));
        assert_eq!(
            fingerprint(&optimized),
            fingerprint(&reference),
            "optimized tick diverged from the frozen reference ({label})"
        );
        labels.push(label.to_string());
    }
    labels
}

/// Counts heap allocations across a window of quiet secure ticks after
/// a warmup run long enough for every long-lived buffer to reach
/// steady capacity. Returns `(window_ticks, total_allocations)`.
fn measure_steady_allocs(warm_secs: u64, window_ticks: u64) -> (u64, u64) {
    let config = standard_config(SecurityPosture::secure());
    let mut site = Worksite::new(&config, SEED);
    site.run(SimDuration::from_secs(warm_secs));
    let before = allocations();
    for _ in 0..window_ticks {
        site.tick();
    }
    (window_ticks, allocations() - before)
}

#[derive(Debug, Serialize)]
struct Entry {
    git_sha: String,
    run_ts: String,
    smoke: bool,
    seed: u64,
    /// Parity scenarios proved bit-identical before timing.
    parity_scenarios: Vec<String>,
    /// Simulated seconds per timing round.
    sim_secs: u64,
    /// Interleaved timing rounds per arm (medians reported).
    rounds: u32,
    /// Median wall-clock of the frozen reference loop, seconds.
    reference_wall_s: f64,
    /// Median wall-clock of the optimized loop, seconds.
    optimized_wall_s: f64,
    /// reference / optimized wall-clock.
    speedup: f64,
    /// Simulated seconds per wall-second, frozen reference loop.
    reference_sim_rate: f64,
    /// Simulated seconds per wall-second, optimized loop.
    worksite_sim_rate: f64,
    /// Quiet secure ticks in the allocation-counting window.
    alloc_window_ticks: u64,
    /// Total heap allocations observed in that window (must be 0).
    steady_tick_allocs: u64,
    /// The asserted speedup floor (full mode).
    speedup_floor: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    eprintln!("E15: tick-loop hot path (smoke={smoke})");

    // Contracts first — a fast wrong tick is worthless.
    let parity_secs = if smoke { 60 } else { 150 };
    let parity_scenarios = prove_parity(parity_secs);
    eprintln!(
        "  parity: optimized == reference on {parity_scenarios:?} ({parity_secs} sim-s each)"
    );

    // Zero-allocation contract: holds in every mode (it is a property
    // of the code, not of the machine's speed).
    let (warm_secs, window) = if smoke { (60, 128) } else { (120, 512) };
    let (alloc_window_ticks, steady_tick_allocs) = measure_steady_allocs(warm_secs, window);
    eprintln!(
        "  allocations: {steady_tick_allocs} across {alloc_window_ticks} warm quiet ticks \
         ({warm_secs} sim-s warmup)"
    );
    assert_eq!(
        steady_tick_allocs, 0,
        "steady-state tick must not allocate \
         ({steady_tick_allocs} allocations in {alloc_window_ticks} ticks)"
    );

    // Throughput: interleaved median-of-rounds, reference vs optimized,
    // fresh site per round so neither arm inherits the other's warmth.
    let (sim_secs, rounds) = if smoke { (20u64, 3u32) } else { (120, 5) };
    let config = standard_config(SecurityPosture::secure());
    let time = |reference: bool| {
        let mut site = Worksite::new(&config, SEED);
        let t0 = Instant::now();
        if reference {
            site.run_reference(SimDuration::from_secs(sim_secs));
        } else {
            site.run(SimDuration::from_secs(sim_secs));
        }
        t0.elapsed().as_secs_f64()
    };
    let _ = (time(true), time(false)); // untimed warm-up pair
    let mut reference_times = Vec::with_capacity(rounds as usize);
    let mut optimized_times = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        reference_times.push(time(true));
        optimized_times.push(time(false));
    }
    let reference_wall_s = median(&reference_times);
    let optimized_wall_s = median(&optimized_times);
    let speedup = reference_wall_s / optimized_wall_s.max(1e-9);
    let reference_sim_rate = sim_secs as f64 / reference_wall_s.max(1e-9);
    let worksite_sim_rate = sim_secs as f64 / optimized_wall_s.max(1e-9);
    eprintln!(
        "  throughput: reference {reference_sim_rate:.0} sim-s/s, optimized \
         {worksite_sim_rate:.0} sim-s/s, speedup {speedup:.2}x \
         (median of {rounds} interleaved rounds x {sim_secs} sim-s)"
    );

    if smoke {
        eprintln!("smoke mode: skipping speedup floor and trajectory append");
        return;
    }

    assert!(
        speedup >= SPEEDUP_FLOOR,
        "tick speedup floor violated: {speedup:.2}x < {SPEEDUP_FLOOR}x"
    );

    let (git_sha, run_ts) = run_keys();
    let entry = Entry {
        git_sha,
        run_ts,
        smoke,
        seed: SEED,
        parity_scenarios,
        sim_secs,
        rounds,
        reference_wall_s,
        optimized_wall_s,
        speedup,
        reference_sim_rate,
        worksite_sim_rate,
        alloc_window_ticks,
        steady_tick_allocs,
        speedup_floor: SPEEDUP_FLOOR,
    };
    let out_path = trajectory_out_path("SILVASEC_TICK_OUT", "BENCH_tick.json");
    append_trajectory_run(&out_path, "silvasec-tick-trajectory/1", None, &entry);
}
