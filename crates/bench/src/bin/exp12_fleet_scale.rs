//! **E12: million-site fleet control plane.**
//!
//! Sweeps the two-fidelity fleet (full [`Worksite`] subset + compact
//! shadow population, sharded across the deterministic sweep pool) from
//! 64 sites to one million, through a full security-operations cycle:
//! vulnerability disclosure, a fleet-wide deauth-flood campaign
//! correlated by the streaming SIEM, and a staged OTA rollout with one
//! Fiat–Shamir batched bundle verification per shard.
//!
//! Before any scale point runs, the binary proves the model honest:
//!
//! * **Decision equivalence** — at 64 sites the shadow-fidelity run
//!   yields the same correlated-campaign classes and the same risk
//!   trajectory as the all-full-fidelity reference;
//! * **Tamper/downgrade parity** — through the batched verify, a
//!   tampered or downgraded bundle is still rejected by every site;
//! * **Shard determinism** — parallel-sharded and sequential runs of
//!   the same seed produce byte-identical fleet traces, as do same-seed
//!   twins;
//! * **Legacy pinning** — the shadowless 64-site seed-11 trace still
//!   hashes to the SHA-256 recorded before the two-fidelity refactor.
//!
//! Each scale point is measured for throughput (sites/s wall) and peak
//! heap per site (a tracking allocator wraps `System`), and the largest
//! point must stay under a bytes/site ceiling — the memory claim is
//! asserted in-binary, not eyeballed. One entry is **appended** to
//! `BENCH_fleet_scale.json` (`silvasec-fleet-scale-trajectory/1`).
//!
//! Run keys come from the environment, never from a wall clock inside
//! the simulation:
//!
//! * `SILVASEC_GIT_SHA` — revision identifier (default `unknown`);
//! * `SILVASEC_RUN_TS` — timestamp string (default `unspecified`);
//! * `SILVASEC_FLEET_SCALE_OUT` — output path (default
//!   `BENCH_fleet_scale.json` at the workspace root).
//!
//! Run with:
//! `cargo run --release -p silvasec-bench --bin exp12_fleet_scale`
//! (pass `--smoke` for the CI-sized run capped at 16 384 sites,
//! `--sites-max N` / `--seed N` to override the sweep).
//!
//! [`Worksite`]: silvasec::sos::Worksite

use serde::Serialize;
use silvasec::crypto::sha256;
use silvasec::experiments::{
    fleet_config, fleet_decisions, fleet_scale_config, run_fleet_rollout, run_fleet_scale_point,
    run_fleet_scale_scenario, FleetScenario,
};
use silvasec::fleet::ShadowConfig;
use silvasec_bench::{append_trajectory_run, run_keys, trajectory_out_path};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// SHA-256 of the 64-site seed-11 clean fleet trace captured on the
/// shadowless code path before the two-fidelity refactor. The refactor
/// must not move a byte of it.
const LEGACY_TRACE_SHA256: &str =
    "44c52268bb2ce420363da9753b9d8c4c7514d2303770eaf19de7affc1557e450";

/// Peak heap per site the largest scale point must stay under. The
/// shadow struct-of-arrays costs ~50 B/site and the rollout wave index
/// ~8 B/site; the ceiling leaves headroom for allocator slack and the
/// transient alert burst while still falling four orders of magnitude
/// short of what a full `Worksite` per site would need.
const BYTES_PER_SITE_CEILING: f64 = 256.0;

/// Fleet sizes where the ceiling is asserted — below this the fixed
/// cost of the full-fidelity subset (four real worksites) dominates
/// the per-site arithmetic.
const CEILING_FLOOR_SITES: usize = 65_536;

const SCALE_SIZES: [usize; 5] = [64, 1_024, 16_384, 131_072, 1_048_576];
const SMOKE_MAX_SITES: usize = 16_384;
const DEFAULT_SEED: u64 = 11;

// --- Peak-tracking allocator -----------------------------------------
// Wraps `System` with a current/peak byte count so the bounded-memory
// claim is measured, not inferred from self-reported struct sizes.

struct PeakAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let ptr = System.realloc(ptr, layout, new_size);
        if !ptr.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let now = CURRENT.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        ptr
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Resets the peak to the current live byte count and returns that
/// baseline, so a following [`peak_since`] measures one region.
fn peak_baseline() -> usize {
    let now = CURRENT.load(Ordering::Relaxed);
    PEAK.store(now, Ordering::Relaxed);
    now
}

/// Peak bytes allocated above `baseline` since [`peak_baseline`].
fn peak_since(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

// ---------------------------------------------------------------------

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[derive(Debug, Serialize)]
struct ScaleRow {
    sites: usize,
    /// Wall-clock for the whole scenario (campaign + rollout), seconds.
    wall_s: f64,
    /// Site-updates applied per wall-clock second.
    sites_per_s: f64,
    /// Peak heap above the pre-run baseline, bytes.
    peak_bytes: u64,
    /// Peak heap per site.
    bytes_per_site: f64,
    /// Fleet-time rollout latency, milliseconds.
    latency_ms: u64,
    /// Fiat–Shamir batch verifications across all shards and waves.
    batch_verify_calls: u64,
    /// Shadow sites resolved from a shared per-shard batch verdict.
    batch_verified_sites: u64,
    /// Shadow sites verified individually (tampered bytes).
    individually_verified_sites: u64,
    /// Sites per batch verification — the amortization factor.
    amortization: f64,
    /// Coordinated campaigns the streaming SIEM correlated.
    siem_campaigns: usize,
    /// Alert observations dropped by the bounded SIEM windows
    /// (observable loss under the million-site alert burst).
    siem_window_drops: u64,
    /// Alert observations held across all SIEM windows at the end.
    siem_observations_held: usize,
}

#[derive(Debug, Serialize)]
struct RunEntry {
    git_sha: String,
    run_ts: String,
    seed: u64,
    smoke: bool,
    sizes: Vec<usize>,
    max_sites: usize,
    /// Shadow-vs-full decision equivalence held at 64 sites.
    equivalent_at_64: bool,
    /// Tampered and downgraded bundles rejected fleet-wide through the
    /// batched verify.
    tamper_parity: bool,
    /// Parallel-sharded trace byte-identical to the sequential run.
    deterministic_shards: bool,
    /// Same-seed twin traces byte-identical.
    deterministic_same_seed: bool,
    /// Shadowless 64-site seed-11 trace still matches the pinned hash.
    legacy_trace_pinned: bool,
    /// sites/s at the largest swept size — the throughput headline.
    sites_per_s_max_scale: f64,
    /// Peak bytes/site at the largest swept size — the memory headline.
    bytes_per_site_max_scale: f64,
    /// Batch-verify amortization factor at the largest swept size.
    amortization_max_scale: f64,
    rows: Vec<ScaleRow>,
}

/// Loads the existing trajectory file and returns its `runs` array.
fn parse_args() -> (usize, u64, bool) {
    let mut sites_max = *SCALE_SIZES.last().expect("non-empty");
    let mut seed = DEFAULT_SEED;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                smoke = true;
                sites_max = sites_max.min(SMOKE_MAX_SITES);
            }
            "--sites-max" => {
                let value = args.next().expect("--sites-max needs a value");
                sites_max = value.parse().expect("--sites-max must be an integer");
                assert!(sites_max >= 64, "--sites-max must be at least 64");
            }
            "--seed" => {
                let value = args.next().expect("--seed needs a value");
                seed = value.parse().expect("--seed must be an integer");
            }
            other => panic!("unknown argument: {other} (expected --smoke / --sites-max / --seed)"),
        }
    }
    (sites_max, seed, smoke)
}

fn main() {
    let (sites_max, seed, smoke) = parse_args();
    let sizes: Vec<usize> = SCALE_SIZES
        .iter()
        .copied()
        .filter(|&s| s <= sites_max)
        .collect();
    let sizes = if sizes.is_empty() {
        vec![sites_max]
    } else {
        sizes
    };
    let max_sites = *sizes.last().expect("non-empty");
    let small_shadow = ShadowConfig {
        full_sites: 4,
        shard_sites: 16,
        sequential: false,
    };

    // --- Phase 1: decision equivalence at the overlap scale ----------
    eprintln!("exp12: [1/4] shadow-vs-full decision equivalence at 64 sites (seed {seed})");
    let (full_report, full_fleet) = run_fleet_scale_scenario(fleet_config(64), seed);
    let shadow_cfg = {
        let mut c = fleet_config(64);
        c.shadow = Some(small_shadow);
        c
    };
    let (shadow_report, shadow_fleet) = run_fleet_scale_scenario(shadow_cfg, seed);
    assert_eq!(
        full_report.applied_sites, shadow_report.applied_sites,
        "both fidelities must apply the rollout fleet-wide"
    );
    let (full_campaigns, full_risk) = fleet_decisions(&full_fleet);
    let (shadow_campaigns, shadow_risk) = fleet_decisions(&shadow_fleet);
    assert_eq!(
        full_campaigns, shadow_campaigns,
        "shadow fidelity must correlate the same campaign classes in the same order"
    );
    assert_eq!(
        full_risk, shadow_risk,
        "shadow fidelity must walk the same risk trajectory"
    );
    assert!(
        !full_campaigns.is_empty(),
        "the equivalence scenario must actually correlate a campaign"
    );
    let equivalent_at_64 = true;

    // --- Phase 2: tamper/downgrade parity through the batched verify -
    eprintln!("exp12: [2/4] tamper/downgrade parity through the batched verify (4096 sites)");
    let (tampered, _) = run_fleet_scale_point(4_096, seed, FleetScenario::Tampered, false);
    assert_eq!(
        tampered.applied_sites, 0,
        "tampered bundle must never apply: {tampered:?}"
    );
    assert_eq!(
        tampered.rejected_sites, 4_096,
        "tampered bundle must be rejected on every site: {tampered:?}"
    );
    assert!(
        tampered.individually_verified_sites > 0,
        "tampered shadow sites must fall off the shared-verdict fast path: {tampered:?}"
    );
    let (downgrade, _) = run_fleet_scale_point(4_096, seed, FleetScenario::Downgrade, false);
    assert_eq!(
        downgrade.applied_sites, 0,
        "downgrade must never apply: {downgrade:?}"
    );
    assert_eq!(
        downgrade
            .reject_reasons
            .get("downgrade")
            .copied()
            .unwrap_or(0),
        4_096,
        "every site must reject the rollback as a downgrade: {downgrade:?}"
    );
    let tamper_parity = true;

    // --- Phase 3: shard determinism + legacy trace pinning -----------
    eprintln!("exp12: [3/4] shard determinism and legacy trace pinning");
    let (_, par_fleet) = run_fleet_scale_point(4_096, seed, FleetScenario::Clean, false);
    let (_, seq_fleet) = run_fleet_scale_point(4_096, seed, FleetScenario::Clean, true);
    let (_, twin_fleet) = run_fleet_scale_point(4_096, seed, FleetScenario::Clean, false);
    let par_trace = par_fleet.export_trace_jsonl();
    let deterministic_shards = par_trace == seq_fleet.export_trace_jsonl();
    assert!(
        deterministic_shards,
        "parallel-sharded trace must be byte-identical to the sequential reference"
    );
    let deterministic_same_seed = par_trace == twin_fleet.export_trace_jsonl();
    assert!(
        deterministic_same_seed,
        "same-seed twin traces diverged — determinism contract broken"
    );
    let (_, legacy_trace) = run_fleet_rollout(64, 11, FleetScenario::Clean);
    let legacy_sha = hex(&sha256::digest(legacy_trace.as_bytes()));
    let legacy_trace_pinned = legacy_sha == LEGACY_TRACE_SHA256;
    assert!(
        legacy_trace_pinned,
        "shadowless 64-site seed-11 trace moved: {legacy_sha} != {LEGACY_TRACE_SHA256}"
    );

    // --- Phase 4: the scale sweep ------------------------------------
    eprintln!(
        "exp12: [4/4] scale sweep {sizes:?} (campaign + rollout per point{})",
        if smoke { ", smoke" } else { "" }
    );
    let mut rows = Vec::new();
    for &sites in &sizes {
        let baseline = peak_baseline();
        let start = std::time::Instant::now();
        let (report, fleet) = run_fleet_scale_scenario(fleet_scale_config(sites, false), seed);
        let wall_s = start.elapsed().as_secs_f64();
        let peak = peak_since(baseline);
        assert!(
            report.completed,
            "clean scale rollout must complete at {sites} sites: {report:?}"
        );
        assert_eq!(
            report.applied_sites, sites as u32,
            "clean scale rollout must update every one of {sites} sites"
        );
        let snapshot = fleet.security_snapshot();
        assert!(
            !fleet.siem().campaigns().is_empty(),
            "the deauth campaign must correlate at {sites} sites"
        );
        let bytes_per_site = peak as f64 / sites as f64;
        if sites >= CEILING_FLOOR_SITES {
            assert!(
                bytes_per_site <= BYTES_PER_SITE_CEILING,
                "peak heap {bytes_per_site:.1} B/site at {sites} sites exceeds the \
                 {BYTES_PER_SITE_CEILING} B/site ceiling"
            );
        }
        let amortization =
            report.batch_verified_sites as f64 / report.batch_verify_calls.max(1) as f64;
        eprintln!(
            "  {sites:>9} sites: {wall_s:>7.2} s wall, {:>10.0} sites/s, \
             {bytes_per_site:>7.1} B/site peak, batch x{amortization:.0}, \
             {} SIEM drops",
            sites as f64 / wall_s.max(1e-9),
            snapshot.siem_window_drops
        );
        rows.push(ScaleRow {
            sites,
            wall_s,
            sites_per_s: sites as f64 / wall_s.max(1e-9),
            peak_bytes: peak as u64,
            bytes_per_site,
            latency_ms: report.latency_ms,
            batch_verify_calls: report.batch_verify_calls,
            batch_verified_sites: report.batch_verified_sites,
            individually_verified_sites: report.individually_verified_sites,
            amortization,
            siem_campaigns: snapshot.siem_campaigns,
            siem_window_drops: snapshot.siem_window_drops,
            siem_observations_held: snapshot.siem_observations_held,
        });
    }

    let last = rows.last().expect("non-empty");
    let (git_sha, run_ts) = run_keys();
    let entry = RunEntry {
        git_sha,
        run_ts,
        seed,
        smoke,
        sizes: sizes.clone(),
        max_sites,
        equivalent_at_64,
        tamper_parity,
        deterministic_shards,
        deterministic_same_seed,
        legacy_trace_pinned,
        sites_per_s_max_scale: last.sites_per_s,
        bytes_per_site_max_scale: last.bytes_per_site,
        amortization_max_scale: last.amortization,
        rows,
    };

    println!("--- E12: fleet-scale control plane (seed {seed}) ---");
    println!(
        "{:>9} {:>9} {:>12} {:>10} {:>8} {:>12}",
        "sites", "wall (s)", "sites/s", "B/site", "batch x", "SIEM drops"
    );
    for row in &entry.rows {
        println!(
            "{:>9} {:>9.2} {:>12.0} {:>10.1} {:>8.0} {:>12}",
            row.sites,
            row.wall_s,
            row.sites_per_s,
            row.bytes_per_site,
            row.amortization,
            row.siem_window_drops
        );
    }
    println!(
        "equivalence: decisions identical at 64 sites ({} campaigns, {} risk transitions)",
        full_campaigns.len(),
        full_risk.len()
    );
    println!("tamper parity: 4096/4096 rejected through the batched verify");
    println!("determinism: parallel == sequential == same-seed twin, legacy trace pinned");

    let out_path = trajectory_out_path("SILVASEC_FLEET_SCALE_OUT", "BENCH_fleet_scale.json");
    append_trajectory_run(&out_path, "silvasec-fleet-scale-trajectory/1", None, &entry);
}
