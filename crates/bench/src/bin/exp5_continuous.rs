//! **E5** — continuous vs static risk assessment: the latency from
//! attack onset through IDS detection to risk escalation and
//! assurance-case invalidation. The reaction chain is driven entirely by
//! the flight recorder's security trace, so the run closes with the
//! recorder's own overhead figures.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp5_continuous`

use silvasec::experiments::continuous_latency;
use silvasec::prelude::*;
use silvasec_bench::measure_recorder_overhead;

fn main() {
    println!("E5 — continuous assessment reaction chain (attack onset at t=60 s)\n");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "attack", "onset (s)", "alert (s)", "risk before", "risk after", "goals in doubt"
    );
    for kind in [
        AttackKind::RfJamming,
        AttackKind::DeauthFlood,
        AttackKind::GnssSpoofing,
        AttackKind::GnssJamming,
        AttackKind::CameraBlinding,
    ] {
        let row = continuous_latency(kind, 11);
        println!(
            "{:<18} {:>10.0} {:>12} {:>12} {:>12} {:>14}",
            row.attack,
            row.onset_s,
            row.alert_s
                .map_or("undetected".into(), |t| format!("{t:.1}")),
            row.risk_before,
            row.risk_after,
            row.goals_in_doubt
        );
    }
    println!("\nthe static assessment would keep the pre-attack risk values forever;");
    println!("the continuous layer escalates within one detection latency of onset and");
    println!("immediately marks the affected assurance claims as in doubt.");

    let oh = measure_recorder_overhead(11, 300, 3);
    println!("\nflight-recorder cost of driving that chain (300 s secure episode):");
    println!(
        "  {} events recorded ({:.0} events/s, {:.1} bytes/event JSONL)",
        oh.events, oh.events_per_s, oh.bytes_per_event
    );
    println!(
        "  wall-time overhead {:.1}% (raw {:+.1}%, noise floor ±{:.1}%; \
         median of {} interleaved rounds), ring drop rate {:.2}%",
        oh.overhead_frac * 100.0,
        oh.raw_overhead_frac * 100.0,
        oh.noise_floor_frac * 100.0,
        oh.rounds,
        oh.drop_rate * 100.0
    );
}
