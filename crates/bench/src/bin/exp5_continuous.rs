//! **E5** — continuous vs static risk assessment: the latency from
//! attack onset through IDS detection to risk escalation and
//! assurance-case invalidation.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp5_continuous`

use silvasec::experiments::continuous_latency;
use silvasec::prelude::*;

fn main() {
    println!("E5 — continuous assessment reaction chain (attack onset at t=60 s)\n");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "attack", "onset (s)", "alert (s)", "risk before", "risk after", "goals in doubt"
    );
    for kind in [
        AttackKind::RfJamming,
        AttackKind::DeauthFlood,
        AttackKind::GnssSpoofing,
        AttackKind::GnssJamming,
        AttackKind::CameraBlinding,
    ] {
        let row = continuous_latency(kind, 11);
        println!(
            "{:<18} {:>10.0} {:>12} {:>12} {:>12} {:>14}",
            row.attack,
            row.onset_s,
            row.alert_s
                .map_or("undetected".into(), |t| format!("{t:.1}")),
            row.risk_before,
            row.risk_after,
            row.goals_in_doubt
        );
    }
    println!("\nthe static assessment would keep the pre-attack risk values forever;");
    println!("the continuous layer escalates within one detection latency of onset and");
    println!("immediately marks the affected assurance claims as in doubt.");
}
