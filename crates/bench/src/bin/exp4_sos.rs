//! **E4** — system-of-systems assurance scaling: model size and
//! re-validation cost, modular vs monolithic, as constituents grow.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp4_sos`

use silvasec::experiments::build_sos_composition;
use silvasec::sweep::par_sweep;
use std::time::Instant;

fn time_it<T>(f: impl Fn() -> T, iterations: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iterations {
        let _ = f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iterations)
}

fn main() {
    println!("E4 — SoS assurance scaling (10 goals per constituent module)\n");
    println!(
        "{:>12} {:>12} {:>18} {:>18} {:>9}",
        "constituents", "total nodes", "monolithic (µs)", "modular (µs)", "speedup"
    );
    // Compositions build in parallel; the timed re-validation loops stay
    // sequential so concurrent load cannot skew the measurements.
    let sizes = [1usize, 2, 4, 8, 16, 32, 64];
    let compositions = par_sweep(&sizes, |&n| build_sos_composition(n, 10));
    for (&n, comp) in sizes.iter().zip(&compositions) {
        let iterations = if n <= 8 { 200 } else { 50 };
        let mono = time_it(|| comp.check_all(), iterations);
        let modular = time_it(|| comp.check_incremental("constituent-0"), iterations);
        println!(
            "{:>12} {:>12} {:>18.1} {:>18.1} {:>8.1}x",
            n,
            comp.total_nodes(),
            mono,
            modular,
            mono / modular.max(1e-9)
        );
    }
    println!("\nshape to verify: monolithic re-validation grows linearly with the number");
    println!("of constituents while the modular re-check of one changed module grows");
    println!("only with the contract count — the paper's modular-assurance argument.");
}
