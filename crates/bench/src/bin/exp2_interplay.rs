//! **E2** — the safety–security interplay, measured: how much does a
//! security compromise raise the live hazard exposure (machine moving
//! with a worker inside the danger zone), and does the security response
//! contain it?
//!
//! The scenario is deliberately encounter-rich: six workers biased hard
//! towards the machine's work area over a 900 s shift.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp2_interplay`

use silvasec::experiments::{campaign_for, standard_config};
use silvasec::prelude::*;
use silvasec::risk::catalog;

struct Row {
    danger: f64,
    moving_danger: f64,
    incidents: f64,
    sec_stops: f64,
    stopped: f64,
}

fn run(posture: SecurityPosture, attack: Option<AttackKind>, seeds: &[u64]) -> Row {
    let mut acc = Row {
        danger: 0.0,
        moving_danger: 0.0,
        incidents: 0.0,
        sec_stops: 0.0,
        stopped: 0.0,
    };
    for &seed in seeds {
        let mut config = standard_config(posture);
        config.world.human_count = 6;
        config.world.human.work_area_bias = 0.85;
        let mut site = Worksite::new(&config, seed);
        if let Some(kind) = attack {
            site.attack_engine_mut().add_campaign(campaign_for(
                kind,
                SimTime::from_secs(120),
                SimDuration::from_secs(600),
            ));
        }
        site.run(SimDuration::from_secs(900));
        let m = site.metrics();
        acc.danger += m.danger_zone_ticks as f64;
        acc.moving_danger += m.moving_danger_ticks as f64;
        acc.incidents += m.safety_incidents.len() as f64;
        acc.sec_stops += m.security_stops as f64;
        acc.stopped += m.stopped_ticks as f64;
    }
    let n = seeds.len() as f64;
    Row {
        danger: acc.danger / n,
        moving_danger: acc.moving_danger / n,
        incidents: acc.incidents / n,
        sec_stops: acc.sec_stops / n,
        stopped: acc.stopped / n,
    }
}

fn main() {
    println!("E2 — measured safety–security interplay");
    println!("(900 s shifts, 6 workers biased to the work area, attack t=120..720 s,");
    println!(" 3 seeds averaged; 'moving danger' = ticks a worker was inside the");
    println!(" danger radius while the machine moved — the live exposure measure)\n");
    println!(
        "{:<34} {:>8} {:>14} {:>10} {:>10} {:>9}",
        "scenario", "danger", "moving danger", "incidents", "sec.stops", "stopped"
    );
    let seeds = [3u64, 13, 23];
    let attacks = [
        None,
        Some(AttackKind::CameraBlinding),
        Some(AttackKind::GnssSpoofing),
        Some(AttackKind::DeauthFlood),
        Some(AttackKind::RfJamming),
    ];
    for (posture_name, posture) in [
        ("secure", SecurityPosture::secure()),
        ("insecure", SecurityPosture::insecure()),
    ] {
        for attack in attacks {
            let label = format!(
                "{posture_name} / {}",
                attack.map_or("no attack".to_string(), |a| a.to_string())
            );
            let r = run(posture, attack, &seeds);
            println!(
                "{:<34} {:>8.1} {:>14.1} {:>10.1} {:>10.1} {:>9.1}",
                label, r.danger, r.moving_danger, r.incidents, r.sec_stops, r.stopped
            );
        }
    }

    println!("\nmodelled counterpart (the risk engine's interplay findings):");
    let report = Tara::assess(&catalog::worksite_model());
    for f in &report.interplay_findings {
        println!(
            "  {} → {}: {} → {}{}",
            f.threat_id,
            f.hazard_id,
            f.baseline_pl,
            f.compromised_pl,
            if f.safety_function_defeated {
                "  [defeats safety function]"
            } else {
                ""
            }
        );
    }
    println!("\nshape to verify: attacks that defeat or bypass detection raise the");
    println!("'moving danger' exposure on the insecure worksite; the secure posture");
    println!("converts that exposure into protective stops (higher stopped ticks,");
    println!("lower moving-danger) — the interplay the methodology predicts.");
}
