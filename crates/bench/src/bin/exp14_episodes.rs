//! **E14: episode throughput** — the machine-readable datapoints behind
//! `BENCH_episodes.json`.
//!
//! Sweeps 10 → 10k worksite episodes through the pooled episode engine
//! (`EpisodeRunner` over `Worksite::reset_for_episode` + the amortized
//! `SitePkiTemplate`) against the frozen naive oracle
//! (`run_episode_naive`, full rebuild per episode), and on every point
//! proves the subsystem's contracts before timing is reported:
//!
//! * **Pooled == naive** — outcome rows (metrics + security-trace
//!   digest) from the pooled path are bit-identical to the naive
//!   oracle's;
//! * **Parallel == sequential** — `EpisodeRunner` outcomes agree across
//!   worker counts with the single-worksite sequential loop;
//! * **Zero steady-state allocation** — after a one-episode warmup, the
//!   per-episode reset window (`reset_for_episode` + campaign arming)
//!   performs **no** heap allocation, asserted by a counting global
//!   allocator rather than by code review.
//!
//! Episodes use a deliberately small worksite and a short horizon so
//! that *setup* (worldgen + PKI commissioning + handshakes) dominates
//! the naive path — that is the overhead the overhaul amortizes, and
//! the speedup floor (≥ 5×) is asserted on exactly that regime.
//!
//! Run keys come from the environment, never from a wall clock inside
//! the simulation:
//!
//! * `SILVASEC_GIT_SHA` — revision identifier (default `unknown`);
//! * `SILVASEC_RUN_TS` — timestamp string (default `unspecified`);
//! * `SILVASEC_EPISODES_OUT` — output path (default
//!   `BENCH_episodes.json` at the workspace root).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin
//! exp14_episodes` (pass `--smoke` for a CI-sized run: 10/100-episode
//! points, contracts asserted, no speedup floor, no trajectory append).

use serde::Serialize;
use silvasec::experiments::{
    run_episode_naive, run_episode_pooled, EpisodeOutcome, EpisodeRunner, EpisodeSpec,
};
use silvasec::prelude::*;
use silvasec_attacks::AttackKind;
use silvasec_bench::{append_trajectory_run, run_keys, trajectory_out_path};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with an allocation counter, so the
/// zero-allocation episode-reset contract is asserted by observation.
/// Only acquisitions are counted (`dealloc` is pass-through): the
/// contract is about *acquiring* memory in the steady-state loop.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Episode batch sizes (log sweep, 10^1 → 10^4).
const SIZES: [usize; 4] = [10, 100, 1_000, 10_000];
const SMOKE_SIZES: [usize; 2] = [10, 100];

/// One scenario seed shared by the whole sweep: the PKI template is
/// commissioned once and every reset replays it.
const SEED: u64 = 11;

/// Naive-oracle episode cap per point: the naive path exists to be
/// measured against, not to burn minutes rebuilding PKI 10k times.
const NAIVE_CAP: usize = 64;

/// Episode length: short enough that setup dominates the naive path —
/// the regime the amortization targets (generative scenario sweeps run
/// huge numbers of short probing episodes).
const EPISODE_SECS: u64 = 2;

/// The attack classes rotated across the sweep. All three use
/// allocation-free campaign targets (area / link / network — no label
/// strings), so arming stays inside the zero-alloc reset window.
const ATTACKS: [Option<AttackKind>; 4] = [
    None,
    Some(AttackKind::RfJamming),
    Some(AttackKind::DeauthFlood),
    Some(AttackKind::Replay),
];

fn specs(n: usize) -> Vec<EpisodeSpec> {
    (0..n)
        .map(|i| {
            EpisodeSpec::compact(
                SecurityPosture::secure(),
                ATTACKS[i % ATTACKS.len()],
                SEED,
                SimDuration::from_secs(EPISODE_SECS),
            )
        })
        .collect()
}

#[derive(Debug, Serialize)]
struct EpisodeRow {
    /// Episodes in this batch.
    episodes: usize,
    /// Wall-clock of the pooled sequential run, seconds.
    pooled_wall_s: f64,
    /// Pooled episodes per wall-clock second.
    pooled_eps_per_s: f64,
    /// Naive-oracle episodes measured (capped).
    naive_episodes: usize,
    /// Wall-clock of the naive run, seconds.
    naive_wall_s: f64,
    /// Naive episodes per wall-clock second.
    naive_eps_per_s: f64,
    /// Pooled-over-naive episode throughput ratio.
    speedup: f64,
    /// Mean reset-window time per episode, microseconds.
    setup_us_per_episode: f64,
    /// Heap allocations per episode in the steady-state reset window
    /// (after a one-episode warmup).
    steady_reset_allocs: u64,
}

#[derive(Debug, Serialize)]
struct Entry {
    git_sha: String,
    run_ts: String,
    smoke: bool,
    seed: u64,
    episode_secs: u64,
    rows: Vec<EpisodeRow>,
}

/// Proves pooled == naive and parallel == sequential on one batch,
/// then returns the sequential reference outcomes.
fn prove_contracts(batch: &[EpisodeSpec]) -> Vec<EpisodeOutcome> {
    let reference = EpisodeRunner::with_workers(1).run(batch);

    let naive_n = batch.len().min(NAIVE_CAP);
    let naive: Vec<EpisodeOutcome> = batch[..naive_n].iter().map(run_episode_naive).collect();
    assert_eq!(
        naive,
        reference[..naive_n],
        "pooled episodes diverged from the naive oracle"
    );

    for workers in [2usize, 4] {
        let par = EpisodeRunner::with_workers(workers).run(batch);
        assert_eq!(
            par, reference,
            "parallel ({workers} workers) diverged from sequential"
        );
    }
    reference
}

/// Measures the steady-state reset window: total heap allocations
/// inside `reset_for_episode` + campaign arming across the batch,
/// after warmup episodes that size every long-lived buffer.
fn measure_reset_window(batch: &[EpisodeSpec]) -> u64 {
    let mut slot: Option<Worksite> = None;
    // Warmup covers every attack class in the rotation so campaign
    // storage reaches steady capacity before counting starts.
    let warmup = ATTACKS.len().min(batch.len());
    for spec in batch.iter().take(warmup) {
        let _ = run_episode_pooled(&mut slot, spec);
    }
    let site = slot.as_mut().expect("warmup populated the pool slot");

    let mut allocs_total = 0u64;
    for spec in batch.iter().skip(warmup) {
        let before = allocations();
        site.reset_for_episode(&spec.config, spec.seed);
        spec.arm(site);
        allocs_total += allocations() - before;
        site.run(spec.duration);
    }
    allocs_total
}

/// Times the reset window alone (no run phase), microseconds/episode.
fn time_reset_window(spec: &EpisodeSpec, iters: usize) -> f64 {
    let mut slot: Option<Worksite> = None;
    let _ = run_episode_pooled(&mut slot, spec);
    let site = slot.as_mut().expect("pool slot");
    let t0 = Instant::now();
    for _ in 0..iters {
        site.reset_for_episode(&spec.config, spec.seed);
    }
    t0.elapsed().as_secs_f64() / iters.max(1) as f64 * 1e6
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &SMOKE_SIZES } else { &SIZES };

    eprintln!("E14: episode throughput (smoke={smoke})");
    let mut rows = Vec::new();
    for &n in sizes {
        let batch = specs(n);

        // Contracts first — a fast wrong sweep is worthless.
        let _reference = prove_contracts(&batch[..n.min(200)]);

        // Steady-state allocation accounting on a contract-proved batch.
        let steady_reset_allocs = measure_reset_window(&batch[..n.min(50)]);

        // Throughput: pooled sequential over the full batch...
        let t0 = Instant::now();
        let pooled = EpisodeRunner::with_workers(1).run(&batch);
        let pooled_wall_s = t0.elapsed().as_secs_f64();
        assert_eq!(pooled.len(), n);

        // ...versus the frozen naive oracle (capped).
        let naive_n = n.min(NAIVE_CAP);
        let t0 = Instant::now();
        let naive: Vec<EpisodeOutcome> = batch[..naive_n].iter().map(run_episode_naive).collect();
        let naive_wall_s = t0.elapsed().as_secs_f64();
        assert_eq!(naive, pooled[..naive_n]);

        let pooled_eps_per_s = n as f64 / pooled_wall_s.max(1e-9);
        let naive_eps_per_s = naive_n as f64 / naive_wall_s.max(1e-9);
        let speedup = pooled_eps_per_s / naive_eps_per_s.max(1e-9);
        let setup_us = time_reset_window(&batch[0], if smoke { 32 } else { 256 });

        eprintln!(
            "  {n:>6} episodes: pooled {pooled_eps_per_s:>8.1}/s, naive {naive_eps_per_s:>7.1}/s \
             ({naive_n} measured), speedup {speedup:>5.2}x, reset {setup_us:>7.1} us, \
             steady allocs/reset {steady_reset_allocs}"
        );

        rows.push(EpisodeRow {
            episodes: n,
            pooled_wall_s,
            pooled_eps_per_s,
            naive_episodes: naive_n,
            naive_wall_s,
            naive_eps_per_s,
            speedup,
            setup_us_per_episode: setup_us,
            steady_reset_allocs,
        });
    }

    // Zero-allocation contract: holds in every mode (it is a property
    // of the code, not of the machine's speed).
    for row in &rows {
        assert_eq!(
            row.steady_reset_allocs, 0,
            "steady-state episode reset must not allocate ({} allocs at n={})",
            row.steady_reset_allocs, row.episodes
        );
    }

    if smoke {
        eprintln!("smoke mode: skipping speedup floor and trajectory append");
        return;
    }

    // Speedup floor on the largest batch: the amortized path must beat
    // the rebuild path by at least 5x in the setup-dominated regime.
    let last = rows.last().expect("at least one row");
    assert!(
        last.speedup >= 5.0,
        "episode speedup floor violated: {:.2}x < 5x",
        last.speedup
    );

    let (git_sha, run_ts) = run_keys();
    let entry = Entry {
        git_sha,
        run_ts,
        smoke,
        seed: SEED,
        episode_secs: EPISODE_SECS,
        rows,
    };
    let out_path = trajectory_out_path("SILVASEC_EPISODES_OUT", "BENCH_episodes.json");
    append_trajectory_run(&out_path, "silvasec-episode-trajectory/1", None, &entry);
}
