//! **Performance snapshot** — the machine-readable datapoints behind the
//! `BENCH_*.json` trajectory.
//!
//! Runs the reference Figure 2 occlusion sweep (8 densities × 4 seeds)
//! once sequentially and once on the parallel sweep engine, plus one
//! standard worksite episode and a flight-recorder overhead comparison
//! (instrumented vs disabled), then **appends** one run entry to
//! `BENCH_perf_snapshot.json` so successive revisions accumulate into a
//! perf trajectory instead of overwriting each other. The sequential and
//! parallel sweeps are compared field for field — the engine's
//! determinism contract (bit-identical results) is asserted on every run.
//!
//! Run keys come from the environment, never from a wall clock inside
//! the simulation:
//!
//! * `SILVASEC_GIT_SHA` — revision identifier (default `unknown`);
//! * `SILVASEC_RUN_TS` — timestamp string (default `unspecified`);
//! * `SILVASEC_PERF_OUT` — output path (default
//!   `BENCH_perf_snapshot.json` at the workspace root).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin perf_snapshot`

use serde::Serialize;
use silvasec::crypto::schnorr::{self, BatchItem, SigningKey};
use silvasec::experiments::{
    occlusion_point, occlusion_sweep, run_episode_pooled, run_fleet_scale_point, run_ops_load,
    run_worksite, standard_config, EpisodeRunner, EpisodeSpec, FleetScenario, OcclusionRow,
};
use silvasec::prelude::*;
use silvasec::sweep::{par_sweep_with_stats, worker_count};
use silvasec_bench::{
    append_trajectory_run, measure_recorder_overhead, median, run_keys, session_pair,
    trajectory_out_path, RecorderOverhead,
};
use silvasec_sim::time::SimDuration;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with an allocation counter, so the episode
/// headline can report steady-state reset allocations by observation
/// (same hook as `data_plane_bench` and `exp14_episodes`).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Reference sweep: 8 densities × 4 seeds at 15 m relief.
const DENSITIES: [f64; 8] = [0.0, 100.0, 300.0, 500.0, 700.0, 900.0, 1200.0, 1500.0];
const SEEDS: [u64; 4] = [5, 17, 29, 43];
const RELIEF_M: f64 = 15.0;
const POINT_SECS: u64 = 200;

#[derive(Debug, Serialize)]
struct RunEntry {
    /// Revision identifier (`SILVASEC_GIT_SHA`, `unknown` if unset).
    git_sha: String,
    /// Run timestamp (`SILVASEC_RUN_TS`, `unspecified` if unset).
    run_ts: String,
    /// Worker threads the parallel sweep used (hardware-dependent).
    workers: usize,
    /// Hardware threads the host reported (`available_parallelism`).
    /// Readers of the trajectory need this to interpret `speedup`: a
    /// `workers: 1` entry from a single-core container is not a
    /// regression, it is the host.
    detected_cores: usize,
    /// Grid size of the reference sweep.
    sweep_points: usize,
    /// Sequential wall-clock for the reference sweep, seconds.
    sequential_wall_s: f64,
    /// Parallel wall-clock for the reference sweep, seconds.
    parallel_wall_s: f64,
    /// sequential / parallel.
    speedup: f64,
    /// Sweep points per second, sequential.
    sequential_points_per_s: f64,
    /// Sweep points per second, parallel.
    parallel_points_per_s: f64,
    /// Whether the parallel rows matched the sequential rows bit for bit.
    deterministic: bool,
    /// Wall-clock of one standard 300 s worksite episode, seconds.
    worksite_episode_wall_s: f64,
    /// Simulated seconds per wall-clock second for that episode.
    worksite_sim_rate: f64,
    /// Flight-recorder overhead (instrumented vs disabled episode).
    telemetry: RecorderOverhead,
    /// Steady-state tick hot-path headline (optimized vs frozen
    /// reference tick — see `exp15_tick` / `BENCH_tick.json` for the
    /// full suite with the zero-alloc assertion and speedup floor).
    tick: TickHeadline,
    /// Crypto hot-path headline numbers (fast paths only — see
    /// `crypto_bench` for the full suite with frozen naive baselines,
    /// cross-check digests, and acceptance floors).
    crypto: CryptoHeadline,
    /// Secure-session data-plane headline (fast paths only — see
    /// `data_plane_bench` for the full suite with frozen naive
    /// baselines, cross-check digests, and acceptance floors).
    session: SessionHeadline,
    /// Fleet-scale control-plane headline (one mid-size two-fidelity
    /// rollout — see `exp12_fleet_scale` / `BENCH_fleet_scale.json` for
    /// the full 64 → 1M sweep with the equivalence proofs and the peak
    /// bytes/site ceiling).
    fleet_scale: FleetScaleHeadline,
    /// Incident-response ops headline (one 1k-incident synthetic load —
    /// see `exp13_ops` / `BENCH_ops.json` for the full 10 → 10k sweep
    /// with the determinism, replay and accounting proofs).
    ops: OpsHeadline,
    /// Generative TARA headline (one 10⁵-scenario enumeration — see
    /// `exp11_tara` / `BENCH_tara.json` for the full 10² → 10⁶ sweep
    /// with the determinism, dedup and oracle proofs).
    tara: TaraHeadline,
    /// Pooled episode-engine headline (one mid-size batch — see
    /// `exp14_episodes` / `BENCH_episodes.json` for the full 10 → 10k
    /// sweep with the oracle, parallel and zero-alloc proofs).
    episodes: EpisodeHeadline,
}

/// Steady-state tick hot path: the optimized [`Worksite::tick`] vs the
/// frozen pre-optimization [`Worksite::tick_reference`] on the standard
/// secure episode, timed as interleaved median-of-rounds, plus the
/// observed heap allocations per warm steady-state tick.
#[derive(Debug, Serialize)]
struct TickHeadline {
    /// Simulated seconds per timing round.
    sim_secs: u64,
    /// Interleaved rounds per arm (medians reported).
    rounds: u32,
    /// Median wall-clock of the frozen reference tick loop, seconds.
    reference_wall_s: f64,
    /// Median wall-clock of the optimized tick loop, seconds.
    optimized_wall_s: f64,
    /// reference / optimized.
    speedup: f64,
    /// Simulated seconds per wall-clock second, optimized loop.
    worksite_sim_rate: f64,
    /// Heap allocations per tick over a warm steady-state window
    /// (0 on the quiet secure episode; asserted hard by `exp15_tick`).
    steady_tick_allocs: u64,
}

fn tick_headline() -> TickHeadline {
    const SIM_SECS: u64 = 120;
    const ROUNDS: usize = 3;
    let config = standard_config(SecurityPosture::secure());
    let time = |reference: bool| {
        let mut site = Worksite::new(&config, 7);
        let t0 = Instant::now();
        if reference {
            site.run_reference(SimDuration::from_secs(SIM_SECS));
        } else {
            site.run(SimDuration::from_secs(SIM_SECS));
        }
        t0.elapsed().as_secs_f64()
    };
    let _ = (time(true), time(false)); // untimed warm-up pair
    let mut reference_times = Vec::with_capacity(ROUNDS);
    let mut optimized_times = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        reference_times.push(time(true));
        optimized_times.push(time(false));
    }
    let reference_wall_s = median(&reference_times);
    let optimized_wall_s = median(&optimized_times);

    // Zero-alloc witness: run the site long enough for every ring,
    // table and scratch buffer to reach steady state, then count heap
    // allocations across a window of quiet ticks.
    let mut site = Worksite::new(&config, 7);
    site.run(SimDuration::from_secs(SIM_SECS));
    const WINDOW: u64 = 256;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..WINDOW {
        site.tick();
    }
    let steady_tick_allocs = (ALLOCATIONS.load(Ordering::Relaxed) - before) / WINDOW;

    TickHeadline {
        sim_secs: SIM_SECS,
        rounds: ROUNDS as u32,
        reference_wall_s,
        optimized_wall_s,
        speedup: reference_wall_s / optimized_wall_s.max(1e-9),
        worksite_sim_rate: SIM_SECS as f64 / optimized_wall_s.max(1e-9),
        steady_tick_allocs,
    }
}

/// Pooled episode-engine throughput at one mid-size batch.
#[derive(Debug, Serialize)]
struct EpisodeHeadline {
    /// Episodes in the measured batch.
    episodes: usize,
    /// Pooled episodes per wall-clock second.
    episodes_per_s: f64,
    /// Mean `reset_for_episode` wall time, microseconds per episode.
    setup_us_per_episode: f64,
    /// Heap allocations per episode in the steady-state reset window
    /// (reset + campaign arming, after warmup — must be 0).
    steady_reset_allocs_per_episode: u64,
}

fn episode_headline() -> EpisodeHeadline {
    const EPISODES: usize = 500;
    const ATTACKS: [Option<AttackKind>; 4] = [
        None,
        Some(AttackKind::RfJamming),
        Some(AttackKind::DeauthFlood),
        Some(AttackKind::Replay),
    ];
    let specs: Vec<EpisodeSpec> = (0..EPISODES)
        .map(|i| {
            EpisodeSpec::compact(
                SecurityPosture::secure(),
                ATTACKS[i % ATTACKS.len()],
                11,
                SimDuration::from_secs(2),
            )
        })
        .collect();

    let t0 = Instant::now();
    let outcomes = EpisodeRunner::with_workers(1).run(&specs);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(outcomes.len(), EPISODES);

    // Steady-state reset window: warm one episode per attack class,
    // then count allocations and time across the reset + arm calls.
    let mut slot: Option<Worksite> = None;
    for spec in specs.iter().take(ATTACKS.len()) {
        let _ = run_episode_pooled(&mut slot, spec);
    }
    let site = slot.as_mut().expect("warmup populated the pool slot");
    const RESETS: usize = 64;
    let mut allocs = 0u64;
    let t0 = Instant::now();
    for spec in specs.iter().cycle().take(RESETS) {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        site.reset_for_episode(&spec.config, spec.seed);
        spec.arm(site);
        allocs += ALLOCATIONS.load(Ordering::Relaxed) - before;
    }
    let setup_us = t0.elapsed().as_secs_f64() / RESETS as f64 * 1e6;
    let steady = allocs / RESETS as u64;
    assert_eq!(
        steady, 0,
        "steady-state episode reset must not allocate ({steady} allocs/episode)"
    );

    EpisodeHeadline {
        episodes: EPISODES,
        episodes_per_s: EPISODES as f64 / wall_s.max(1e-9),
        setup_us_per_episode: setup_us,
        steady_reset_allocs_per_episode: steady,
    }
}

/// Generative TARA enumeration throughput at one mid-size point.
#[derive(Debug, Serialize)]
struct TaraHeadline {
    /// Scenario cells enumerated, deduped and scored.
    scenarios: u64,
    /// Enumerated scenarios per wall-clock second.
    scenarios_per_s: f64,
    /// Scenarios kept in the deterministic ranking.
    top_k: usize,
}

fn tara_headline() -> TaraHeadline {
    use silvasec::risk::catalog::worksite_model;
    use silvasec::tara::{ScenarioSpace, TaraCatalog};
    const TARGET: u64 = 100_000;
    const TOP_K: usize = 64;
    let catalog = TaraCatalog::from_model(&worksite_model());
    let variants = ScenarioSpace::variants_for(&catalog, TARGET);
    let space = ScenarioSpace::new(&catalog, 11, variants, TOP_K);
    let t0 = Instant::now();
    let report = space.enumerate_parallel();
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(
        report.enumerated >= TARGET && report.top.len() <= TOP_K,
        "tara headline enumeration must cover the target: {report:?}"
    );
    TaraHeadline {
        scenarios: report.enumerated,
        scenarios_per_s: report.enumerated as f64 / wall_s.max(1e-9),
        top_k: report.top.len(),
    }
}

/// Incident-response workflow throughput at one mid-size load point.
#[derive(Debug, Serialize)]
struct OpsHeadline {
    /// Incidents submitted to the engine.
    incidents: usize,
    /// Incidents driven to settlement per wall-clock second.
    incidents_per_s: f64,
    /// Fraction of opened runs that closed verified (the rest escalated,
    /// were rejected at triage, or dead-lettered).
    closed_frac: f64,
}

fn ops_headline() -> OpsHeadline {
    const INCIDENTS: usize = 1_000;
    let t0 = Instant::now();
    let (engine, _) = run_ops_load(INCIDENTS, 13);
    let wall_s = t0.elapsed().as_secs_f64();
    let counters = engine.store().counters();
    assert!(
        engine.queue_conserves() && counters.settled() == counters.opened,
        "ops headline load must settle cleanly: {counters:?}"
    );
    OpsHeadline {
        incidents: INCIDENTS,
        incidents_per_s: INCIDENTS as f64 / wall_s.max(1e-9),
        closed_frac: counters.closed as f64 / counters.opened.max(1) as f64,
    }
}

/// Two-fidelity fleet rollout throughput and batched-verify
/// amortization at one mid-size point.
#[derive(Debug, Serialize)]
struct FleetScaleHeadline {
    /// Fleet size of the measured point.
    sites: usize,
    /// Site-updates applied per wall-clock second.
    sites_per_s: f64,
    /// Shadow sites resolved per Fiat–Shamir batch verification — the
    /// factor by which per-site verifies were amortized away.
    batch_verify_amortization: f64,
}

fn fleet_scale_headline() -> FleetScaleHeadline {
    const SITES: usize = 16_384;
    let t0 = Instant::now();
    let (report, _) = run_fleet_scale_point(SITES, 11, FleetScenario::Clean, false);
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(
        report.completed && report.applied_sites == SITES as u32,
        "fleet-scale headline rollout must complete fleet-wide: {report:?}"
    );
    FleetScaleHeadline {
        sites: SITES,
        sites_per_s: SITES as f64 / wall_s.max(1e-9),
        batch_verify_amortization: report.batch_verified_sites as f64
            / report.batch_verify_calls.max(1) as f64,
    }
}

/// Schnorr throughput on the fast scalar-multiplication paths.
#[derive(Debug, Serialize)]
struct CryptoHeadline {
    /// Signatures per second (shared basepoint table).
    sign_per_s: f64,
    /// Single verifications per second (Straus double-scalar path).
    verify_per_s: f64,
    /// Per-signature throughput of a 16-signature batch verification
    /// (one shared doubling chain).
    verify_batch16_per_sig_per_s: f64,
}

fn crypto_headline() -> CryptoHeadline {
    const ITERS: usize = 32;
    const BATCH: usize = 16;
    let time = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        t0.elapsed().as_secs_f64().max(1e-12) / ITERS as f64
    };

    let keys: Vec<SigningKey> = (0..BATCH)
        .map(|i| SigningKey::from_seed(&[0x60 + i as u8; 32]))
        .collect();
    let messages: Vec<Vec<u8>> = (0..BATCH)
        .map(|i| format!("perf-snapshot crypto headline {i}").into_bytes())
        .collect();
    let signatures: Vec<_> = keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
    let verifiers: Vec<_> = keys.iter().map(SigningKey::verifying_key).collect();
    let items: Vec<BatchItem<'_>> = (0..BATCH)
        .map(|i| BatchItem {
            message: &messages[i],
            signature: &signatures[i],
            key: &verifiers[i],
        })
        .collect();

    let sign_s = time(&mut || {
        std::hint::black_box(keys[0].sign(&messages[0]));
    });
    let verify_s = time(&mut || {
        verifiers[0].verify(&messages[0], &signatures[0]).unwrap();
    });
    let batch_s = time(&mut || {
        assert!(schnorr::verify_batch(&items));
    });
    CryptoHeadline {
        sign_per_s: 1.0 / sign_s,
        verify_per_s: 1.0 / verify_s,
        verify_batch16_per_sig_per_s: BATCH as f64 / batch_s,
    }
}

/// Established-session record throughput over the one-pass AEAD and
/// reused buffers (each iteration seals one record and opens it on the
/// peer — the full data-plane round trip).
#[derive(Debug, Serialize)]
struct SessionHeadline {
    /// Record payload size used for the measurement, bytes.
    record_payload_bytes: usize,
    /// Records sealed **and** opened per second.
    records_per_s: f64,
    /// Plaintext throughput implied by the record rate, MB/s.
    mb_per_s: f64,
}

fn session_headline() -> SessionHeadline {
    const ITERS: usize = 2048;
    const PAYLOAD: usize = 1024;
    let (mut tx, mut rx) = session_pair(47);
    let payload = vec![0x42u8; PAYLOAD];
    let mut record = Vec::new();
    let mut opened = Vec::new();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            tx.seal_into(&payload, &mut record).expect("seal record");
            rx.open_into(&record, &mut opened).expect("open record");
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    assert_eq!(opened, payload);
    let records_per_s = ITERS as f64 / best.max(1e-12);
    SessionHeadline {
        record_payload_bytes: PAYLOAD,
        records_per_s,
        mb_per_s: records_per_s * PAYLOAD as f64 / 1e6,
    }
}

fn rows_bit_identical(a: &[OcclusionRow], b: &[OcclusionRow]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.density.to_bits() == y.density.to_bits()
                && x.relief_m.to_bits() == y.relief_m.to_bits()
                && x.forwarder_coverage.to_bits() == y.forwarder_coverage.to_bits()
                && x.combined_coverage.to_bits() == y.combined_coverage.to_bits()
                && x.forwarder_ttd_s.to_bits() == y.forwarder_ttd_s.to_bits()
                && x.combined_ttd_s.to_bits() == y.combined_ttd_s.to_bits()
        })
}

fn main() {
    let duration = SimDuration::from_secs(POINT_SECS);

    // Sequential reference: the nested map `occlusion_sweep` used before
    // the sweep engine existed, aggregation fold order included.
    let t0 = Instant::now();
    let sequential: Vec<OcclusionRow> = DENSITIES
        .iter()
        .map(|&density| {
            let rows: Vec<OcclusionRow> = SEEDS
                .iter()
                .map(|&s| occlusion_point(density, RELIEF_M, s, duration))
                .collect();
            let n = rows.len() as f64;
            OcclusionRow {
                density,
                relief_m: RELIEF_M,
                forwarder_coverage: rows.iter().map(|r| r.forwarder_coverage).sum::<f64>() / n,
                combined_coverage: rows.iter().map(|r| r.combined_coverage).sum::<f64>() / n,
                forwarder_ttd_s: rows.iter().map(|r| r.forwarder_ttd_s).sum::<f64>() / n,
                combined_ttd_s: rows.iter().map(|r| r.combined_ttd_s).sum::<f64>() / n,
            }
        })
        .collect();
    let sequential_wall_s = t0.elapsed().as_secs_f64();

    // Parallel run of the same grid through the engine.
    let t1 = Instant::now();
    let parallel = occlusion_sweep(&DENSITIES, RELIEF_M, &SEEDS, duration);
    let parallel_wall_s = t1.elapsed().as_secs_f64();

    let deterministic = rows_bit_identical(&sequential, &parallel);

    // Engine stats for the same grid (per-point timings, worker count).
    let points: Vec<(f64, u64)> = DENSITIES
        .iter()
        .flat_map(|&d| SEEDS.iter().map(move |&s| (d, s)))
        .collect();
    let (_, stats) =
        par_sweep_with_stats(&points, |&(d, s)| occlusion_point(d, RELIEF_M, s, duration));

    // One standard worksite episode (the E1 baseline) for the episode
    // throughput axis of the trajectory.
    let t2 = Instant::now();
    let episode_secs = 300u64;
    let _ = run_worksite(
        SecurityPosture::secure(),
        None,
        3,
        SimDuration::from_secs(episode_secs),
    );
    let worksite_episode_wall_s = t2.elapsed().as_secs_f64();

    // Flight-recorder overhead on the same episode class (interleaved
    // median-of-rounds so frequency ramps cannot make it negative).
    let telemetry = measure_recorder_overhead(3, episode_secs, 3);

    // Steady-state tick hot-path headline.
    let tick = tick_headline();

    // Crypto hot-path headline throughput.
    let crypto = crypto_headline();

    // Secure-session data-plane headline throughput.
    let session = session_headline();

    // Fleet-scale control-plane headline throughput.
    let fleet_scale = fleet_scale_headline();

    // Incident-response ops headline throughput.
    let ops = ops_headline();

    // Generative TARA enumeration headline throughput.
    let tara = tara_headline();

    // Pooled episode-engine headline throughput.
    let episodes = episode_headline();

    let sweep_points = DENSITIES.len() * SEEDS.len();
    let detected_cores =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (git_sha, run_ts) = run_keys();
    let entry = RunEntry {
        git_sha,
        run_ts,
        workers: worker_count(sweep_points).max(stats.workers),
        detected_cores,
        sweep_points,
        sequential_wall_s,
        parallel_wall_s,
        speedup: sequential_wall_s / parallel_wall_s.max(1e-9),
        sequential_points_per_s: sweep_points as f64 / sequential_wall_s.max(1e-9),
        parallel_points_per_s: sweep_points as f64 / parallel_wall_s.max(1e-9),
        deterministic,
        worksite_episode_wall_s,
        worksite_sim_rate: episode_secs as f64 / worksite_episode_wall_s.max(1e-9),
        telemetry,
        tick,
        crypto,
        session,
        fleet_scale,
        ops,
        tara,
        episodes,
    };

    assert!(
        entry.deterministic,
        "parallel sweep rows diverged from the sequential reference — determinism contract broken"
    );
    // On a multi-core host the engine must actually win; a single-core
    // host cannot, so there the entry only records the fact.
    if detected_cores >= 2 {
        assert!(
            entry.speedup >= 1.0,
            "parallel sweep slower than sequential on a {detected_cores}-core host \
             (speedup {:.2})",
            entry.speedup
        );
    } else {
        eprintln!("single-core host: skipping the speedup assertion");
    }

    let out_path = trajectory_out_path("SILVASEC_PERF_OUT", "BENCH_perf_snapshot.json");
    append_trajectory_run(
        &out_path,
        "silvasec-perf-trajectory/1",
        Some("silvasec-perf-snapshot/1"),
        &entry,
    );

    println!(
        "{}",
        serde_json::to_string_pretty(&entry).expect("entry serializes")
    );
}
