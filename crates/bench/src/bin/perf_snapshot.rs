//! **Performance snapshot** — the machine-readable datapoint behind the
//! `BENCH_*.json` trajectory.
//!
//! Runs the reference Figure 2 occlusion sweep (8 densities × 4 seeds)
//! once sequentially and once on the parallel sweep engine, plus one
//! standard worksite episode, and prints a JSON object with wall-clock
//! times, speedup and episode throughput. The sequential and parallel
//! sweeps are also compared field for field — the engine's determinism
//! contract (bit-identical results) is asserted on every run, so the
//! snapshot doubles as a determinism proof.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin perf_snapshot`

use serde::Serialize;
use silvasec::experiments::{occlusion_point, occlusion_sweep, run_worksite, OcclusionRow};
use silvasec::prelude::*;
use silvasec::sweep::{par_sweep_with_stats, worker_count};
use silvasec_sim::time::SimDuration;
use std::time::Instant;

/// Reference sweep: 8 densities × 4 seeds at 15 m relief.
const DENSITIES: [f64; 8] = [0.0, 100.0, 300.0, 500.0, 700.0, 900.0, 1200.0, 1500.0];
const SEEDS: [u64; 4] = [5, 17, 29, 43];
const RELIEF_M: f64 = 15.0;
const POINT_SECS: u64 = 200;

#[derive(Debug, Serialize)]
struct Snapshot {
    /// Schema marker for downstream tooling.
    schema: String,
    /// Worker threads the parallel sweep used (hardware-dependent).
    workers: usize,
    /// Grid size of the reference sweep.
    sweep_points: usize,
    /// Sequential wall-clock for the reference sweep, seconds.
    sequential_wall_s: f64,
    /// Parallel wall-clock for the reference sweep, seconds.
    parallel_wall_s: f64,
    /// sequential / parallel.
    speedup: f64,
    /// Sweep points per second, sequential.
    sequential_points_per_s: f64,
    /// Sweep points per second, parallel.
    parallel_points_per_s: f64,
    /// Whether the parallel rows matched the sequential rows bit for bit.
    deterministic: bool,
    /// Wall-clock of one standard 300 s worksite episode, seconds.
    worksite_episode_wall_s: f64,
    /// Simulated seconds per wall-clock second for that episode.
    worksite_sim_rate: f64,
}

fn rows_bit_identical(a: &[OcclusionRow], b: &[OcclusionRow]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.density.to_bits() == y.density.to_bits()
                && x.relief_m.to_bits() == y.relief_m.to_bits()
                && x.forwarder_coverage.to_bits() == y.forwarder_coverage.to_bits()
                && x.combined_coverage.to_bits() == y.combined_coverage.to_bits()
                && x.forwarder_ttd_s.to_bits() == y.forwarder_ttd_s.to_bits()
                && x.combined_ttd_s.to_bits() == y.combined_ttd_s.to_bits()
        })
}

fn main() {
    let duration = SimDuration::from_secs(POINT_SECS);

    // Sequential reference: the nested map `occlusion_sweep` used before
    // the sweep engine existed, aggregation fold order included.
    let t0 = Instant::now();
    let sequential: Vec<OcclusionRow> = DENSITIES
        .iter()
        .map(|&density| {
            let rows: Vec<OcclusionRow> = SEEDS
                .iter()
                .map(|&s| occlusion_point(density, RELIEF_M, s, duration))
                .collect();
            let n = rows.len() as f64;
            OcclusionRow {
                density,
                relief_m: RELIEF_M,
                forwarder_coverage: rows.iter().map(|r| r.forwarder_coverage).sum::<f64>() / n,
                combined_coverage: rows.iter().map(|r| r.combined_coverage).sum::<f64>() / n,
                forwarder_ttd_s: rows.iter().map(|r| r.forwarder_ttd_s).sum::<f64>() / n,
                combined_ttd_s: rows.iter().map(|r| r.combined_ttd_s).sum::<f64>() / n,
            }
        })
        .collect();
    let sequential_wall_s = t0.elapsed().as_secs_f64();

    // Parallel run of the same grid through the engine.
    let t1 = Instant::now();
    let parallel = occlusion_sweep(&DENSITIES, RELIEF_M, &SEEDS, duration);
    let parallel_wall_s = t1.elapsed().as_secs_f64();

    let deterministic = rows_bit_identical(&sequential, &parallel);

    // Engine stats for the same grid (per-point timings, worker count).
    let points: Vec<(f64, u64)> = DENSITIES
        .iter()
        .flat_map(|&d| SEEDS.iter().map(move |&s| (d, s)))
        .collect();
    let (_, stats) =
        par_sweep_with_stats(&points, |&(d, s)| occlusion_point(d, RELIEF_M, s, duration));

    // One standard worksite episode (the E1 baseline) for the episode
    // throughput axis of the trajectory.
    let t2 = Instant::now();
    let episode_secs = 300u64;
    let _ = run_worksite(
        SecurityPosture::secure(),
        None,
        3,
        SimDuration::from_secs(episode_secs),
    );
    let worksite_episode_wall_s = t2.elapsed().as_secs_f64();

    let sweep_points = DENSITIES.len() * SEEDS.len();
    let snapshot = Snapshot {
        schema: "silvasec-perf-snapshot/1".to_string(),
        workers: worker_count(sweep_points).max(stats.workers),
        sweep_points,
        sequential_wall_s,
        parallel_wall_s,
        speedup: sequential_wall_s / parallel_wall_s.max(1e-9),
        sequential_points_per_s: sweep_points as f64 / sequential_wall_s.max(1e-9),
        parallel_points_per_s: sweep_points as f64 / parallel_wall_s.max(1e-9),
        deterministic,
        worksite_episode_wall_s,
        worksite_sim_rate: episode_secs as f64 / worksite_episode_wall_s.max(1e-9),
    };

    assert!(
        snapshot.deterministic,
        "parallel sweep rows diverged from the sequential reference — determinism contract broken"
    );

    println!(
        "{}",
        serde_json::to_string_pretty(&snapshot).expect("snapshot serializes")
    );
}
