//! **E7** — secure boot effectiveness and overhead: every tampered or
//! rolled-back image must be rejected (100%), and verification time must
//! scale linearly with image size.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp7_secure_boot`

use silvasec::crypto::schnorr::SigningKey;
use silvasec::prelude::*;
use silvasec_sim::rng::SimRng;
use std::time::Instant;

fn main() {
    println!("E7 — secure boot\n");
    let signer = SigningKey::from_seed(&[1u8; 32]);
    let mut rng = SimRng::from_seed(2);

    // Effectiveness: N tamper attempts, N rollback attempts.
    let trials = 200;
    let mut tampered_rejected = 0;
    let mut rollback_rejected = 0;
    for i in 0..trials {
        let make_chain = |version: u32, rng: &mut SimRng| {
            let mut payload = vec![0u8; 8192];
            rng.fill_bytes(&mut payload);
            vec![
                FirmwareImage::new("dev", FirmwareStage::Bootloader, version, payload.clone())
                    .sign(&signer),
                FirmwareImage::new("dev", FirmwareStage::Application, version, payload)
                    .sign(&signer),
            ]
        };
        let mut device = Device::new("dev", signer.verifying_key());
        let chain = make_chain(5, &mut rng);
        assert!(device.boot(&chain).success);

        // Tamper a random byte of a random image.
        let mut tampered = chain.clone();
        let img = (i % 2) as usize;
        let byte = (rng.next_u64() as usize) % tampered[img].image.payload.len();
        tampered[img].image.payload[byte] ^= 1 + (rng.next_u64() % 255) as u8;
        if !device.boot(&tampered).success {
            tampered_rejected += 1;
        }
        // Rollback to a validly-signed older version.
        let old = make_chain(1, &mut rng);
        if !device.boot(&old).success {
            rollback_rejected += 1;
        }
    }
    println!("tamper rejection:   {tampered_rejected}/{trials} (must be {trials})");
    println!("rollback rejection: {rollback_rejected}/{trials} (must be {trials})");
    assert_eq!(tampered_rejected, trials);
    assert_eq!(rollback_rejected, trials);

    // Overhead vs image size.
    println!("\n{:>12} {:>14}", "image (KiB)", "boot time (ms)");
    for size_kib in [16usize, 64, 256, 1024, 4096] {
        let payload = vec![0xa5u8; size_kib * 1024];
        let chain = vec![
            FirmwareImage::new("dev", FirmwareStage::Bootloader, 1, vec![0u8; 4096]).sign(&signer),
            FirmwareImage::new("dev", FirmwareStage::Application, 1, payload).sign(&signer),
        ];
        let iterations = 10;
        let start = Instant::now();
        for _ in 0..iterations {
            let mut device = Device::new("dev", signer.verifying_key());
            assert!(device.boot(&chain).success);
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / f64::from(iterations);
        println!("{size_kib:>12} {ms:>14.2}");
    }
    println!("\nshape to verify: rejection is total; boot time is signature-verification");
    println!("dominated for small images and hash-throughput dominated (linear) for large.");
}
