//! **Trace comparison** — diff two flight-recorder JSONL traces and
//! report the first divergence.
//!
//! Two modes:
//!
//! * `trace_compare <left.jsonl> <right.jsonl>` — compare two exported
//!   trace files event by event;
//! * `trace_compare --figure1 <seed-a> <seed-b> [sim-secs]` — run the
//!   shortened Figure 1 campaign twice under the secure posture and
//!   compare the resulting security traces directly, no files needed
//!   (default 240 simulated seconds).
//!
//! Identical traces exit 0 and print `identical`; diverging traces exit
//! 1 and print the event index, the field path, and both values at the
//! first mismatch. Same seed must always compare identical — that is
//! the recorder's determinism contract.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin trace_compare -- --figure1 11 12`

use silvasec::experiments::figure1_trace;
use silvasec::prelude::*;
use silvasec::telemetry::first_divergence_jsonl;
use silvasec_sim::time::SimDuration;
use std::process::ExitCode;

const USAGE: &str = "usage: trace_compare <left.jsonl> <right.jsonl>\n       trace_compare --figure1 <seed-a> <seed-b> [sim-secs]";

fn compare(left_name: &str, left: &str, right_name: &str, right: &str) -> ExitCode {
    match first_divergence_jsonl(left, right) {
        Ok(None) => {
            let events = left.lines().count();
            println!("identical: {left_name} and {right_name} agree on all {events} events");
            ExitCode::SUCCESS
        }
        Ok(Some(div)) => {
            println!("traces diverge at event {}:", div.index);
            println!("  field: {}", div.field);
            println!("  {left_name}: {}", div.left);
            println!("  {right_name}: {}", div.right);
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: malformed trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--figure1") => {
            let (Some(Ok(seed_a)), Some(Ok(seed_b))) = (
                args.get(1).map(|s| s.parse::<u64>()),
                args.get(2).map(|s| s.parse::<u64>()),
            ) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let secs = match args.get(3).map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => s,
                None => 240,
                Some(Err(_)) => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let total = SimDuration::from_secs(secs);
            let left = figure1_trace(SecurityPosture::secure(), seed_a, total);
            let right = figure1_trace(SecurityPosture::secure(), seed_b, total);
            compare(
                &format!("seed {seed_a}"),
                &left,
                &format!("seed {seed_b}"),
                &right,
            )
        }
        Some(left_path) if args.len() == 2 => {
            let right_path = &args[1];
            let read = |path: &str| {
                std::fs::read_to_string(path).map_err(|e| eprintln!("error: {path}: {e}"))
            };
            let (Ok(left), Ok(right)) = (read(left_path), read(right_path)) else {
                return ExitCode::FAILURE;
            };
            compare(left_path, &left, right_path, &right)
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
