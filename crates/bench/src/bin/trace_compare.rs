//! **Trace comparison** — diff two flight-recorder JSONL traces and
//! report the first divergence.
//!
//! Modes:
//!
//! * `trace_compare <left.jsonl> <right.jsonl>` — compare two exported
//!   trace files event by event, streaming line by line so fleet-sized
//!   traces never have to fit in memory;
//! * `trace_compare --figure1 <seed-a> <seed-b> [sim-secs]` — run the
//!   shortened Figure 1 campaign twice under the secure posture and
//!   compare the resulting security traces directly, no files needed
//!   (default 240 simulated seconds);
//! * `trace_compare --fleet <seed-a> <seed-b> [sites]` — run the E10
//!   fleet OTA rollout twice and compare the fleet security traces
//!   (default 4 sites);
//! * `trace_compare --fleet-scale <seed-a> <seed-b> [sites]` — run the
//!   E12 two-fidelity fleet rollout with parallel shadow shards for the
//!   left trace and sequentially for the right (default 4096 sites):
//!   with equal seeds this is the shard-merge determinism witness, with
//!   different seeds a divergence probe;
//! * `trace_compare --ops <seed-a> <seed-b> [incidents]` — run the E13
//!   synthetic incident-response load twice (default 500 incidents) and
//!   compare the `Ops*` security traces. Before comparing, the left
//!   run's store is rebuilt from nothing but its own recorded trace and
//!   diffed against the live store (`RunStore::first_divergence`) — a
//!   live-vs-replay divergence fails the run even when the seeds
//!   differ, making this the self-driving replay witness for CI;
//! * `trace_compare --episodes <seed-a> <seed-b> [sim-secs]` — run one
//!   standard jamming episode per seed (default 240 simulated seconds),
//!   the left on a **pooled** worksite (dirtied by a preceding episode
//!   on an unrelated seed, then `reset_for_episode` onto the probed
//!   one), the right on a **fresh** build, and compare the security
//!   traces: with equal seeds this is the reset-equals-fresh
//!   byte-identity witness for CI, with different seeds a divergence
//!   probe;
//! * `trace_compare --tara <seed-a> <seed-b> [sites]` — run the E11
//!   live-hypothesis fleet scenario twice (default 4 sites) and compare
//!   the security traces. Before comparing, the left run's TARA
//!   hypothesis set is rebuilt from nothing but the recorded
//!   `TaraHypothesis` events (`HypothesisSet::replay_from_jsonl`) and
//!   diffed against the live set — a live-vs-replay divergence fails
//!   the run even when the seeds differ.
//!
//! `--max-events N` (any mode) stops after the first `N` events: a
//! bounded spot-check that keeps CI diffs of fleet-scale traces cheap.
//!
//! `--dump <path>` (self-driving modes) additionally writes the left
//! trace to a file, so a "before" snapshot can be captured, the code
//! changed, and the "after" trace compared byte for byte with the
//! file-diff mode — the same pre/post workflow `fleet_trace_dump`
//! supports for the fleet trace, here for the Figure 1 worksite trace.
//!
//! Identical traces exit 0 and print `identical`; diverging traces exit
//! 1 and print the event index, the field path, and both values at the
//! first mismatch. Same seed must always compare identical — that is
//! the recorder's determinism contract.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin trace_compare -- --figure1 11 12`

use silvasec::experiments::{
    figure1_trace, run_fleet_rollout, run_fleet_scale_point, run_ops_load, run_tara_hypotheses,
    tara_ranking, FleetScenario,
};
use silvasec::ops::RunStore;
use silvasec::prelude::*;
use silvasec::tara::HypothesisSet;
use silvasec::telemetry::first_divergence_jsonl;
use silvasec_sim::time::SimDuration;
use std::io::BufRead;
use std::process::ExitCode;

const USAGE: &str = "usage: trace_compare [--max-events N] <left.jsonl> <right.jsonl>\n       trace_compare [--max-events N] --figure1 <seed-a> <seed-b> [sim-secs]\n       trace_compare [--max-events N] --fleet <seed-a> <seed-b> [sites]\n       trace_compare [--max-events N] --fleet-scale <seed-a> <seed-b> [sites]\n       trace_compare [--max-events N] --ops <seed-a> <seed-b> [incidents]\n       trace_compare [--max-events N] --tara <seed-a> <seed-b> [sites]\n       trace_compare [--max-events N] --episodes <seed-a> <seed-b> [sim-secs]";

fn compare(left_name: &str, left: &str, right_name: &str, right: &str) -> ExitCode {
    match first_divergence_jsonl(left, right) {
        Ok(None) => {
            let events = left.lines().count();
            println!("identical: {left_name} and {right_name} agree on all {events} events");
            ExitCode::SUCCESS
        }
        Ok(Some(div)) => {
            println!("traces diverge at event {}:", div.index);
            println!("  field: {}", div.field);
            println!("  {left_name}: {}", div.left);
            println!("  {right_name}: {}", div.right);
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: malformed trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Keeps only the first `max_events` lines of an in-memory trace.
fn truncated(trace: &str, max_events: Option<usize>) -> String {
    match max_events {
        None => trace.to_string(),
        Some(n) => trace
            .lines()
            .take(n)
            .map(|l| format!("{l}\n"))
            .collect::<String>(),
    }
}

/// Streams two trace files line by line — memory is bounded by one
/// event per side regardless of file size — and reports the first
/// divergence, stopping after `max_events` events when set.
fn compare_files(
    left_path: &str,
    right_path: &str,
    max_events: Option<usize>,
) -> std::io::Result<ExitCode> {
    let open = |p: &str| std::fs::File::open(p).map(std::io::BufReader::new);
    let mut left_lines = open(left_path)?.lines();
    let mut right_lines = open(right_path)?.lines();
    let mut index = 0usize;
    loop {
        if max_events.is_some_and(|n| index >= n) {
            println!(
                "identical: {left_path} and {right_path} agree on the first {index} events \
                 (--max-events reached)"
            );
            return Ok(ExitCode::SUCCESS);
        }
        match (
            left_lines.next().transpose()?,
            right_lines.next().transpose()?,
        ) {
            (None, None) => {
                println!("identical: {left_path} and {right_path} agree on all {index} events");
                return Ok(ExitCode::SUCCESS);
            }
            (Some(_), None) | (None, Some(_)) => {
                println!("traces diverge at event {index}:");
                println!("  one trace ends here while the other continues");
                return Ok(ExitCode::FAILURE);
            }
            (Some(left), Some(right)) => match first_divergence_jsonl(&left, &right) {
                Ok(None) => {}
                Ok(Some(div)) => {
                    println!("traces diverge at event {index}:");
                    println!("  field: {}", div.field);
                    println!("  {left_path}: {}", div.left);
                    println!("  {right_path}: {}", div.right);
                    return Ok(ExitCode::FAILURE);
                }
                Err(e) => {
                    eprintln!("error: malformed trace at event {index}: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            },
        }
        index += 1;
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // `--max-events N` may appear anywhere; extract it first.
    let mut max_events: Option<usize> = None;
    if let Some(pos) = args.iter().position(|a| a == "--max-events") {
        let Some(Ok(n)) = args.get(pos + 1).map(|s| s.parse::<usize>()) else {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        };
        max_events = Some(n);
        args.drain(pos..=pos + 1);
    }

    // `--dump <path>` writes the left trace of a self-driving mode to a
    // file for later pre/post file-diff comparison.
    let mut dump_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--dump") {
        let Some(path) = args.get(pos + 1).cloned() else {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        };
        dump_path = Some(path);
        args.drain(pos..=pos + 1);
    }
    let dump = |trace: &str| {
        if let Some(path) = &dump_path {
            if let Err(e) = std::fs::write(path, trace) {
                eprintln!("error: cannot write {path}: {e}");
            } else {
                eprintln!("dumped left trace to {path}");
            }
        }
    };

    let parse_seeds = |args: &[String]| -> Option<(u64, u64)> {
        match (
            args.get(1).map(|s| s.parse::<u64>()),
            args.get(2).map(|s| s.parse::<u64>()),
        ) {
            (Some(Ok(a)), Some(Ok(b))) => Some((a, b)),
            _ => None,
        }
    };

    match args.first().map(String::as_str) {
        Some("--figure1") => {
            let Some((seed_a, seed_b)) = parse_seeds(&args) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let secs = match args.get(3).map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => s,
                None => 240,
                Some(Err(_)) => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let total = SimDuration::from_secs(secs);
            let left = truncated(
                &figure1_trace(SecurityPosture::secure(), seed_a, total),
                max_events,
            );
            let right = truncated(
                &figure1_trace(SecurityPosture::secure(), seed_b, total),
                max_events,
            );
            dump(&left);
            compare(
                &format!("seed {seed_a}"),
                &left,
                &format!("seed {seed_b}"),
                &right,
            )
        }
        Some("--fleet") => {
            let Some((seed_a, seed_b)) = parse_seeds(&args) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let sites = match args.get(3).map(|s| s.parse::<usize>()) {
                Some(Ok(s)) => s,
                None => 4,
                Some(Err(_)) => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let (_, left) = run_fleet_rollout(sites, seed_a, FleetScenario::Clean);
            let (_, right) = run_fleet_rollout(sites, seed_b, FleetScenario::Clean);
            let left = truncated(&left, max_events);
            let right = truncated(&right, max_events);
            dump(&left);
            compare(
                &format!("fleet seed {seed_a}"),
                &left,
                &format!("fleet seed {seed_b}"),
                &right,
            )
        }
        Some("--fleet-scale") => {
            let Some((seed_a, seed_b)) = parse_seeds(&args) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let sites = match args.get(3).map(|s| s.parse::<usize>()) {
                Some(Ok(s)) => s,
                None => 4_096,
                Some(Err(_)) => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            // Left runs the shadow shards on the parallel sweep pool,
            // right runs them sequentially: equal seeds assert the
            // order-preserving merge, different seeds probe divergence.
            let (_, left_fleet) = run_fleet_scale_point(sites, seed_a, FleetScenario::Clean, false);
            let (_, right_fleet) = run_fleet_scale_point(sites, seed_b, FleetScenario::Clean, true);
            let left = truncated(&left_fleet.export_trace_jsonl(), max_events);
            let right = truncated(&right_fleet.export_trace_jsonl(), max_events);
            dump(&left);
            compare(
                &format!("parallel shards seed {seed_a}"),
                &left,
                &format!("sequential shards seed {seed_b}"),
                &right,
            )
        }
        Some("--ops") => {
            let Some((seed_a, seed_b)) = parse_seeds(&args) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let incidents = match args.get(3).map(|s| s.parse::<usize>()) {
                Some(Ok(n)) => n,
                None => 500,
                Some(Err(_)) => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let (left_engine, left) = run_ops_load(incidents, seed_a);
            let (_, right) = run_ops_load(incidents, seed_b);
            // Replay witness on the full (untruncated) left trace: the
            // store rebuilt from nothing but the recorded events must be
            // identical to the live one, whatever the seeds.
            let replayed = match RunStore::replay_from_jsonl(&left) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("error: left ops trace does not replay: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some((line, live, replay)) = left_engine.store().first_divergence(&replayed) {
                println!("live and replayed run stores diverge at canonical line {line}:");
                println!("  live:   {live}");
                println!("  replay: {replay}");
                return ExitCode::FAILURE;
            }
            println!(
                "replay: store rebuilt from the recorded trace is identical to the live store \
                 ({} runs)",
                left_engine.store().len()
            );
            let left = truncated(&left, max_events);
            let right = truncated(&right, max_events);
            dump(&left);
            compare(
                &format!("ops seed {seed_a}"),
                &left,
                &format!("ops seed {seed_b}"),
                &right,
            )
        }
        Some("--episodes") => {
            let Some((seed_a, seed_b)) = parse_seeds(&args) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let secs = match args.get(3).map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => s,
                None => 240,
                Some(Err(_)) => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            use silvasec::experiments::EpisodeSpec;
            let spec_for = |seed: u64| {
                EpisodeSpec::standard(
                    SecurityPosture::secure(),
                    Some(AttackKind::RfJamming),
                    seed,
                    SimDuration::from_secs(secs),
                )
            };

            // Left: the pooled reset path. Dirty the worksite with a
            // full episode on an unrelated seed first, so the reset has
            // real state to erase.
            let left_spec = spec_for(seed_a);
            let dirty_spec = spec_for(seed_a.wrapping_add(0x9e37));
            let mut pooled = Worksite::new(&dirty_spec.config, dirty_spec.seed);
            dirty_spec.arm(&mut pooled);
            pooled.run(dirty_spec.duration);
            pooled.reset_for_episode(&left_spec.config, left_spec.seed);
            left_spec.arm(&mut pooled);
            pooled.run(left_spec.duration);

            // Right: the same spec on a fresh build.
            let right_spec = spec_for(seed_b);
            let mut fresh = Worksite::new(&right_spec.config, right_spec.seed);
            right_spec.arm(&mut fresh);
            fresh.run(right_spec.duration);

            let left = truncated(&pooled.export_security_jsonl(), max_events);
            let right = truncated(&fresh.export_security_jsonl(), max_events);
            dump(&left);
            compare(
                &format!("pooled-reset seed {seed_a}"),
                &left,
                &format!("fresh-build seed {seed_b}"),
                &right,
            )
        }
        Some("--tara") => {
            let Some((seed_a, seed_b)) = parse_seeds(&args) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let sites = match args.get(3).map(|s| s.parse::<usize>()) {
                Some(Ok(s)) => s,
                None => 4,
                Some(Err(_)) => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let left_fleet = run_tara_hypotheses(sites, seed_a);
            let right_fleet = run_tara_hypotheses(sites, seed_b);
            let left = left_fleet.export_trace_jsonl();
            // Replay witness on the full (untruncated) left trace: the
            // hypothesis set rebuilt from nothing but the recorded
            // `TaraHypothesis` events must be identical to the live one,
            // whatever the seeds.
            let live = left_fleet.tara().expect("tara knob is on in E11");
            let replayed = match HypothesisSet::replay_from_jsonl(tara_ranking(seed_a), &left) {
                Ok(set) => set,
                Err(e) => {
                    eprintln!("error: left tara trace does not replay: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(div) = replayed.first_divergence(live) {
                println!("live and replayed hypothesis sets diverge:");
                println!("  {div}");
                return ExitCode::FAILURE;
            }
            let (open, confirmed, retired) = live.counts();
            println!(
                "replay: hypothesis set rebuilt from the recorded trace is identical to the \
                 live set ({open} open, {confirmed} confirmed, {retired} retired)"
            );
            let left = truncated(&left, max_events);
            let right = truncated(&right_fleet.export_trace_jsonl(), max_events);
            dump(&left);
            compare(
                &format!("tara seed {seed_a}"),
                &left,
                &format!("tara seed {seed_b}"),
                &right,
            )
        }
        Some(left_path) if args.len() == 2 => {
            let right_path = &args[1];
            match compare_files(left_path, right_path, max_events) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
