//! Regenerates **Figure 3** as an executed pipeline: the paper's approach
//! diagram (domain understanding → threats → assessment → assurance)
//! with the artifact counts each phase produces on the built-in use-case
//! model.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin figure3`

use silvasec::experiments::methodology_pipeline;

fn main() {
    let p = methodology_pipeline();
    println!("FIGURE 3 — the methodology pipeline, executed\n");
    println!("phase 1: domain & system understanding");
    println!("    assets identified ................. {}", p.assets);
    println!("    machinery hazards (ISO 12100) ..... {}", p.hazards);
    println!(
        "    SOTIF triggering conditions ....... {}",
        p.triggering_conditions
    );
    println!("phase 2: threat analysis (ISO/SAE 21434)");
    println!(
        "    damage scenarios .................. {}",
        p.damage_scenarios
    );
    println!("    threat scenarios .................. {}", p.threats);
    println!("phase 3: risk assessment");
    println!("    risks valued ...................... {}", p.risks);
    println!("    high risks (level ≥ 4) ............ {}", p.high_risks);
    println!(
        "    safety–security interplay findings  {}",
        p.interplay_findings
    );
    println!("phase 4: treatment & requirements");
    println!("    security requirements derived ..... {}", p.requirements);
    println!("phase 5: assurance (SAC, GSN)");
    println!(
        "    argument nodes generated .......... {}",
        p.assurance_nodes
    );
    println!(
        "    evidence items registered ......... {}",
        p.evidence_items
    );
    println!("\nevery arrow of the paper's Figure 3 is an executable transformation here;");
    println!("the counts above are reproduced deterministically from the use-case model.");
}
