//! **Ablations** — the design choices DESIGN.md calls out, swept:
//!
//! 1. drone patrol altitude (the Figure 2 vantage-point trade-off:
//!    higher sees over terrain but through more canopy at an angle);
//! 2. safety-supervisor clear delay (stop/start oscillation vs
//!    productivity);
//! 3. GNSS-consistency confirmation count (detection latency vs false
//!    positives on clean runs).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin ablation`

use silvasec::experiments::{campaign_for, standard_config};
use silvasec::machines::drone::{Drone, DroneConfig};
use silvasec::prelude::*;
use silvasec::sim::terrain::TerrainConfig;
use silvasec::sim::vegetation::StandConfig;
use silvasec::sweep::par_sweep;

fn drone_altitude_ablation() {
    println!("--- ablation 1: drone patrol altitude (relief 25 m, 300 trees/ha) ---");
    println!(
        "{:>12} {:>12} {:>12}",
        "altitude (m)", "coverage", "ttd (s)"
    );
    let altitudes = [20.0, 35.0, 50.0, 80.0, 120.0];
    let rows = par_sweep(&altitudes, |&altitude| {
        // Re-implement the occlusion core with a custom drone config.
        let config = WorldConfig {
            terrain: TerrainConfig {
                size_m: 300.0,
                relief_m: 25.0,
                ..TerrainConfig::default()
            },
            stand: StandConfig {
                trees_per_hectare: 300.0,
                ..StandConfig::default()
            },
            human_count: 4,
            human: silvasec::sim::humans::HumanConfig {
                work_area_bias: 0.7,
                ..silvasec::sim::humans::HumanConfig::default()
            },
            work_area: Vec2::new(175.0, 150.0),
            landing_area: Vec2::new(40.0, 40.0),
            ..WorldConfig::default()
        };
        let mut world = World::generate(&config, SimRng::from_seed(5));
        let mut rng = SimRng::from_seed(99);
        let machine_pos = Vec2::new(150.0, 150.0);
        let mut drone = Drone::new(
            machine_pos,
            DroneConfig {
                altitude_agl: altitude,
                ..DroneConfig::default()
            },
            &world,
        );
        let tick = SimDuration::from_millis(500);
        let (mut in_range, mut hits) = (0u64, 0u64);
        let mut waiting: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut ttds: Vec<f64> = Vec::new();
        for _ in 0..800 {
            world.step(tick);
            drone.step(&world, machine_pos, tick);
            let seen: Vec<u32> = drone
                .detect(&world, &mut rng)
                .into_iter()
                .map(|d| d.human_id.0)
                .collect();
            for human in world.humans() {
                if human.position.distance(machine_pos) <= 40.0 {
                    in_range += 1;
                    if seen.contains(&human.id.0) {
                        hits += 1;
                        if let Some(w) = waiting.remove(&human.id.0) {
                            ttds.push(w as f64 * 0.5);
                        }
                    } else {
                        *waiting.entry(human.id.0).or_insert(0) += 1;
                    }
                } else {
                    waiting.remove(&human.id.0);
                }
            }
        }
        let coverage = if in_range == 0 {
            0.0
        } else {
            hits as f64 / in_range as f64
        };
        let ttd = if ttds.is_empty() {
            f64::NAN
        } else {
            ttds.iter().sum::<f64>() / ttds.len() as f64
        };
        (coverage, ttd)
    });
    for (&altitude, &(coverage, ttd)) in altitudes.iter().zip(&rows) {
        println!("{altitude:>12.0} {:>11.1}% {:>12.2}", coverage * 100.0, ttd);
    }
    println!();
}

fn clear_delay_ablation() {
    println!("--- ablation 2: safety clear delay (900 s, 6 workers, no attack) ---");
    println!(
        "{:>12} {:>10} {:>12} {:>14}",
        "delay (s)", "stops", "stopped tk", "distance (m)"
    );
    let delays = [0u64, 1, 3, 10, 30];
    let rows = par_sweep(&delays, |&delay| {
        let mut config = standard_config(SecurityPosture::secure());
        config.world.human_count = 6;
        config.world.human.work_area_bias = 0.85;
        config.safety.clear_delay = SimDuration::from_secs(delay);
        let mut site = Worksite::new(&config, 13);
        site.run(SimDuration::from_secs(900));
        let m = site.metrics();
        (m.stop_events, m.stopped_ticks, m.distance_m)
    });
    for (&delay, &(stops, stopped_ticks, distance_m)) in delays.iter().zip(&rows) {
        println!("{delay:>12} {stops:>10} {stopped_ticks:>12} {distance_m:>14.0}");
    }
    println!();
}

fn nav_confirmation_ablation() {
    println!("--- ablation 3: GNSS-consistency confirmation count ---");
    println!(
        "{:>14} {:>16} {:>22}",
        "confirmations", "spoof ttd (s)", "false alerts (clean)"
    );
    let confirmations = [1u32, 2, 3, 5, 10];
    let rows = par_sweep(&confirmations, |&required| {
        let mut config = standard_config(SecurityPosture::secure());
        config.ids.nav.required_consecutive = required;

        // Detection latency under spoofing.
        let mut site = Worksite::new(&config, 21);
        site.attack_engine_mut().add_campaign(campaign_for(
            AttackKind::GnssSpoofing,
            SimTime::from_secs(60),
            SimDuration::from_secs(150),
        ));
        site.run(SimDuration::from_secs(240));
        let ttd = site
            .metrics()
            .first_alert_at
            .get("gnss-spoofing")
            .map(|t| t.since(SimTime::from_secs(60)).as_secs_f64());

        // False positives over three clean runs.
        let mut false_alerts = 0u64;
        for seed in [31u64, 32, 33] {
            let mut clean = Worksite::new(&config, seed);
            clean.run(SimDuration::from_secs(240));
            false_alerts += clean
                .metrics()
                .alert_count(silvasec::ids::AlertKind::GnssSpoofing);
        }
        (ttd, false_alerts)
    });
    for (&required, (ttd, false_alerts)) in confirmations.iter().zip(&rows) {
        println!(
            "{required:>14} {:>16} {:>22}",
            ttd.map_or("undetected".into(), |t| format!("{t:.1}")),
            false_alerts
        );
    }
    println!();
}

fn main() {
    println!("Design-choice ablations\n");
    drone_altitude_ablation();
    clear_delay_ablation();
    nav_confirmation_ablation();
    println!("shapes to verify: (1) ~35 m is the sweet spot — enough to clear 25 m");
    println!("ridges, still inside the camera's 60 m range (80 m+ sees nothing: the");
    println!("vantage point is bounded by sensor range, a real dimensioning rule);");
    println!("(2) short clear delays oscillate (most stop events at 0 s), long ones");
    println!("trade distance for standstill; (3) each added confirmation costs ~0.5 s");
    println!("of detection latency while false positives stay at zero — the base");
    println!("tolerance, not the confirmation count, carries the FP budget here.");
}
