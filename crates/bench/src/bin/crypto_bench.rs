//! **Crypto fast-path benchmark** — the machine-readable datapoints
//! behind `BENCH_crypto.json`.
//!
//! Times the scalar-multiplication fast paths of `silvasec-crypto`
//! against the frozen naive reference in the **same run**, on the same
//! inputs:
//!
//! * `scalar_mul` on the basepoint (the shared-table path that keygen
//!   and signing use) vs `scalar_mul_naive` on the basepoint;
//! * `scalar_mul` on an arbitrary point (the constant-time 4-bit window)
//!   vs `scalar_mul_naive` on the same point;
//! * `double_scalar_mul` in the verification shape (basepoint + dynamic
//!   key, one shared Straus doubling chain) vs `double_scalar_mul_naive`;
//! * Schnorr `sign`, `verify` and `verify_batch` (batch of 16, per-sig);
//! * SHA-256 and ChaCha20 bulk throughput for context.
//!
//! Every timed pair also cross-checks that fast and naive paths produce
//! byte-identical encodings; a digest over every cross-checked point is
//! stored in the entry (`check_digest`), so two entries from the same
//! code are identical modulo the timing fields. One run entry is
//! **appended** to the trajectory file so successive revisions
//! accumulate (same pattern as `perf_snapshot`).
//!
//! Run keys come from the environment, never from a wall clock inside
//! the measurement:
//!
//! * `SILVASEC_GIT_SHA` — revision identifier (default `unknown`);
//! * `SILVASEC_RUN_TS` — timestamp string (default `unspecified`);
//! * `SILVASEC_CRYPTO_OUT` — output path (default `BENCH_crypto.json`
//!   at the workspace root).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin crypto_bench`
//! (pass `--smoke` for a CI-sized run: reduced iterations, correctness
//! and batch-beats-sequential assertions only, no speedup floors, no
//! trajectory append).

use serde::Serialize;
use silvasec::crypto::edwards::EdwardsPoint;
use silvasec::crypto::scalar::Scalar;
use silvasec::crypto::schnorr::{self, BatchItem, Signature, SigningKey, VerifyingKey};
use silvasec::crypto::{chacha20, sha256};
use silvasec_bench::{append_trajectory_run, run_keys, trajectory_out_path};
use std::time::Instant;

const BATCH_SIZE: usize = 16;

/// Deterministic scalar stream (xorshift64*), so every run times the
/// same inputs and the cross-check digest is reproducible.
fn scalar_stream(seed: u64, n: usize) -> Vec<Scalar> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..n)
        .map(|_| {
            let mut wide = [0u8; 64];
            for chunk in wide.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            Scalar::from_bytes_mod_order_wide(&wide)
        })
        .collect()
}

/// Times `f` over `iters` calls, best of three passes, returning
/// (seconds per call, ops per second).
fn time_best_of_3<T>(iters: usize, mut f: impl FnMut(usize) -> T) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for i in 0..iters {
            std::hint::black_box(f(i));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let per_call = best / iters as f64;
    (per_call, 1.0 / per_call.max(1e-12))
}

/// Times a fast/reference pair with per-iteration interleaving and
/// returns (fast ops/s, reference ops/s, speedup). The two closures
/// alternate call by call, so each fast call runs within microseconds
/// of the reference call it is compared against — on a shared 1-core
/// host the absolute timings can swing by tens of percent over tens
/// of milliseconds, and timing the two sides in separate blocks would
/// compare a throttled window against an unthrottled one. The speedup
/// is the median of per-round total-time ratios; throughputs are
/// best-of-rounds. Per-call `Instant` overhead is negligible against
/// the multi-microsecond calls this is used for.
fn time_pair<T, U>(
    iters: usize,
    mut fast: impl FnMut(usize) -> T,
    mut reference: impl FnMut(usize) -> U,
) -> (f64, f64, f64) {
    const ROUNDS: usize = 5;
    let mut best_fast = f64::INFINITY;
    let mut best_ref = f64::INFINITY;
    let mut ratios = [0.0f64; ROUNDS];
    for ratio in &mut ratios {
        let mut tf = 0.0f64;
        let mut tr = 0.0f64;
        for i in 0..iters {
            let t0 = Instant::now();
            std::hint::black_box(fast(i));
            tf += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            std::hint::black_box(reference(i));
            tr += t0.elapsed().as_secs_f64();
        }
        let tf = tf.max(1e-12);
        best_fast = best_fast.min(tf);
        best_ref = best_ref.min(tr);
        *ratio = tr / tf;
    }
    ratios.sort_by(f64::total_cmp);
    (
        iters as f64 / best_fast,
        iters as f64 / best_ref,
        ratios[ROUNDS / 2],
    )
}

#[derive(Debug, Serialize)]
struct RunEntry {
    /// Revision identifier (`SILVASEC_GIT_SHA`, `unknown` if unset).
    git_sha: String,
    /// Run timestamp (`SILVASEC_RUN_TS`, `unspecified` if unset).
    run_ts: String,
    /// Iterations per timed scalar-mul pair.
    iters: usize,
    /// Width of the static basepoint NAF window the verification-side
    /// Straus path ran with — tags each entry so sign/verify deltas
    /// across revisions are attributable to table-width changes.
    basepoint_naf_window: u32,
    /// SHA-256 over every cross-checked point encoding — identical for
    /// two runs of the same code, so entries are comparable modulo the
    /// timing fields.
    check_digest: String,
    /// Basepoint `scalar_mul` (shared-table path), ops/s.
    scalar_mul_basepoint_per_s: f64,
    /// Naive basepoint scalar mul, ops/s (same inputs, same run).
    scalar_mul_basepoint_naive_per_s: f64,
    /// Basepoint fast-path speedup over naive.
    scalar_mul_basepoint_speedup: f64,
    /// Arbitrary-point `scalar_mul` (CT 4-bit window), ops/s.
    scalar_mul_window_per_s: f64,
    /// Naive arbitrary-point scalar mul, ops/s.
    scalar_mul_window_naive_per_s: f64,
    /// Arbitrary-point windowed speedup over naive.
    scalar_mul_window_speedup: f64,
    /// `double_scalar_mul` in the verification shape, ops/s.
    double_scalar_mul_per_s: f64,
    /// Naive double scalar mul, ops/s.
    double_scalar_mul_naive_per_s: f64,
    /// Straus speedup over naive.
    double_scalar_mul_speedup: f64,
    /// Schnorr signs per second.
    sign_per_s: f64,
    /// Schnorr individual verifies per second.
    verify_per_s: f64,
    /// Per-signature throughput inside a 16-signature batch, sigs/s.
    verify_batch16_per_sig_per_s: f64,
    /// Batch per-sig speedup over individual verification.
    verify_batch16_speedup: f64,
    /// SHA-256 bulk throughput, MiB/s.
    sha256_mib_per_s: f64,
    /// ChaCha20 keystream throughput, MiB/s.
    chacha20_mib_per_s: f64,
}

/// Loads the existing trajectory file and returns its `runs` array.
fn batch_fixture(n: usize) -> (Vec<Vec<u8>>, Vec<Signature>, Vec<VerifyingKey>) {
    let mut messages = Vec::with_capacity(n);
    let mut signatures = Vec::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    for i in 0..n {
        let mut seed = [0u8; 32];
        seed[0] = i as u8;
        seed[1] = 0xC3;
        let sk = SigningKey::from_seed(&seed);
        let msg = format!("crypto-bench message {i}").into_bytes();
        signatures.push(sk.sign(&msg));
        keys.push(sk.verifying_key());
        messages.push(msg);
    }
    (messages, signatures, keys)
}

/// Cross-checks fast vs naive on every input pair and feeds every
/// encoding into the digest; panics on the first mismatch (the
/// proptests cover this too — the bench refuses to time wrong code).
fn cross_check(scalars: &[Scalar], points: &[EdwardsPoint]) -> String {
    let base = EdwardsPoint::basepoint();
    let mut h = sha256::Sha256::new();
    for (i, s) in scalars.iter().enumerate() {
        let p = &points[i % points.len()];
        let fast_base = base.scalar_mul(s);
        assert_eq!(
            fast_base.encode(),
            base.scalar_mul_naive(s).encode(),
            "basepoint scalar_mul diverged from naive at input {i}"
        );
        let fast_win = p.scalar_mul(s);
        assert_eq!(
            fast_win.encode(),
            p.scalar_mul_naive(s).encode(),
            "windowed scalar_mul diverged from naive at input {i}"
        );
        let b = &scalars[(i + 1) % scalars.len()];
        let fast_dsm = base.double_scalar_mul(s, p, b);
        assert_eq!(
            fast_dsm.encode(),
            base.double_scalar_mul_naive(s, p, b).encode(),
            "double_scalar_mul diverged from naive at input {i}"
        );
        h.update(&fast_base.encode());
        h.update(&fast_win.encode());
        h.update(&fast_dsm.encode());
    }
    let digest = h.finalize();
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 8 } else { 64 };
    let check_n = if smoke { 8 } else { 24 };

    let scalars = scalar_stream(0xC0FF_EE00, iters.max(check_n) + 1);
    let base = EdwardsPoint::basepoint();
    // A handful of arbitrary points with no relation to the basepoint
    // table (scalar multiples of B, but unknown to `scalar_mul`, which
    // dispatches on pointer-free equality with B only).
    let points: Vec<EdwardsPoint> = scalar_stream(0xD15E_A5E5, 4)
        .iter()
        .map(|s| base.scalar_mul_naive(s))
        .collect();

    eprintln!("crypto_bench: cross-checking fast paths against the naive reference");
    let check_digest = cross_check(&scalars[..check_n], &points);
    let check_digest_again = cross_check(&scalars[..check_n], &points);
    assert_eq!(
        check_digest, check_digest_again,
        "cross-check digest must be deterministic within a run"
    );

    eprintln!("crypto_bench: timing scalar multiplication ({iters} iters, paired rounds)");
    let (bp_fast, bp_naive, bp_speedup) = time_pair(
        iters,
        |i| base.scalar_mul(&scalars[i]),
        |i| base.scalar_mul_naive(&scalars[i]),
    );
    let (win_fast, win_naive, win_speedup) = time_pair(
        iters,
        |i| points[i % 4].scalar_mul(&scalars[i]),
        |i| points[i % 4].scalar_mul_naive(&scalars[i]),
    );
    let (dsm_fast, dsm_naive, dsm_speedup) = time_pair(
        iters,
        |i| base.double_scalar_mul(&scalars[i], &points[i % 4], &scalars[i + 1]),
        |i| base.double_scalar_mul_naive(&scalars[i], &points[i % 4], &scalars[i + 1]),
    );

    eprintln!("crypto_bench: timing Schnorr sign/verify/batch");
    let sk = SigningKey::from_seed(&[0x5Eu8; 32]);
    let vk = sk.verifying_key();
    let msg = b"crypto-bench sign/verify message";
    let sig = sk.sign(msg);
    let (_, sign_per_s) = time_best_of_3(iters, |_| sk.sign(msg));
    let (_, verify_per_s) = time_best_of_3(iters, |_| vk.verify(msg, &sig).unwrap());

    let (messages, signatures, keys) = batch_fixture(BATCH_SIZE);
    let items: Vec<BatchItem<'_>> = (0..BATCH_SIZE)
        .map(|i| BatchItem {
            message: &messages[i],
            signature: &signatures[i],
            key: &keys[i],
        })
        .collect();
    let batch_iters = (iters / 4).max(2);
    // The same 16 signatures verified one by one form the reference
    // for the batch speedup.
    let (batch_per_s, _, batch_speedup) = time_pair(
        batch_iters,
        |_| assert!(schnorr::verify_batch(&items)),
        |_| {
            for i in 0..BATCH_SIZE {
                keys[i].verify(&messages[i], &signatures[i]).unwrap();
            }
        },
    );
    let verify_batch16_per_sig_per_s = BATCH_SIZE as f64 * batch_per_s;

    eprintln!("crypto_bench: timing bulk primitives");
    let bulk = vec![0xA5u8; 1 << 20];
    let bulk_iters = if smoke { 2 } else { 8 };
    let (sha_s, _) = time_best_of_3(bulk_iters, |_| sha256::digest(&bulk));
    let cipher = chacha20::ChaCha20::new(&[7u8; 32]);
    let mut stream_buf = bulk.clone();
    let (chacha_s, _) = time_best_of_3(bulk_iters, |_| {
        cipher.apply_keystream(&[9u8; 12], 0, &mut stream_buf);
    });
    let mib = bulk.len() as f64 / (1024.0 * 1024.0);

    let (git_sha, run_ts) = run_keys();
    let entry = RunEntry {
        git_sha,
        run_ts,
        iters,
        basepoint_naf_window: silvasec::crypto::edwards::BASEPOINT_NAF_WINDOW,
        check_digest,
        scalar_mul_basepoint_per_s: bp_fast,
        scalar_mul_basepoint_naive_per_s: bp_naive,
        scalar_mul_basepoint_speedup: bp_speedup,
        scalar_mul_window_per_s: win_fast,
        scalar_mul_window_naive_per_s: win_naive,
        scalar_mul_window_speedup: win_speedup,
        double_scalar_mul_per_s: dsm_fast,
        double_scalar_mul_naive_per_s: dsm_naive,
        double_scalar_mul_speedup: dsm_speedup,
        sign_per_s,
        verify_per_s,
        verify_batch16_per_sig_per_s,
        verify_batch16_speedup: batch_speedup,
        sha256_mib_per_s: mib / sha_s.max(1e-12),
        chacha20_mib_per_s: mib / chacha_s.max(1e-12),
    };

    println!(
        "{}",
        serde_json::to_string_pretty(&entry).expect("entry serializes")
    );

    // The batch must beat sequential verification of the same set in
    // every mode — that is the whole point of sharing the doubling
    // chain, and it holds with a wide margin even on a noisy host.
    assert!(
        entry.verify_batch16_speedup > 1.0,
        "batch verification no faster than sequential (speedup {:.2})",
        entry.verify_batch16_speedup
    );

    if smoke {
        eprintln!("smoke mode: skipping speedup floors and trajectory append");
        return;
    }

    // Full-run acceptance floors: the fast paths must beat the naive
    // reference decisively, measured on the same inputs in this run.
    assert!(
        entry.double_scalar_mul_speedup >= 3.0,
        "double_scalar_mul must be at least 3x naive (got {:.2}x)",
        entry.double_scalar_mul_speedup
    );
    assert!(
        entry.scalar_mul_basepoint_speedup >= 2.0,
        "basepoint scalar_mul must be at least 2x naive (got {:.2}x)",
        entry.scalar_mul_basepoint_speedup
    );

    let out_path = trajectory_out_path("SILVASEC_CRYPTO_OUT", "BENCH_crypto.json");
    append_trajectory_run(&out_path, "silvasec-crypto-trajectory/1", None, &entry);
}
