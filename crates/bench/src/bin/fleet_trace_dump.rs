//! **Fleet trace dump** — run the E10 fleet OTA rollout once and write
//! the resulting flight-recorder security trace to a JSONL file.
//!
//! Companion to `trace_compare`: where that tool diffs two traces,
//! this one materialises a single trace on disk so a "before" snapshot
//! can be captured, the code changed, and the "after" trace compared
//! byte for byte (`trace_compare before.jsonl after.jsonl`). That is
//! exactly the workflow used to prove that performance work on the
//! crypto hot path leaves fleet rollout outcomes bit-identical.
//!
//! Run with:
//! `cargo run --release -p silvasec-bench --bin fleet_trace_dump -- <out.jsonl> [sites] [seed]`
//! (defaults: 64 sites, seed 11, clean scenario).

use silvasec::experiments::{run_fleet_rollout, FleetScenario};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(out) = args.first() else {
        eprintln!("usage: fleet_trace_dump <out.jsonl> [sites] [seed]");
        return ExitCode::FAILURE;
    };
    let sites: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(11);

    let (report, trace) = run_fleet_rollout(sites, seed, FleetScenario::Clean);
    if let Err(e) = std::fs::write(out, &trace) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} events ({} bytes) to {out}: sites={sites} seed={seed} applied={} rejected={}",
        trace.lines().count(),
        trace.len(),
        report.applied_sites,
        report.rejected_sites,
    );
    ExitCode::SUCCESS
}
