//! **E13: incident-response operations** — the machine-readable
//! datapoints behind `BENCH_ops.json`.
//!
//! Sweeps 10 → 10k concurrent incidents through the deterministic ops
//! engine (`silvasec-ops`) against the scripted executor of
//! `experiments::run_ops_load`, and on **every** point proves the
//! subsystem's three contracts before timing is even reported:
//!
//! * **Determinism** — the same `(incidents, seed)` twice yields a
//!   byte-identical run-store digest *and* byte-identical `Ops*`
//!   telemetry JSONL;
//! * **Replayability** — a run store rebuilt from nothing but the
//!   recorded trace is digest-identical to the live store
//!   (`first_divergence` must be `None`);
//! * **Lease accounting** — no incident is lost or duplicated: every
//!   accepted incident either settled (closed / escalated / rejected /
//!   dead-lettered) or folded into an open run as a duplicate, and the
//!   durable queue's conservation invariant holds at idle.
//!
//! Run keys come from the environment, never from a wall clock inside
//! the simulation:
//!
//! * `SILVASEC_GIT_SHA` — revision identifier (default `unknown`);
//! * `SILVASEC_RUN_TS` — timestamp string (default `unspecified`);
//! * `SILVASEC_OPS_OUT` — output path (default `BENCH_ops.json` at the
//!   workspace root).
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp13_ops`
//! (pass `--smoke` for a CI-sized run: 10/100-incident points,
//! contracts asserted, no trajectory append).

use serde::Serialize;
use silvasec::experiments::run_ops_load;
use silvasec::ops::RunStore;
use silvasec_bench::{append_trajectory_run, run_keys, trajectory_out_path};
use std::time::Instant;

const SIZES: [usize; 4] = [10, 100, 1_000, 10_000];
const SMOKE_SIZES: [usize; 2] = [10, 100];
const SEED: u64 = 13;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[derive(Debug, Serialize)]
struct OpsRow {
    /// Incidents submitted at this point.
    incidents: usize,
    /// Wall-clock of the first (timed) run, seconds.
    wall_s: f64,
    /// Incidents driven to settlement per wall-clock second.
    incidents_per_s: f64,
    /// Runs that closed verified.
    closed: u64,
    /// Runs that escalated to a human.
    escalated: u64,
    /// Runs rejected at triage (informational severity).
    rejected: u64,
    /// Runs dead-lettered after exhausting the delivery budget.
    dead_lettered: u64,
    /// Reports folded into an already-open run (dedup).
    duplicates_folded: u64,
    /// Queue leases granted (including redeliveries).
    leases: u64,
    /// Redeliveries after lease expiry or nack backoff.
    redelivered: u64,
    /// Hex SHA-256 of the canonical run-store text.
    store_digest: String,
    /// Lines in the `Ops*` telemetry trace the store replays from.
    trace_lines: usize,
}

#[derive(Debug, Serialize)]
struct RunEntry {
    /// Revision identifier (`SILVASEC_GIT_SHA`, `unknown` if unset).
    git_sha: String,
    /// Run timestamp (`SILVASEC_RUN_TS`, `unspecified` if unset).
    run_ts: String,
    /// Seed keying arrivals, backoff jitter and review verdicts.
    seed: u64,
    /// Whether this was a reduced CI run.
    smoke: bool,
    /// Same-seed twin produced byte-identical store + trace at every point.
    deterministic_same_seed: bool,
    /// Store replayed from the trace was digest-identical at every point.
    replay_identical: bool,
    /// Queue conservation held at idle at every point.
    queue_conserves: bool,
    /// Incidents per second at the largest point.
    incidents_per_s_max_scale: f64,
    /// One row per sweep point.
    rows: Vec<OpsRow>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &SMOKE_SIZES } else { &SIZES };

    let mut rows = Vec::new();
    eprintln!("exp13_ops: sweeping {sizes:?} incidents (seed {SEED})");
    for &incidents in sizes {
        let t0 = Instant::now();
        let (engine, trace) = run_ops_load(incidents, SEED);
        let wall_s = t0.elapsed().as_secs_f64();

        // Determinism: the same-seed twin must be byte-identical.
        let (twin, twin_trace) = run_ops_load(incidents, SEED);
        assert_eq!(
            twin.store().digest(),
            engine.store().digest(),
            "same-seed run-store digests diverged at {incidents} incidents"
        );
        assert_eq!(
            twin_trace, trace,
            "same-seed telemetry traces diverged at {incidents} incidents"
        );

        // Replayability: the store rebuilt from the trace alone matches.
        let replayed = RunStore::replay_from_jsonl(&trace).expect("trace replays");
        assert_eq!(
            replayed.digest(),
            engine.store().digest(),
            "replayed store diverged at {incidents} incidents: {:?}",
            engine.store().first_divergence(&replayed)
        );

        // Lease accounting: nothing lost, nothing duplicated.
        let store = engine.store().counters();
        let queue = engine.queue_counters();
        assert_eq!(
            store.settled() + store.duplicates_folded,
            incidents as u64,
            "incident accounting must balance at {incidents}: {store:?}"
        );
        assert_eq!(
            store.opened, queue.enqueued,
            "every opened run queued exactly once"
        );
        assert_eq!(
            queue.enqueued,
            queue.acked + queue.dead_lettered,
            "every queued run settled exactly once: {queue:?}"
        );
        assert!(engine.queue_conserves(), "queue conservation at idle");

        let row = OpsRow {
            incidents,
            wall_s,
            incidents_per_s: incidents as f64 / wall_s.max(1e-9),
            closed: store.closed,
            escalated: store.escalated,
            rejected: store.rejected,
            dead_lettered: store.dead_lettered,
            duplicates_folded: store.duplicates_folded,
            leases: queue.leased,
            redelivered: queue.redelivered,
            store_digest: hex(&engine.store().digest()),
            trace_lines: trace.lines().count(),
        };
        eprintln!(
            "  {incidents:>6} incidents: {wall_s:>6.3} s wall, {:>9.0}/s, \
             {} closed / {} escalated / {} rejected / {} dead-lettered, \
             {} folded, {} leases",
            row.incidents_per_s,
            row.closed,
            row.escalated,
            row.rejected,
            row.dead_lettered,
            row.duplicates_folded,
            row.leases
        );
        rows.push(row);
    }

    let last = rows.last().expect("non-empty sweep");
    let (git_sha, run_ts) = run_keys();
    let entry = RunEntry {
        git_sha,
        run_ts,
        seed: SEED,
        smoke,
        deterministic_same_seed: true,
        replay_identical: true,
        queue_conserves: true,
        incidents_per_s_max_scale: last.incidents_per_s,
        rows,
    };

    println!("--- E13: incident-response operations (seed {SEED}) ---");
    println!(
        "{:>9} {:>9} {:>12} {:>8} {:>10} {:>9} {:>13} {:>8}",
        "incidents",
        "wall (s)",
        "incidents/s",
        "closed",
        "escalated",
        "rejected",
        "dead-lettered",
        "folded"
    );
    for row in &entry.rows {
        println!(
            "{:>9} {:>9.3} {:>12.0} {:>8} {:>10} {:>9} {:>13} {:>8}",
            row.incidents,
            row.wall_s,
            row.incidents_per_s,
            row.closed,
            row.escalated,
            row.rejected,
            row.dead_lettered,
            row.duplicates_folded
        );
    }
    println!("determinism: same-seed twin byte-identical, replay digest-identical");
    println!("accounting: 0 lost, 0 duplicated, queue conserves at idle");

    if smoke {
        eprintln!("smoke mode: skipping trajectory append");
        return;
    }

    let out_path = trajectory_out_path("SILVASEC_OPS_OUT", "BENCH_ops.json");
    append_trajectory_run(&out_path, "silvasec-ops-trajectory/1", None, &entry);
}
