//! **E9** — the SOTIF evidence loop (ISO 21448, the paper's Sec. III-C):
//! collect approach-episode evidence for the people-detection function
//! per weather condition and reclassify each triggering condition into
//! the known/unknown × safe/unsafe areas.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin exp9_sotif`

use silvasec::experiments::sotif_evidence;
use silvasec::risk::sotif::Evidence;
use silvasec::sim::time::SimDuration;
use silvasec::sim::weather::Weather;
use silvasec::sweep::par_sweep;

fn main() {
    println!("E9 — SOTIF evidence for the collaborative people-detection function");
    println!("(unsafe episode = worker reaches 15 m still undetected; acceptance");
    println!(" threshold: unsafe-rate upper bound ≤ 0.05; 3 seeds × 40 min each)\n");
    println!(
        "{:<12} {:>9} {:>8} {:>12} {:>13} {:>14}",
        "weather", "episodes", "unsafe", "rate", "upper bound", "classification"
    );
    let weathers = [
        Weather::Clear,
        Weather::Overcast,
        Weather::Rain,
        Weather::HeavyRain,
        Weather::Fog,
        Weather::Snow,
    ];
    let seeds = [7u64, 19, 31];
    // The whole weather × seed grid sweeps in parallel; per-weather
    // evidence is folded in seed order afterwards.
    let points: Vec<(Weather, u64)> = weathers
        .iter()
        .flat_map(|&w| seeds.iter().map(move |&s| (w, s)))
        .collect();
    let evidence = par_sweep(&points, |&(w, s)| {
        sotif_evidence(w, s, SimDuration::from_secs(2400))
    });
    for (weather, per_seed) in weathers.iter().zip(evidence.chunks(seeds.len())) {
        let mut total = Evidence::default();
        for e in per_seed {
            total.exposures += e.exposures;
            total.unsafe_outcomes += e.unsafe_outcomes;
        }
        println!(
            "{:<12} {:>9} {:>8} {:>11.1}% {:>12.1}% {:>14}",
            format!("{weather:?}"),
            total.exposures,
            total.unsafe_outcomes,
            total.unsafe_rate() * 100.0,
            total.unsafe_rate_upper_bound() * 100.0,
            format!("{:?}", total.classify(0.05))
        );
    }
    println!("\nshape to verify: all conditions except fog classify KnownSafe — the");
    println!("drone redundancy absorbs rain and snow degradation — while fog stays");
    println!("KnownUnsafe with a large margin. The pre-declared triggering condition");
    println!("(tc.fog) gets quantitative evidence, and the operational limit (no");
    println!("autonomous operation in fog) follows directly.");
}
