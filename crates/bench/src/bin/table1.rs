//! Regenerates the paper's **Table I** (forestry-domain characteristics)
//! in machine-readable form, extended with the threat classes and
//! controls each characteristic maps to, and a measured validation: for
//! every attack class in the catalog, whether the deployed controls
//! blocked or detected it in simulation.
//!
//! Run with: `cargo run --release -p silvasec-bench --bin table1`

use silvasec::experiments::{attack_matrix, expected_alert};
use silvasec::prelude::*;
use silvasec::risk::catalog::ForestryCharacteristic;
use silvasec_sim::time::SimDuration;
use std::collections::HashMap;

fn main() {
    println!("TABLE I — specific characteristics of the forestry domain");
    println!("(paper rows, extended with machine-readable threat/control mappings)\n");
    for c in ForestryCharacteristic::ALL {
        println!("• {}", c.title());
        println!("    {}", c.description());
        if !c.attack_classes().is_empty() {
            println!("    attack classes: {}", c.attack_classes().join(", "));
        }
        println!("    controls:       {}", c.controls().join(", "));
    }

    println!("\nvalidation: catalog attack classes exercised against the hardened worksite");
    println!("(180 s runs, attack from t=60 s; detection by the deployed IDS)\n");
    let rows = attack_matrix(SecurityPosture::secure(), 3, SimDuration::from_secs(300));
    let by_attack: HashMap<&str, _> = rows.iter().map(|r| (r.attack.as_str(), r)).collect();
    println!(
        "{:<18} {:>9} {:>10} {:>13} {:>14}",
        "attack class", "detected", "ttd (s)", "productivity", "forged accept"
    );
    for c in ForestryCharacteristic::ALL {
        for class in c.attack_classes() {
            if let Some(r) = by_attack.get(class) {
                println!(
                    "{:<18} {:>9} {:>10} {:>12.0}% {:>14}",
                    r.attack,
                    if r.detected { "yes" } else { "no" },
                    r.time_to_detect_s.map_or("-".into(), |t| format!("{t:.1}")),
                    r.productivity_ratio * 100.0,
                    r.forged_accepted
                );
            } else if expected_alert_name(class).is_none() {
                println!("{class:<18} {:>9}", "(blocked at boot/PKI — see exp7)");
            }
        }
    }
}

fn expected_alert_name(class: &str) -> Option<String> {
    let kind = match class {
        "rf-jamming" => AttackKind::RfJamming,
        "deauth-flood" => AttackKind::DeauthFlood,
        "gnss-spoofing" => AttackKind::GnssSpoofing,
        "gnss-jamming" => AttackKind::GnssJamming,
        "camera-blinding" => AttackKind::CameraBlinding,
        "replay" => AttackKind::Replay,
        "rogue-node" => AttackKind::RogueNode,
        "firmware-tampering" => AttackKind::FirmwareTampering,
        _ => return None,
    };
    expected_alert(kind).map(|a| a.to_string())
}
