//! E6 (part 2): secure-channel cost on safety traffic — handshake
//! latency and per-record seal/open across message sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use silvasec_bench::session_pair;
use std::hint::black_box;

fn bench_handshake(c: &mut Criterion) {
    let mut group = c.benchmark_group("handshake");
    group.sample_size(10);
    group.bench_function("full-mutual-handshake", |b| {
        b.iter(|| session_pair(black_box(1)));
    });
    group.finish();
}

fn bench_records(c: &mut Criterion) {
    let mut group = c.benchmark_group("records");
    for size in [32usize, 256, 1024, 8192] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &size, |b, &s| {
            let (mut a, _) = session_pair(2);
            let msg = vec![0u8; s];
            b.iter(|| a.seal(black_box(&msg)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("seal-open", size), &size, |b, &s| {
            let (mut a, mut bb) = session_pair(3);
            let msg = vec![0u8; s];
            b.iter(|| {
                let rec = a.seal(black_box(&msg)).unwrap();
                bb.open(&rec).unwrap()
            });
        });
        // The plaintext baseline: a memcpy-equivalent.
        group.bench_with_input(BenchmarkId::new("plaintext-copy", size), &size, |b, &s| {
            let msg = vec![0u8; s];
            b.iter(|| black_box(msg.clone()));
        });
    }
    group.finish();
}

fn bench_rekey(c: &mut Criterion) {
    c.bench_function("rekey", |b| {
        let (mut a, _) = session_pair(4);
        b.iter(|| a.rekey());
    });
}

criterion_group!(benches, bench_handshake, bench_records, bench_rekey);
criterion_main!(benches);
