//! E3 (tara_scaling): risk-engine cost versus model size, plus the
//! built-in worksite model assessment and the assurance-case build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silvasec_risk::assets::{Asset, AssetCategory, SecurityProperty};
use silvasec_risk::catalog;
use silvasec_risk::feasibility::AttackPotential;
use silvasec_risk::impact::{ImpactCategory, ImpactLevel, ImpactRating};
use silvasec_risk::tara::Tara;
use silvasec_risk::threat::{AttackStep, DamageScenario, ThreatScenario, WorksiteModel};
use std::hint::black_box;

/// Builds a synthetic model with `n` assets and ~2n threats.
fn synthetic_model(n: usize) -> WorksiteModel {
    let mut model = WorksiteModel::default();
    for i in 0..n {
        model.assets.push(Asset::new(
            format!("asset-{i}"),
            format!("asset {i}"),
            AssetCategory::Sensor,
            vec![SecurityProperty::Integrity, SecurityProperty::Availability],
        ));
        model.damage_scenarios.push(DamageScenario {
            id: format!("ds-{i}"),
            asset_id: format!("asset-{i}"),
            violated_property: SecurityProperty::Integrity,
            description: "damage".into(),
            impact: ImpactRating::new().with(
                ImpactCategory::Operational,
                if i % 3 == 0 {
                    ImpactLevel::Severe
                } else {
                    ImpactLevel::Major
                },
            ),
        });
        for j in 0..2 {
            model.threats.push(ThreatScenario {
                id: format!("ts-{i}-{j}"),
                damage_scenario_id: format!("ds-{i}"),
                attack_class: None,
                threat_agent: "agent".into(),
                attack_paths: vec![vec![AttackStep {
                    action: "attack".into(),
                    potential: AttackPotential::new((i % 20) as u8, (j * 3) as u8, 0, 0, 0),
                }]],
            });
        }
    }
    model
}

fn bench_tara_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tara-scaling");
    for n in [10usize, 50, 200, 800] {
        let model = synthetic_model(n);
        group.bench_with_input(BenchmarkId::new("assess", n), &model, |b, m| {
            b.iter(|| Tara::assess(black_box(m)));
        });
    }
    group.finish();
}

fn bench_worksite_pipeline(c: &mut Criterion) {
    let model = catalog::worksite_model();
    c.bench_function("worksite-tara", |b| {
        b.iter(|| Tara::assess(black_box(&model)));
    });
    let report = Tara::assess(&model);
    c.bench_function("worksite-assurance-build", |b| {
        b.iter(|| silvasec_assurance::builder::build_security_case(black_box(&report), "w"));
    });
    let case = silvasec_assurance::builder::build_security_case(&report, "w");
    c.bench_function("worksite-assurance-check", |b| {
        b.iter(|| {
            let defects = case.check();
            assert!(defects.is_empty());
        });
    });
}

criterion_group!(benches, bench_tara_scaling, bench_worksite_pipeline);
criterion_main!(benches);
