//! E4: modular vs monolithic SoS assurance re-validation cost as the
//! number of constituent systems grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silvasec::experiments::build_sos_composition;
use std::hint::black_box;

fn bench_composition_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("sos-assurance");
    for n in [2usize, 8, 32, 64] {
        let composition = build_sos_composition(n, 10);
        group.bench_with_input(
            BenchmarkId::new("monolithic-check", n),
            &composition,
            |b, comp| {
                b.iter(|| {
                    let defects = comp.check_all();
                    assert!(defects.is_empty());
                    black_box(defects)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("modular-recheck-one", n),
            &composition,
            |b, comp| {
                b.iter(|| {
                    let defects = comp.check_incremental("constituent-0");
                    assert!(defects.is_empty());
                    black_box(defects)
                });
            },
        );
    }
    group.finish();
}

fn bench_composition_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("sos-build");
    for n in [8usize, 64] {
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, &n| {
            b.iter(|| build_sos_composition(black_box(n), 10));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_composition_checks, bench_composition_build);
criterion_main!(benches);
