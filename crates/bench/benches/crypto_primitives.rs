//! E6 (part 1): throughput of the from-scratch crypto primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use silvasec_crypto::aead::ChaCha20Poly1305;
use silvasec_crypto::chacha20::ChaCha20;
use silvasec_crypto::hmac::HmacSha256;
use silvasec_crypto::schnorr::SigningKey;
use silvasec_crypto::{sha256, x25519};
use std::hint::black_box;

fn bench_hash_and_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash-mac");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256::digest(black_box(d)));
        });
        group.bench_with_input(BenchmarkId::new("hmac-sha256", size), &data, |b, d| {
            b.iter(|| HmacSha256::mac(b"key", black_box(d)));
        });
    }
    group.finish();
}

fn bench_cipher(c: &mut Criterion) {
    let mut group = c.benchmark_group("cipher");
    let cipher = ChaCha20::new(&[7u8; 32]);
    let aead = ChaCha20Poly1305::new(&[7u8; 32]);
    for size in [64usize, 1024, 16 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("chacha20", size), &size, |b, &s| {
            let mut data = vec![0u8; s];
            b.iter(|| cipher.apply_keystream(&[0u8; 12], 1, black_box(&mut data)));
        });
        group.bench_with_input(
            BenchmarkId::new("chacha20poly1305-seal", size),
            &size,
            |b, &s| {
                let data = vec![0u8; s];
                b.iter(|| aead.seal(&[0u8; 12], b"", black_box(&data)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("chacha20poly1305-open", size),
            &size,
            |b, &s| {
                let sealed = aead.seal(&[0u8; 12], b"", &vec![0u8; s]);
                b.iter(|| aead.open(&[0u8; 12], b"", black_box(&sealed)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_public_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("public-key");
    group.sample_size(20);
    group.bench_function("x25519-dh", |b| {
        let (private, _) = x25519::keypair(&[1u8; 32]);
        let (_, peer) = x25519::keypair(&[2u8; 32]);
        b.iter(|| x25519::diffie_hellman(black_box(&private), black_box(&peer)));
    });
    let sk = SigningKey::from_seed(&[3u8; 32]);
    let msg = [0u8; 128];
    group.bench_function("schnorr-sign", |b| {
        b.iter(|| sk.sign(black_box(&msg)));
    });
    let sig = sk.sign(&msg);
    let vk = sk.verifying_key();
    group.bench_function("schnorr-verify", |b| {
        b.iter(|| vk.verify(black_box(&msg), black_box(&sig)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_hash_and_mac, bench_cipher, bench_public_key);
criterion_main!(benches);
