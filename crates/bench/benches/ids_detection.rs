//! E1 (bench form): IDS observation throughput — the cost of running the
//! detectors at worksite tick rate.

use criterion::{criterion_group, criterion_main, Criterion};
use silvasec_ids::prelude::*;
use silvasec_sim::geom::Vec2;
use silvasec_sim::time::SimTime;
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    c.bench_function("ids-radio-observe", |b| {
        let mut ids = WorksiteIds::new(IdsConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            ids.observe_radio(black_box(&RadioObservation {
                node_label: "fw".into(),
                at: SimTime::from_millis(t * 500),
                noise_dbm: Some(-94.0 + (t % 7) as f64),
                delivery_ratio: 0.97,
                deauth_frames: 0,
                auth_failures: 0,
                unknown_assoc_requests: 0,
            }))
        });
    });

    c.bench_function("ids-nav-observe", |b| {
        let mut ids = WorksiteIds::new(IdsConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            ids.observe_nav(black_box(&NavObservation {
                machine_label: "fw".into(),
                at: SimTime::from_millis(t * 500),
                gnss_fix: Some(Vec2::new(t as f64, 0.0)),
                dead_reckoned: Vec2::new(t as f64, 0.5),
                moving: true,
            }))
        });
    });

    c.bench_function("ids-sensor-observe", |b| {
        let mut ids = WorksiteIds::new(IdsConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            ids.observe_sensor(black_box(&SensorObservation {
                sensor_label: "fw/cam".into(),
                at: SimTime::from_millis(t * 500),
                feature_count: 15 + (t % 5) as u32,
            }))
        });
    });
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
