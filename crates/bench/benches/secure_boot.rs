//! E7: verified-boot overhead versus firmware image size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use silvasec_crypto::schnorr::SigningKey;
use silvasec_secure_boot::prelude::*;
use std::hint::black_box;

fn bench_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("verified-boot");
    group.sample_size(20);
    let signer = SigningKey::from_seed(&[1u8; 32]);
    for size_kib in [16usize, 128, 1024] {
        let payload = vec![0x5au8; size_kib * 1024];
        let chain = vec![
            FirmwareImage::new("dev", FirmwareStage::Bootloader, 1, vec![0u8; 8 * 1024])
                .sign(&signer),
            FirmwareImage::new("dev", FirmwareStage::Application, 1, payload).sign(&signer),
        ];
        group.throughput(Throughput::Bytes((size_kib * 1024) as u64));
        group.bench_with_input(BenchmarkId::new("boot", size_kib), &chain, |b, chain| {
            b.iter(|| {
                let mut device = Device::new("dev", signer.verifying_key());
                let report = device.boot(black_box(chain));
                assert!(report.success);
                report
            });
        });
    }
    group.finish();
}

fn bench_attestation(c: &mut Criterion) {
    let signer = SigningKey::from_seed(&[1u8; 32]);
    let device_key = SigningKey::from_seed(&[2u8; 32]);
    let chain = vec![
        FirmwareImage::new("dev", FirmwareStage::Bootloader, 1, vec![0u8; 4096]).sign(&signer),
        FirmwareImage::new("dev", FirmwareStage::Application, 1, vec![0u8; 4096]).sign(&signer),
    ];
    let mut device = Device::new("dev", signer.verifying_key());
    let report = device.boot(&chain);
    let verifier = QuoteVerifier::new(&report.pcrs);
    let nonce = [9u8; 32];

    c.bench_function("attestation-quote", |b| {
        b.iter(|| Quote::generate(black_box(&report.pcrs), &nonce, &device_key));
    });
    let quote = Quote::generate(&report.pcrs, &nonce, &device_key);
    c.bench_function("attestation-verify", |b| {
        b.iter(|| assert!(verifier.verify(black_box(&quote), &nonce, &device_key.verifying_key())));
    });
}

criterion_group!(benches, bench_boot, bench_attestation);
criterion_main!(benches);
