//! IEC 62443 zones, conduits and security levels.
//!
//! The worksite partitions into zones (safety control, perception,
//! coordination, enterprise) joined by conduits (the radio links). Each
//! zone carries a target security level (SL-T) per foundational
//! requirement; deployed controls determine the achieved level (SL-A);
//! the gap drives hardening work.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// IEC 62443 security levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SecurityLevel {
    /// SL 0 — no particular protection.
    Sl0,
    /// SL 1 — protection against casual violation.
    Sl1,
    /// SL 2 — protection against intentional violation, low resources.
    Sl2,
    /// SL 3 — protection against sophisticated attackers.
    Sl3,
    /// SL 4 — protection against state-level attackers.
    Sl4,
}

impl SecurityLevel {
    /// Numeric value 0–4.
    #[must_use]
    pub fn value(self) -> u8 {
        match self {
            SecurityLevel::Sl0 => 0,
            SecurityLevel::Sl1 => 1,
            SecurityLevel::Sl2 => 2,
            SecurityLevel::Sl3 => 3,
            SecurityLevel::Sl4 => 4,
        }
    }
}

/// The seven IEC 62443 foundational requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FoundationalRequirement {
    /// FR1 — identification & authentication control.
    Iac,
    /// FR2 — use control.
    Uc,
    /// FR3 — system integrity.
    Si,
    /// FR4 — data confidentiality.
    Dc,
    /// FR5 — restricted data flow.
    Rdf,
    /// FR6 — timely response to events.
    Tre,
    /// FR7 — resource availability.
    Ra,
}

impl FoundationalRequirement {
    /// All requirements.
    pub const ALL: [FoundationalRequirement; 7] = [
        FoundationalRequirement::Iac,
        FoundationalRequirement::Uc,
        FoundationalRequirement::Si,
        FoundationalRequirement::Dc,
        FoundationalRequirement::Rdf,
        FoundationalRequirement::Tre,
        FoundationalRequirement::Ra,
    ];
}

/// A security-level vector over the seven foundational requirements.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SlVector(BTreeMap<FoundationalRequirement, SecurityLevel>);

impl SlVector {
    /// Creates a vector with all requirements at SL 0.
    #[must_use]
    pub fn new() -> Self {
        SlVector::default()
    }

    /// Creates a uniform vector.
    #[must_use]
    pub fn uniform(level: SecurityLevel) -> Self {
        let mut v = SlVector::new();
        for fr in FoundationalRequirement::ALL {
            v.0.insert(fr, level);
        }
        v
    }

    /// Sets one requirement's level (builder style).
    #[must_use]
    pub fn with(mut self, fr: FoundationalRequirement, level: SecurityLevel) -> Self {
        self.0.insert(fr, level);
        self
    }

    /// The level for a requirement (SL 0 when unset).
    #[must_use]
    pub fn level(&self, fr: FoundationalRequirement) -> SecurityLevel {
        self.0.get(&fr).copied().unwrap_or(SecurityLevel::Sl0)
    }

    /// Raises a requirement to at least `level`.
    pub fn raise(&mut self, fr: FoundationalRequirement, level: SecurityLevel) {
        let current = self.level(fr);
        if level > current {
            self.0.insert(fr, level);
        }
    }

    /// Per-requirement shortfall of `self` (achieved) against `target`.
    #[must_use]
    pub fn gap_against(&self, target: &SlVector) -> Vec<(FoundationalRequirement, u8)> {
        FoundationalRequirement::ALL
            .iter()
            .filter_map(|fr| {
                let t = target.level(*fr).value();
                let a = self.level(*fr).value();
                (t > a).then(|| (*fr, t - a))
            })
            .collect()
    }

    /// Whether `self` meets or exceeds `target` everywhere.
    #[must_use]
    pub fn meets(&self, target: &SlVector) -> bool {
        self.gap_against(target).is_empty()
    }
}

/// A deployable control and its SL contributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Control {
    /// Control tag (matches requirement candidate-control tags, e.g.
    /// `"secure-channel"`).
    pub tag: String,
    /// The levels this control achieves per foundational requirement.
    pub contributes: Vec<(FoundationalRequirement, SecurityLevel)>,
}

/// The standard worksite control catalog.
#[must_use]
pub fn control_catalog() -> Vec<Control> {
    use FoundationalRequirement as FR;
    use SecurityLevel as SL;
    vec![
        Control {
            tag: "pki".into(),
            contributes: vec![(FR::Iac, SL::Sl3), (FR::Uc, SL::Sl2)],
        },
        Control {
            tag: "secure-channel".into(),
            contributes: vec![
                (FR::Iac, SL::Sl3),
                (FR::Si, SL::Sl3),
                (FR::Dc, SL::Sl3),
                (FR::Rdf, SL::Sl2),
            ],
        },
        Control {
            tag: "secure-boot".into(),
            contributes: vec![(FR::Si, SL::Sl3)],
        },
        Control {
            tag: "attestation".into(),
            contributes: vec![(FR::Si, SL::Sl3), (FR::Iac, SL::Sl2)],
        },
        Control {
            tag: "ids".into(),
            contributes: vec![(FR::Tre, SL::Sl3)],
        },
        Control {
            tag: "mfp".into(),
            contributes: vec![(FR::Ra, SL::Sl2), (FR::Iac, SL::Sl2)],
        },
        Control {
            tag: "nav-consistency".into(),
            contributes: vec![(FR::Si, SL::Sl2), (FR::Tre, SL::Sl2)],
        },
        Control {
            tag: "sensor-health".into(),
            contributes: vec![(FR::Tre, SL::Sl2)],
        },
        Control {
            tag: "drone-redundancy".into(),
            contributes: vec![(FR::Ra, SL::Sl2)],
        },
        Control {
            tag: "degraded-mode".into(),
            contributes: vec![(FR::Ra, SL::Sl2)],
        },
        Control {
            tag: "safe-stop".into(),
            contributes: vec![(FR::Tre, SL::Sl2), (FR::Ra, SL::Sl1)],
        },
    ]
}

/// A zone grouping assets of similar criticality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    /// Zone id, e.g. `"zone.safety-control"`.
    pub id: String,
    /// Assets contained (by id).
    pub asset_ids: Vec<String>,
    /// Target security levels.
    pub sl_target: SlVector,
    /// Deployed control tags.
    pub deployed_controls: Vec<String>,
}

impl Zone {
    /// Computes the achieved SL vector from deployed controls.
    #[must_use]
    pub fn sl_achieved(&self, catalog: &[Control]) -> SlVector {
        let mut achieved = SlVector::new();
        for tag in &self.deployed_controls {
            if let Some(control) = catalog.iter().find(|c| &c.tag == tag) {
                for (fr, level) in &control.contributes {
                    achieved.raise(*fr, *level);
                }
            }
        }
        achieved
    }

    /// The SL gap (target vs achieved).
    #[must_use]
    pub fn gap(&self, catalog: &[Control]) -> Vec<(FoundationalRequirement, u8)> {
        self.sl_achieved(catalog).gap_against(&self.sl_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FoundationalRequirement as FR;
    use SecurityLevel as SL;

    #[test]
    fn vector_defaults_and_raise() {
        let mut v = SlVector::new();
        assert_eq!(v.level(FR::Iac), SL::Sl0);
        v.raise(FR::Iac, SL::Sl2);
        v.raise(FR::Iac, SL::Sl1); // no downgrade
        assert_eq!(v.level(FR::Iac), SL::Sl2);
    }

    #[test]
    fn gap_analysis() {
        let target = SlVector::uniform(SL::Sl2);
        let achieved = SlVector::new().with(FR::Iac, SL::Sl3).with(FR::Si, SL::Sl1);
        let gap = achieved.gap_against(&target);
        // Iac met, Si short by 1, five others short by 2.
        assert_eq!(gap.len(), 6);
        assert!(gap.contains(&(FR::Si, 1)));
        assert!(!achieved.meets(&target));
        assert!(SlVector::uniform(SL::Sl2).meets(&target));
        assert!(SlVector::uniform(SL::Sl4).meets(&target));
    }

    #[test]
    fn zone_achieves_levels_from_controls() {
        let zone = Zone {
            id: "zone.safety".into(),
            asset_ids: vec!["fw.ecu".into()],
            sl_target: SlVector::new()
                .with(FR::Iac, SL::Sl3)
                .with(FR::Si, SL::Sl3)
                .with(FR::Tre, SL::Sl2),
            deployed_controls: vec!["secure-channel".into(), "ids".into()],
        };
        let catalog = control_catalog();
        let achieved = zone.sl_achieved(&catalog);
        assert_eq!(achieved.level(FR::Iac), SL::Sl3);
        assert_eq!(achieved.level(FR::Si), SL::Sl3);
        assert_eq!(achieved.level(FR::Tre), SL::Sl3);
        assert!(zone.gap(&catalog).is_empty());
    }

    #[test]
    fn undefended_zone_has_gaps() {
        let zone = Zone {
            id: "zone.bare".into(),
            asset_ids: vec![],
            sl_target: SlVector::uniform(SL::Sl2),
            deployed_controls: vec![],
        };
        let gap = zone.gap(&control_catalog());
        assert_eq!(gap.len(), 7, "all seven FRs short");
    }

    #[test]
    fn unknown_control_tags_ignored() {
        let zone = Zone {
            id: "z".into(),
            asset_ids: vec![],
            sl_target: SlVector::new(),
            deployed_controls: vec!["does-not-exist".into()],
        };
        assert_eq!(zone.sl_achieved(&control_catalog()), SlVector::new());
    }

    #[test]
    fn catalog_tags_unique() {
        let catalog = control_catalog();
        let mut tags: Vec<&String> = catalog.iter().map(|c| &c.tag).collect();
        tags.sort();
        let before = tags.len();
        tags.dedup();
        assert_eq!(tags.len(), before);
    }
}
