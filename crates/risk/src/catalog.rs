//! The forestry domain catalog: the paper's Table I as machine-readable
//! data, and the ready-made model of the Figure 1/2 worksite.

use crate::assets::{Asset, AssetCategory, SecurityProperty};
use crate::feasibility::AttackPotential;
use crate::hara::{Avoidance, Exposure, Hazard, InjurySeverity};
use crate::iec62443::{FoundationalRequirement, SecurityLevel, SlVector, Zone};
use crate::impact::{ImpactCategory, ImpactLevel, ImpactRating};
use crate::interplay::{InterplayEffect, InterplayLink};
use crate::sotif::{ScenarioArea, TriggeringCondition};
use crate::threat::{AttackStep, DamageScenario, ThreatScenario, WorksiteModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight forestry-domain characteristics of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ForestryCharacteristic {
    /// Remote and isolated locations with limited connectivity.
    RemoteIsolatedLocations,
    /// Increasing use of autonomous machinery.
    AutonomousMachinery,
    /// Susceptibility to natural disasters.
    NaturalDisasters,
    /// Sensitive land-ownership and compliance data.
    DataPrivacyCompliance,
    /// Remote monitoring and control systems.
    RemoteMonitoringControl,
    /// The need for domain threat profiles.
    ThreatProfile,
    /// Confidential operations (e.g. military sites).
    ConfidentialityOfOperations,
    /// Heavy machinery raising safety stakes.
    HeavyMachinery,
}

impl fmt::Display for ForestryCharacteristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

impl ForestryCharacteristic {
    /// All characteristics, in the paper's Table I order.
    pub const ALL: [ForestryCharacteristic; 8] = [
        ForestryCharacteristic::RemoteIsolatedLocations,
        ForestryCharacteristic::AutonomousMachinery,
        ForestryCharacteristic::NaturalDisasters,
        ForestryCharacteristic::DataPrivacyCompliance,
        ForestryCharacteristic::RemoteMonitoringControl,
        ForestryCharacteristic::ThreatProfile,
        ForestryCharacteristic::ConfidentialityOfOperations,
        ForestryCharacteristic::HeavyMachinery,
    ];

    /// The Table I row title.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            ForestryCharacteristic::RemoteIsolatedLocations => "Remote and Isolated Locations",
            ForestryCharacteristic::AutonomousMachinery => "Autonomous Machinery",
            ForestryCharacteristic::NaturalDisasters => "Natural Disasters",
            ForestryCharacteristic::DataPrivacyCompliance => "Data Privacy and Compliance",
            ForestryCharacteristic::RemoteMonitoringControl => "Remote Monitoring and Control",
            ForestryCharacteristic::ThreatProfile => "Threat Profile",
            ForestryCharacteristic::ConfidentialityOfOperations => "Confidentiality of Operations",
            ForestryCharacteristic::HeavyMachinery => "Heavy Machinery",
        }
    }

    /// The Table I row description (abridged).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            ForestryCharacteristic::RemoteIsolatedLocations => {
                "operations occur in remote areas with limited connectivity; secure \
                 communication and data protection are challenging"
            }
            ForestryCharacteristic::AutonomousMachinery => {
                "drones and robots are increasingly used; they must be secured against \
                 unauthorized access or interference"
            }
            ForestryCharacteristic::NaturalDisasters => {
                "wildfires, floods and storms demand disaster recovery and continuity \
                 planning for cybersecurity"
            }
            ForestryCharacteristic::DataPrivacyCompliance => {
                "land ownership, environmental assessment and compliance data require \
                 privacy protection"
            }
            ForestryCharacteristic::RemoteMonitoringControl => {
                "remote monitoring and control systems must be secured against \
                 unauthorized access and disruption"
            }
            ForestryCharacteristic::ThreatProfile => {
                "domain threat profiles are needed to grasp threats, agents and controls"
            }
            ForestryCharacteristic::ConfidentialityOfOperations => {
                "some operations (e.g. military sites) must remain confidential"
            }
            ForestryCharacteristic::HeavyMachinery => {
                "heavy machinery raises safety risk, and with it the stakes of \
                 security compromises"
            }
        }
    }

    /// Attack-class tags this characteristic exposes the worksite to.
    #[must_use]
    pub fn attack_classes(self) -> &'static [&'static str] {
        match self {
            ForestryCharacteristic::RemoteIsolatedLocations => {
                &["rf-jamming", "rogue-node", "gnss-jamming"]
            }
            ForestryCharacteristic::AutonomousMachinery => {
                &["gnss-spoofing", "camera-blinding", "firmware-tampering"]
            }
            ForestryCharacteristic::NaturalDisasters => &["rf-jamming"],
            ForestryCharacteristic::DataPrivacyCompliance => &["replay", "rogue-node"],
            ForestryCharacteristic::RemoteMonitoringControl => {
                &["deauth-flood", "replay", "rogue-node"]
            }
            ForestryCharacteristic::ThreatProfile => &[],
            ForestryCharacteristic::ConfidentialityOfOperations => &["rogue-node", "replay"],
            ForestryCharacteristic::HeavyMachinery => &["camera-blinding", "gnss-spoofing"],
        }
    }

    /// Candidate control tags addressing this characteristic.
    #[must_use]
    pub fn controls(self) -> &'static [&'static str] {
        match self {
            ForestryCharacteristic::RemoteIsolatedLocations => {
                &["secure-channel", "degraded-mode", "nav-consistency"]
            }
            ForestryCharacteristic::AutonomousMachinery => &[
                "secure-boot",
                "attestation",
                "sensor-health",
                "nav-consistency",
            ],
            ForestryCharacteristic::NaturalDisasters => &["degraded-mode", "safe-stop"],
            ForestryCharacteristic::DataPrivacyCompliance => &["secure-channel", "pki"],
            ForestryCharacteristic::RemoteMonitoringControl => &["mfp", "secure-channel", "ids"],
            ForestryCharacteristic::ThreatProfile => &["ids"],
            ForestryCharacteristic::ConfidentialityOfOperations => &["secure-channel", "pki"],
            ForestryCharacteristic::HeavyMachinery => {
                &["drone-redundancy", "safe-stop", "sensor-health"]
            }
        }
    }
}

fn easy(action: &str) -> AttackStep {
    // Script-kiddie level: commodity hardware, public knowledge.
    AttackStep {
        action: action.into(),
        potential: AttackPotential::new(1, 2, 0, 1, 3),
    }
}

fn moderate(action: &str) -> AttackStep {
    AttackStep {
        action: action.into(),
        potential: AttackPotential::new(4, 3, 3, 1, 4),
    }
}

fn hard(action: &str) -> AttackStep {
    AttackStep {
        action: action.into(),
        potential: AttackPotential::new(10, 6, 3, 4, 7),
    }
}

/// Builds the model of the paper's Figure 1/2 worksite: an autonomous
/// forwarder with people-detection, a manned harvester, an observation
/// drone, and a base station, all on an internal wireless network in a
/// remote stand.
#[must_use]
pub fn worksite_model() -> WorksiteModel {
    use AssetCategory as AC;
    use SecurityProperty as SP;

    let assets = vec![
        Asset::new(
            "fw.ecu",
            "Forwarder control unit",
            AC::ControlUnit,
            vec![SP::Integrity, SP::Availability],
        ),
        Asset::new(
            "fw.camera",
            "Forwarder people-detection camera",
            AC::Sensor,
            vec![SP::Integrity, SP::Availability],
        ),
        Asset::new(
            "fw.gnss",
            "Forwarder GNSS receiver",
            AC::Sensor,
            vec![SP::Integrity, SP::Availability],
        ),
        Asset::new(
            "fw.firmware",
            "Forwarder firmware",
            AC::Firmware,
            vec![SP::Integrity, SP::Authenticity],
        ),
        Asset::new(
            "drone.camera",
            "Drone observation camera",
            AC::Sensor,
            vec![SP::Integrity, SP::Availability],
        ),
        Asset::new(
            "link.fw-bs",
            "Forwarder ↔ base-station radio link",
            AC::CommunicationLink,
            vec![
                SP::Integrity,
                SP::Availability,
                SP::Confidentiality,
                SP::Authenticity,
            ],
        ),
        Asset::new(
            "link.drone-bs",
            "Drone ↔ base-station radio link",
            AC::CommunicationLink,
            vec![SP::Integrity, SP::Availability, SP::Authenticity],
        ),
        Asset::new(
            "bs.station",
            "Worksite base station",
            AC::Infrastructure,
            vec![SP::Integrity, SP::Availability],
        ),
        Asset::new(
            "data.ops",
            "Operational and land data",
            AC::Data,
            vec![SP::Confidentiality],
        ),
        Asset::new(
            "sf.people-detect",
            "Collaborative people-detection safety function",
            AC::SafetyFunction,
            vec![SP::Integrity, SP::Availability],
        ),
    ];

    let damage_scenarios = vec![
        DamageScenario {
            id: "ds.people-undetected".into(),
            asset_id: "sf.people-detect".into(),
            violated_property: SP::Availability,
            description: "people detection fails while the forwarder operates; a worker \
                          can be struck"
                .into(),
            impact: ImpactRating::new()
                .with(ImpactCategory::Safety, ImpactLevel::Severe)
                .with(ImpactCategory::Operational, ImpactLevel::Major),
        },
        DamageScenario {
            id: "ds.nav-corrupted".into(),
            asset_id: "fw.gnss".into(),
            violated_property: SP::Integrity,
            description: "the forwarder navigates on a falsified position and leaves its \
                          planned corridor"
                .into(),
            impact: ImpactRating::new()
                .with(ImpactCategory::Safety, ImpactLevel::Severe)
                .with(ImpactCategory::Operational, ImpactLevel::Major),
        },
        DamageScenario {
            id: "ds.nav-denied".into(),
            asset_id: "fw.gnss".into(),
            violated_property: SP::Availability,
            description: "the forwarder loses positioning and must halt".into(),
            impact: ImpactRating::new()
                .with(ImpactCategory::Operational, ImpactLevel::Major)
                .with(ImpactCategory::Financial, ImpactLevel::Moderate),
        },
        DamageScenario {
            id: "ds.comms-denied".into(),
            asset_id: "link.fw-bs".into(),
            violated_property: SP::Availability,
            description: "worksite coordination and the drone's safety augmentation are \
                          unavailable"
                .into(),
            impact: ImpactRating::new()
                .with(ImpactCategory::Safety, ImpactLevel::Major)
                .with(ImpactCategory::Operational, ImpactLevel::Major),
        },
        DamageScenario {
            id: "ds.command-forged".into(),
            asset_id: "link.fw-bs".into(),
            violated_property: SP::Authenticity,
            description: "forged or replayed commands drive the forwarder outside its \
                          task envelope"
                .into(),
            impact: ImpactRating::new()
                .with(ImpactCategory::Safety, ImpactLevel::Severe)
                .with(ImpactCategory::Operational, ImpactLevel::Major),
        },
        DamageScenario {
            id: "ds.firmware-compromised".into(),
            asset_id: "fw.firmware".into(),
            violated_property: SP::Integrity,
            description: "the machine runs attacker-controlled firmware; behaviour is \
                          arbitrary"
                .into(),
            impact: ImpactRating::new()
                .with(ImpactCategory::Safety, ImpactLevel::Severe)
                .with(ImpactCategory::Financial, ImpactLevel::Major)
                .with(ImpactCategory::Operational, ImpactLevel::Severe),
        },
        DamageScenario {
            id: "ds.data-exposed".into(),
            asset_id: "data.ops".into(),
            violated_property: SP::Confidentiality,
            description: "land-ownership, operational and video data leak".into(),
            impact: ImpactRating::new()
                .with(ImpactCategory::Privacy, ImpactLevel::Major)
                .with(ImpactCategory::Financial, ImpactLevel::Moderate),
        },
        DamageScenario {
            id: "ds.rogue-joined".into(),
            asset_id: "bs.station".into(),
            violated_property: SP::Authenticity,
            description: "an untrusted component joins the worksite system of systems".into(),
            impact: ImpactRating::new()
                .with(ImpactCategory::Safety, ImpactLevel::Major)
                .with(ImpactCategory::Operational, ImpactLevel::Major),
        },
    ];

    let threats = vec![
        ThreatScenario {
            id: "ts.camera-blinding".into(),
            damage_scenario_id: "ds.people-undetected".into(),
            attack_class: Some("camera-blinding".into()),
            threat_agent: "on-site saboteur with a laser/strong light source".into(),
            attack_paths: vec![vec![
                easy("approach the machine corridor unnoticed"),
                moderate("blind the people-detection camera optically"),
            ]],
        },
        ThreatScenario {
            id: "ts.gnss-spoofing".into(),
            damage_scenario_id: "ds.nav-corrupted".into(),
            attack_class: Some("gnss-spoofing".into()),
            threat_agent: "targeted attacker with an SDR spoofer".into(),
            attack_paths: vec![vec![
                moderate("deploy a regional GNSS spoofer near the stand"),
                moderate("drag the position solution gradually"),
            ]],
        },
        ThreatScenario {
            id: "ts.gnss-jamming".into(),
            damage_scenario_id: "ds.nav-denied".into(),
            attack_class: Some("gnss-jamming".into()),
            threat_agent: "vandal with a commodity jammer".into(),
            attack_paths: vec![vec![easy("switch on a GNSS-band jammer in the area")]],
        },
        ThreatScenario {
            id: "ts.rf-jamming".into(),
            damage_scenario_id: "ds.comms-denied".into(),
            attack_class: Some("rf-jamming".into()),
            threat_agent: "vandal with a broadband jammer".into(),
            attack_paths: vec![vec![easy(
                "radiate broadband noise on the worksite channel",
            )]],
        },
        ThreatScenario {
            id: "ts.deauth-flood".into(),
            damage_scenario_id: "ds.comms-denied".into(),
            attack_class: Some("deauth-flood".into()),
            threat_agent: "script kiddie with a Wi-Fi adapter".into(),
            attack_paths: vec![vec![easy("forge de-auth frames against the forwarder")]],
        },
        ThreatScenario {
            id: "ts.replay-commands".into(),
            damage_scenario_id: "ds.command-forged".into(),
            attack_class: Some("replay".into()),
            threat_agent: "eavesdropper replaying captured traffic".into(),
            attack_paths: vec![vec![
                easy("capture command frames off the air"),
                moderate("re-inject captured frames at a chosen moment"),
            ]],
        },
        ThreatScenario {
            id: "ts.mitm-plaintext".into(),
            damage_scenario_id: "ds.command-forged".into(),
            attack_class: None,
            threat_agent: "active attacker on the radio path".into(),
            attack_paths: vec![vec![
                moderate("impersonate the base station on an unauthenticated link"),
                moderate("inject forged waypoint commands"),
            ]],
        },
        ThreatScenario {
            id: "ts.firmware-tamper".into(),
            damage_scenario_id: "ds.firmware-compromised".into(),
            attack_class: Some("firmware-tampering".into()),
            threat_agent: "supply-chain or maintenance insider".into(),
            attack_paths: vec![vec![
                hard("obtain access to the update channel"),
                moderate("insert a modified image"),
            ]],
        },
        ThreatScenario {
            id: "ts.eavesdropping".into(),
            damage_scenario_id: "ds.data-exposed".into(),
            attack_class: None,
            threat_agent: "passive listener in radio range".into(),
            attack_paths: vec![vec![easy("record plaintext frames from outside the stand")]],
        },
        ThreatScenario {
            id: "ts.rogue-node".into(),
            damage_scenario_id: "ds.rogue-joined".into(),
            attack_class: Some("rogue-node".into()),
            threat_agent: "attacker with a compatible radio".into(),
            attack_paths: vec![vec![
                easy("associate a rogue radio with the worksite network"),
                moderate("participate in coordination traffic"),
            ]],
        },
    ];

    let hazards = vec![
        Hazard {
            id: "hz.runover".into(),
            description: "the forwarder strikes a ground worker".into(),
            severity: InjurySeverity::S2,
            exposure: Exposure::F1,
            avoidance: Avoidance::P2,
            safety_function: Some("sf.people-detect".into()),
        },
        Hazard {
            id: "hz.machine-collision".into(),
            description: "the forwarder collides with the harvester".into(),
            severity: InjurySeverity::S2,
            exposure: Exposure::F1,
            avoidance: Avoidance::P1,
            safety_function: Some("sf.people-detect".into()),
        },
        Hazard {
            id: "hz.load-drop".into(),
            description: "logs are dropped outside the loading envelope".into(),
            severity: InjurySeverity::S2,
            exposure: Exposure::F1,
            avoidance: Avoidance::P1,
            safety_function: None,
        },
        Hazard {
            id: "hz.rollover".into(),
            description: "the forwarder rolls over on steep terrain".into(),
            severity: InjurySeverity::S2,
            exposure: Exposure::F1,
            avoidance: Avoidance::P1,
            safety_function: None,
        },
    ];

    let triggering_conditions = vec![
        TriggeringCondition {
            id: "tc.fog".into(),
            description: "fog reduces optical detection range below the stop distance".into(),
            affected_function: "sf.people-detect".into(),
            area: ScenarioArea::KnownUnsafe,
        },
        TriggeringCondition {
            id: "tc.dense-stand".into(),
            description: "dense stands occlude workers until inside the stop zone".into(),
            affected_function: "sf.people-detect".into(),
            area: ScenarioArea::KnownUnsafe,
        },
        TriggeringCondition {
            id: "tc.terrain-occlusion".into(),
            description: "terrain ridges hide workers from the machine-mounted sensors \
                          (the Figure 2 case)"
                .into(),
            affected_function: "sf.people-detect".into(),
            area: ScenarioArea::KnownUnsafe,
        },
        TriggeringCondition {
            id: "tc.prone-worker".into(),
            description: "a prone or crouching worker presents an unusual signature".into(),
            affected_function: "sf.people-detect".into(),
            area: ScenarioArea::UnknownUnsafe,
        },
    ];

    let interplay = vec![
        InterplayLink {
            threat_id: "ts.camera-blinding".into(),
            hazard_id: "hz.runover".into(),
            effect: InterplayEffect::DefeatsSafetyFunction,
            rationale: "a blinded camera removes the people-detection risk reduction".into(),
        },
        InterplayLink {
            threat_id: "ts.gnss-spoofing".into(),
            hazard_id: "hz.runover".into(),
            effect: InterplayEffect::RaisesExposure(Exposure::F2),
            rationale: "a position-dragged forwarder leaves its corridor and encounters \
                        workers far more often"
                .into(),
        },
        InterplayLink {
            threat_id: "ts.gnss-spoofing".into(),
            hazard_id: "hz.rollover".into(),
            effect: InterplayEffect::RaisesExposure(Exposure::F2),
            rationale: "off-corridor driving reaches unassessed steep terrain".into(),
        },
        InterplayLink {
            threat_id: "ts.rf-jamming".into(),
            hazard_id: "hz.runover".into(),
            effect: InterplayEffect::DefeatsSafetyFunction,
            rationale: "jamming severs the drone's collaborative detection feed".into(),
        },
        InterplayLink {
            threat_id: "ts.deauth-flood".into(),
            hazard_id: "hz.runover".into(),
            effect: InterplayEffect::DefeatsSafetyFunction,
            rationale: "de-authing the forwarder severs the drone detection feed".into(),
        },
        InterplayLink {
            threat_id: "ts.replay-commands".into(),
            hazard_id: "hz.machine-collision".into(),
            effect: InterplayEffect::RaisesExposure(Exposure::F2),
            rationale: "replayed drive commands put machines on conflicting paths".into(),
        },
        InterplayLink {
            threat_id: "ts.firmware-tamper".into(),
            hazard_id: "hz.runover".into(),
            effect: InterplayEffect::DefeatsSafetyFunction,
            rationale: "compromised firmware can disable any on-board safety function".into(),
        },
    ];

    WorksiteModel {
        assets,
        damage_scenarios,
        threats,
        hazards,
        triggering_conditions,
        interplay,
    }
}

/// Builds the worksite's IEC 62443 zones. With `secure`, the zones carry
/// the full control deployment; without, they model the undefended
/// baseline worksite.
#[must_use]
pub fn worksite_zones(secure: bool) -> Vec<Zone> {
    use FoundationalRequirement as FR;
    use SecurityLevel as SL;

    let deploy = |controls: &[&str]| -> Vec<String> {
        if secure {
            controls.iter().map(|s| (*s).to_owned()).collect()
        } else {
            Vec::new()
        }
    };

    vec![
        Zone {
            id: "zone.safety-control".into(),
            asset_ids: vec![
                "fw.ecu".into(),
                "sf.people-detect".into(),
                "fw.firmware".into(),
            ],
            sl_target: SlVector::new()
                .with(FR::Iac, SL::Sl3)
                .with(FR::Si, SL::Sl3)
                .with(FR::Tre, SL::Sl3)
                .with(FR::Ra, SL::Sl2),
            deployed_controls: deploy(&[
                "secure-boot",
                "attestation",
                "secure-channel",
                "ids",
                "safe-stop",
                "drone-redundancy",
            ]),
        },
        Zone {
            id: "zone.perception".into(),
            asset_ids: vec!["fw.camera".into(), "fw.gnss".into(), "drone.camera".into()],
            sl_target: SlVector::new()
                .with(FR::Si, SL::Sl2)
                .with(FR::Tre, SL::Sl2)
                .with(FR::Ra, SL::Sl2),
            deployed_controls: deploy(&["sensor-health", "nav-consistency", "drone-redundancy"]),
        },
        Zone {
            id: "zone.coordination".into(),
            asset_ids: vec![
                "bs.station".into(),
                "link.fw-bs".into(),
                "link.drone-bs".into(),
            ],
            sl_target: SlVector::new()
                .with(FR::Iac, SL::Sl3)
                .with(FR::Uc, SL::Sl2)
                .with(FR::Si, SL::Sl3)
                .with(FR::Dc, SL::Sl2)
                .with(FR::Rdf, SL::Sl2)
                .with(FR::Tre, SL::Sl2)
                .with(FR::Ra, SL::Sl2),
            deployed_controls: deploy(&["pki", "secure-channel", "mfp", "ids", "degraded-mode"]),
        },
        Zone {
            id: "zone.data".into(),
            asset_ids: vec!["data.ops".into()],
            sl_target: SlVector::new().with(FR::Dc, SL::Sl3).with(FR::Iac, SL::Sl2),
            deployed_controls: deploy(&["secure-channel", "pki"]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iec62443::control_catalog;
    use crate::tara::{RiskLevel, Tara};

    #[test]
    fn table1_has_eight_rows() {
        assert_eq!(ForestryCharacteristic::ALL.len(), 8);
        for c in ForestryCharacteristic::ALL {
            assert!(!c.title().is_empty());
            assert!(!c.description().is_empty());
        }
    }

    #[test]
    fn catalog_attack_classes_are_known() {
        let known = [
            "rf-jamming",
            "deauth-flood",
            "gnss-spoofing",
            "gnss-jamming",
            "camera-blinding",
            "replay",
            "rogue-node",
            "firmware-tampering",
        ];
        for c in ForestryCharacteristic::ALL {
            for ac in c.attack_classes() {
                assert!(known.contains(ac), "unknown attack class {ac}");
            }
        }
    }

    #[test]
    fn catalog_controls_exist_in_62443_catalog() {
        let catalog = control_catalog();
        for c in ForestryCharacteristic::ALL {
            for tag in c.controls() {
                assert!(
                    catalog.iter().any(|ctrl| ctrl.tag == *tag),
                    "characteristic {c} references unknown control {tag}"
                );
            }
        }
    }

    #[test]
    fn worksite_model_is_referentially_intact() {
        let model = worksite_model();
        assert!(model.dangling_references().is_empty());
        assert!(model.assets.len() >= 10);
        assert!(model.threats.len() >= 10);
        assert!(model.hazards.len() >= 4);
        assert!(model.interplay.len() >= 6);
    }

    #[test]
    fn assessment_finds_high_risks() {
        let report = Tara::assess(&worksite_model());
        // The safety-critical, easy attacks must land at the top.
        let top_ids: Vec<&str> = report
            .risks_at_or_above(RiskLevel(4))
            .iter()
            .map(|r| r.threat_id.as_str())
            .collect();
        assert!(
            top_ids.contains(&"ts.camera-blinding"),
            "top risks: {top_ids:?}"
        );
        assert!(report.requirements().count() >= 5);
        assert!(report.dangling_references.is_empty());
    }

    #[test]
    fn interplay_findings_generated_and_prioritized() {
        let report = Tara::assess(&worksite_model());
        assert_eq!(
            report.interplay_findings.len(),
            worksite_model().interplay.len()
        );
        for w in report.interplay_findings.windows(2) {
            assert!(w[0].priority() >= w[1].priority());
        }
    }

    #[test]
    fn secure_zones_close_most_gaps() {
        let catalog = control_catalog();
        let insecure_gaps: usize = worksite_zones(false)
            .iter()
            .map(|z| z.gap(&catalog).len())
            .sum();
        let secure_gaps: usize = worksite_zones(true)
            .iter()
            .map(|z| z.gap(&catalog).len())
            .sum();
        assert!(
            secure_gaps < insecure_gaps / 3,
            "{secure_gaps} vs {insecure_gaps}"
        );
    }

    #[test]
    fn every_zone_asset_exists_in_model() {
        let model = worksite_model();
        for zone in worksite_zones(true) {
            for asset_id in &zone.asset_ids {
                assert!(
                    model.asset(asset_id).is_some(),
                    "zone {} references unknown asset {asset_id}",
                    zone.id
                );
            }
        }
    }
}
