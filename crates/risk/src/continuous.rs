//! Continuous risk assessment (the ISO/SAE 21434 clause the paper's
//! future work singles out).
//!
//! The static TARA rates attack feasibility from expert judgement. At
//! runtime, the IDS produces *field evidence*: an observed incident of an
//! attack class proves the attack is being mounted here and now, so the
//! matching threat scenarios' feasibility escalates and risks re-rank.
//! The history of risk-level changes (with timestamps) is the measurable
//! output — experiment E5 measures the latency from attack onset to risk
//! update.

use crate::feasibility::AttackFeasibility;
use crate::impact::ImpactLevel;
use crate::tara::{RiskLevel, Tara, TaraReport};
use crate::threat::WorksiteModel;
use serde::{Deserialize, Serialize};
use silvasec_sim::time::SimTime;
use silvasec_telemetry::{Event, Label, Record, Recorder};
use std::collections::HashMap;

/// Maps an IDS alert class (the detector vocabulary) onto the TARA's
/// attack-class vocabulary (`ThreatScenario::attack_class`).
///
/// The two vocabularies differ where the detector sees a *symptom* while
/// the TARA names the *attack*: a sensor-blinding alert is evidence for
/// the camera-blinding threat, an auth-failure storm is the observable
/// face of a replay campaign, and a rogue association maps to the
/// rogue-node threat. Classes that already coincide pass through.
#[must_use]
pub fn alert_class_to_attack_class(alert_class: &str) -> &str {
    match alert_class {
        "jamming" => "rf-jamming",
        "sensor-blinding" => "camera-blinding",
        "auth-failure-storm" => "replay",
        "rogue-association" => "rogue-node",
        // Fleet OTA attack classes are all faces of the firmware-
        // tampering threat the static TARA already models.
        "update-tampering" | "downgrade" | "rollout-poisoning" => "firmware-tampering",
        other => other,
    }
}

/// An incident reported by the runtime monitoring (IDS).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentReport {
    /// The attack-class tag (matches `ThreatScenario::attack_class`).
    pub attack_class: String,
    /// When the incident was confirmed (worksite ms).
    pub at_ms: u64,
}

/// A recorded risk-level change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskChange {
    /// The threat whose risk changed.
    pub threat_id: String,
    /// Risk before.
    pub from: RiskLevel,
    /// Risk after.
    pub to: RiskLevel,
    /// When (worksite ms).
    pub at_ms: u64,
}

/// The continuous assessment wrapper around a model.
#[derive(Debug, Clone)]
pub struct ContinuousAssessment {
    model: WorksiteModel,
    /// Feasibility overrides from field evidence.
    overrides: HashMap<String, AttackFeasibility>,
    current: TaraReport,
    changes: Vec<RiskChange>,
    recorder: Recorder,
}

impl ContinuousAssessment {
    /// Starts continuous assessment from a model (runs the initial TARA).
    #[must_use]
    pub fn new(model: WorksiteModel) -> Self {
        let current = Tara::assess(&model);
        ContinuousAssessment {
            model,
            overrides: HashMap::new(),
            current,
            changes: Vec::new(),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a telemetry recorder; every risk-level change is then
    /// mirrored as a `RiskDelta` event stamped with the incident time.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The current report.
    #[must_use]
    pub fn report(&self) -> &TaraReport {
        &self.current
    }

    /// The recorded risk changes.
    #[must_use]
    pub fn changes(&self) -> &[RiskChange] {
        &self.changes
    }

    /// Feeds an incident; escalates feasibility of matching threats and
    /// re-assesses. Returns the changes this incident caused.
    pub fn ingest(&mut self, incident: &IncidentReport) -> Vec<RiskChange> {
        let mut changed_threats = Vec::new();
        for threat in &self.model.threats {
            if threat.attack_class.as_deref() == Some(incident.attack_class.as_str()) {
                let baseline = threat.feasibility();
                let current = self.overrides.get(&threat.id).copied().unwrap_or(baseline);
                let escalated = current.escalate().max(baseline);
                if escalated != current {
                    self.overrides.insert(threat.id.clone(), escalated);
                    changed_threats.push(threat.id.clone());
                }
            }
        }
        if changed_threats.is_empty() {
            return Vec::new();
        }
        self.reassess(incident.at_ms)
    }

    /// Withdraws the field-evidence escalation for every threat of
    /// `attack_class` and re-assesses, so the matching risks fall back to
    /// their static baseline.
    ///
    /// This is the de-escalation half of continuous assessment: a
    /// completed mitigation (e.g. a fleet-wide firmware rollout patching
    /// a disclosed vulnerability) removes the evidence that made the
    /// attack feasible, and the risk ranking must reflect that just as
    /// promptly as it reflected the escalation. Returns the changes the
    /// mitigation caused (empty when nothing was escalated).
    pub fn mitigate(&mut self, attack_class: &str, at_ms: u64) -> Vec<RiskChange> {
        let mut withdrew = false;
        for threat in &self.model.threats {
            if threat.attack_class.as_deref() == Some(attack_class) {
                withdrew |= self.overrides.remove(&threat.id).is_some();
            }
        }
        if !withdrew {
            return Vec::new();
        }
        self.reassess(at_ms)
    }

    /// Feeds a recorded telemetry event. `IdsAlert` records are mapped to
    /// incidents via [`alert_class_to_attack_class`]; all other events are
    /// ignored. Returns the changes the record caused.
    pub fn ingest_record(&mut self, record: &Record) -> Vec<RiskChange> {
        if let Event::IdsAlert { class, .. } = &record.event {
            let incident = IncidentReport {
                attack_class: alert_class_to_attack_class(class.as_str()).to_string(),
                at_ms: record.at.as_millis(),
            };
            self.ingest(&incident)
        } else {
            Vec::new()
        }
    }

    fn reassess(&mut self, at_ms: u64) -> Vec<RiskChange> {
        let before: HashMap<String, RiskLevel> = self
            .current
            .risks
            .iter()
            .map(|r| (r.threat_id.clone(), r.risk))
            .collect();

        // Re-run the TARA, then apply feasibility overrides.
        let mut report = Tara::assess(&self.model);
        for risk in &mut report.risks {
            if let Some(feas) = self.overrides.get(&risk.threat_id) {
                if *feas > risk.feasibility {
                    risk.feasibility = *feas;
                    let impact: ImpactLevel = risk.impact;
                    risk.risk = RiskLevel::from_matrix(impact, *feas);
                    risk.treatment = Tara::default_treatment(risk.risk);
                }
            }
        }
        report.risks.sort_by(|a, b| {
            b.risk
                .cmp(&a.risk)
                .then_with(|| a.threat_id.cmp(&b.threat_id))
        });

        let mut new_changes = Vec::new();
        for risk in &report.risks {
            let old = before.get(&risk.threat_id).copied().unwrap_or(RiskLevel(1));
            if old != risk.risk {
                self.recorder.record_at(
                    SimTime::from_millis(at_ms),
                    Event::RiskDelta {
                        threat: Label::new(&risk.threat_id),
                        from: old.0,
                        to: risk.risk.0,
                    },
                );
                new_changes.push(RiskChange {
                    threat_id: risk.threat_id.clone(),
                    from: old,
                    to: risk.risk,
                    at_ms,
                });
            }
        }
        self.current = report;
        self.changes.extend(new_changes.clone());
        new_changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::AttackPotential;
    use crate::impact::{ImpactCategory, ImpactRating};
    use crate::threat::{AttackStep, DamageScenario, ThreatScenario};
    use crate::{Asset, AssetCategory, SecurityProperty};

    fn model() -> WorksiteModel {
        WorksiteModel {
            assets: vec![Asset::new(
                "gnss",
                "GNSS receiver",
                AssetCategory::Sensor,
                vec![SecurityProperty::Integrity],
            )],
            damage_scenarios: vec![DamageScenario {
                id: "ds.nav".into(),
                asset_id: "gnss".into(),
                violated_property: SecurityProperty::Integrity,
                description: "machine navigates on false position".into(),
                impact: ImpactRating::new().with(ImpactCategory::Safety, ImpactLevel::Severe),
            }],
            threats: vec![ThreatScenario {
                id: "ts.spoof".into(),
                damage_scenario_id: "ds.nav".into(),
                attack_class: Some("gnss-spoofing".into()),
                threat_agent: "targeted attacker".into(),
                // Hard attack: Low feasibility statically.
                attack_paths: vec![vec![AttackStep {
                    action: "mount regional spoofer".into(),
                    potential: AttackPotential::new(19, 4, 0, 0, 0), // 23 → Low
                }]],
            }],
            ..WorksiteModel::default()
        }
    }

    #[test]
    fn baseline_assessment_matches_static() {
        let ca = ContinuousAssessment::new(model());
        assert_eq!(ca.report().risks[0].feasibility, AttackFeasibility::Low);
        assert_eq!(ca.report().risks[0].risk.0, 3);
    }

    #[test]
    fn incident_escalates_matching_threat() {
        let mut ca = ContinuousAssessment::new(model());
        let changes = ca.ingest(&IncidentReport {
            attack_class: "gnss-spoofing".into(),
            at_ms: 5_000,
        });
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].from.0, 3);
        assert_eq!(changes[0].to.0, 4);
        assert_eq!(changes[0].at_ms, 5_000);
        assert_eq!(ca.report().risks[0].feasibility, AttackFeasibility::Medium);
    }

    #[test]
    fn repeated_incidents_saturate() {
        let mut ca = ContinuousAssessment::new(model());
        for t in 0..5 {
            let _ = ca.ingest(&IncidentReport {
                attack_class: "gnss-spoofing".into(),
                at_ms: t * 1000,
            });
        }
        assert_eq!(ca.report().risks[0].feasibility, AttackFeasibility::High);
        assert_eq!(ca.report().risks[0].risk.0, 5);
        // Low→Medium and Medium→High: exactly two changes recorded.
        assert_eq!(ca.changes().len(), 2);
    }

    #[test]
    fn unrelated_incident_changes_nothing() {
        let mut ca = ContinuousAssessment::new(model());
        let changes = ca.ingest(&IncidentReport {
            attack_class: "replay".into(),
            at_ms: 0,
        });
        assert!(changes.is_empty());
        assert!(ca.changes().is_empty());
    }

    #[test]
    fn mitigation_restores_the_static_baseline() {
        let mut ca = ContinuousAssessment::new(model());
        for t in 0..3 {
            let _ = ca.ingest(&IncidentReport {
                attack_class: "gnss-spoofing".into(),
                at_ms: t * 1000,
            });
        }
        assert_eq!(ca.report().risks[0].risk.0, 5);
        let changes = ca.mitigate("gnss-spoofing", 10_000);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].from.0, 5);
        assert_eq!(changes[0].to.0, 3);
        assert_eq!(changes[0].at_ms, 10_000);
        assert_eq!(ca.report().risks[0].feasibility, AttackFeasibility::Low);
        // Mitigating a class that was never escalated is a no-op.
        assert!(ca.mitigate("gnss-spoofing", 11_000).is_empty());
        assert!(ca.mitigate("replay", 11_000).is_empty());
    }

    #[test]
    fn alert_classes_alias_onto_attack_classes() {
        assert_eq!(alert_class_to_attack_class("jamming"), "rf-jamming");
        assert_eq!(
            alert_class_to_attack_class("sensor-blinding"),
            "camera-blinding"
        );
        assert_eq!(alert_class_to_attack_class("auth-failure-storm"), "replay");
        assert_eq!(
            alert_class_to_attack_class("rogue-association"),
            "rogue-node"
        );
        assert_eq!(
            alert_class_to_attack_class("gnss-spoofing"),
            "gnss-spoofing"
        );
        for fleet_class in ["update-tampering", "downgrade", "rollout-poisoning"] {
            assert_eq!(
                alert_class_to_attack_class(fleet_class),
                "firmware-tampering"
            );
        }
    }

    #[test]
    fn recorded_alert_escalates_and_emits_risk_delta() {
        let recorder = Recorder::new();
        let sub = recorder.subscribe("test", 64);
        let mut ca = ContinuousAssessment::new(model());
        ca.set_recorder(recorder.clone());

        // An IdsAlert record drives the assessment exactly like an
        // IncidentReport with the aliased class.
        recorder.record_at(
            SimTime::from_millis(5_000),
            Event::IdsAlert {
                class: Label::new("gnss-spoofing"),
                severity: Label::new("high"),
            },
        );
        let records = recorder.records(sub);
        let changes = ca.ingest_record(&records[0]);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].at_ms, 5_000);

        // The change itself was mirrored back as a RiskDelta event.
        let records = recorder.records(sub);
        assert!(records.iter().any(
            |r| matches!(r.event, Event::RiskDelta { from: 3, to: 4, .. })
                && r.at.as_millis() == 5_000
        ));
    }

    #[test]
    fn non_alert_records_are_ignored() {
        let recorder = Recorder::new();
        let sub = recorder.subscribe("test", 64);
        recorder.record(Event::Custom {
            key: Label::new("noise"),
            value: 1,
        });
        let mut ca = ContinuousAssessment::new(model());
        let records = recorder.records(sub);
        assert!(ca.ingest_record(&records[0]).is_empty());
    }

    #[test]
    fn treatment_escalates_with_risk() {
        let mut ca = ContinuousAssessment::new(model());
        for _ in 0..3 {
            let _ = ca.ingest(&IncidentReport {
                attack_class: "gnss-spoofing".into(),
                at_ms: 0,
            });
        }
        assert_eq!(
            ca.report().risks[0].treatment,
            crate::tara::Treatment::Reduce
        );
    }
}
