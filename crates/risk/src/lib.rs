//! Combined safety–cybersecurity risk assessment for autonomous forestry
//! machinery.
//!
//! This crate is the executable form of the reproduced paper's core
//! contribution: a forestry-adapted risk assessment methodology combining
//!
//! * **ISO/SAE 21434** threat analysis and risk assessment (TARA):
//!   asset-driven damage scenarios, threat scenarios with attack paths,
//!   attack-feasibility rating, impact rating, risk values and treatment
//!   ([`assets`], [`impact`], [`feasibility`], [`threat`], [`tara`]);
//! * **IEC 62443** zones & conduits with target/achieved security levels
//!   and gap analysis ([`iec62443`]);
//! * **ISO 12100 / ISO 13849** machinery hazard analysis with required
//!   performance levels ([`hara`]);
//! * **ISO 21448 (SOTIF)** triggering-condition analysis for functional
//!   insufficiencies ([`sotif`]);
//! * the **safety–security interplay** (IEC TS 63074): security threats
//!   that defeat or degrade safety functions inject new risk into the
//!   machinery hazard picture ([`interplay`]);
//! * **continuous risk assessment** (the 21434 clause the paper singles
//!   out): IDS incidents feed back into attack-feasibility ratings and
//!   re-rank risks at runtime ([`continuous`]);
//! * the **forestry domain catalog** (the paper's Table I) as a
//!   machine-readable characteristic → threat → control mapping, plus a
//!   ready-made model of the paper's Figure 1/2 worksite ([`catalog`]).
//!
//! The assessment core is **pure**: given the same model it produces the
//! same report, making the methodology itself testable.
//!
//! # Example
//!
//! ```
//! use silvasec_risk::catalog;
//! use silvasec_risk::tara::Tara;
//!
//! let model = catalog::worksite_model();
//! let report = Tara::assess(&model);
//! // Every threat scenario got a risk value and a treatment.
//! assert_eq!(report.risks.len(), model.threats.len());
//! assert!(report.requirements().count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assets;
pub mod catalog;
pub mod continuous;
pub mod feasibility;
pub mod hara;
pub mod iec62443;
pub mod impact;
pub mod interplay;
pub mod sotif;
pub mod tara;
pub mod threat;

pub use assets::{Asset, AssetCategory, SecurityProperty};
pub use feasibility::{AttackFeasibility, AttackPotential};
pub use impact::{ImpactCategory, ImpactLevel};
pub use tara::{RiskLevel, Tara, TaraReport, Treatment};

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::assets::{Asset, AssetCategory, SecurityProperty};
    pub use crate::catalog::{self, ForestryCharacteristic};
    pub use crate::continuous::ContinuousAssessment;
    pub use crate::feasibility::{AttackFeasibility, AttackPotential};
    pub use crate::hara::{Hazard, PerformanceLevel};
    pub use crate::iec62443::{SecurityLevel, Zone};
    pub use crate::impact::{ImpactCategory, ImpactLevel};
    pub use crate::interplay::InterplayLink;
    pub use crate::sotif::TriggeringCondition;
    pub use crate::tara::{RiskLevel, Tara, TaraReport, Treatment};
    pub use crate::threat::{AttackStep, ThreatScenario, WorksiteModel};
}
