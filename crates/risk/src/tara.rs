//! The TARA core: risk values, treatment decisions and the assessment
//! report (ISO/SAE 21434 clauses 15.8–15.9), extended with the combined
//! safety–security findings.

use crate::feasibility::AttackFeasibility;
use crate::impact::ImpactLevel;
use crate::interplay::{evaluate_link, InterplayFinding};
use crate::threat::WorksiteModel;
use serde::{Deserialize, Serialize};

/// A 21434 risk value (1 = lowest, 5 = highest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RiskLevel(pub u8);

impl RiskLevel {
    /// The 21434 risk matrix: impact × feasibility → 1..=5.
    #[must_use]
    pub fn from_matrix(impact: ImpactLevel, feasibility: AttackFeasibility) -> Self {
        // Row = impact (0..3), column = feasibility (0..3).
        const MATRIX: [[u8; 4]; 4] = [
            // VeryLow Low Medium High
            [1, 1, 1, 1], // Negligible
            [1, 2, 2, 3], // Moderate
            [1, 2, 3, 4], // Major
            [2, 3, 4, 5], // Severe
        ];
        RiskLevel(MATRIX[impact.value() as usize][feasibility.value() as usize])
    }
}

/// The 21434 risk-treatment options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Treatment {
    /// Accept the risk as-is.
    Retain,
    /// Reduce via cybersecurity controls (spawns requirements).
    Reduce,
    /// Transfer (insurance, contracts).
    Share,
    /// Remove the risk source (redesign).
    Avoid,
}

/// A security requirement derived from a treated risk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityRequirement {
    /// Stable id, e.g. `"req.ts.camera-blinding"`.
    pub id: String,
    /// The treated threat scenario.
    pub threat_id: String,
    /// Requirement text.
    pub text: String,
    /// Candidate control tags (match deployable controls, e.g.
    /// `"secure-channel"`, `"ids"`, `"mfp"`, `"secure-boot"`,
    /// `"drone-redundancy"`).
    pub candidate_controls: Vec<String>,
}

/// One assessed risk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssessedRisk {
    /// The threat scenario id.
    pub threat_id: String,
    /// The realized damage scenario id.
    pub damage_scenario_id: String,
    /// Impact level used (overall across categories).
    pub impact: ImpactLevel,
    /// Attack feasibility used.
    pub feasibility: AttackFeasibility,
    /// The resulting risk value.
    pub risk: RiskLevel,
    /// The treatment decision.
    pub treatment: Treatment,
}

/// The full TARA report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaraReport {
    /// Per-threat risks, sorted descending by risk value (stable by id).
    pub risks: Vec<AssessedRisk>,
    /// Combined safety–security findings, sorted by priority.
    pub interplay_findings: Vec<InterplayFinding>,
    /// Derived requirements for every `Reduce`-treated risk.
    requirements: Vec<SecurityRequirement>,
    /// Model-integrity problems found during assessment.
    pub dangling_references: Vec<String>,
}

impl TaraReport {
    /// The derived security requirements.
    pub fn requirements(&self) -> impl Iterator<Item = &SecurityRequirement> {
        self.requirements.iter()
    }

    /// Risks at or above the given level.
    #[must_use]
    pub fn risks_at_or_above(&self, level: RiskLevel) -> Vec<&AssessedRisk> {
        self.risks.iter().filter(|r| r.risk >= level).collect()
    }
}

/// The assessment engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tara;

impl Tara {
    /// Default treatment policy: risk ≥ 4 → `Avoid` is impractical for
    /// the worksite's core functions, so `Reduce`; risk 3 → `Reduce`;
    /// risk 2 → `Share`; risk 1 → `Retain`.
    #[must_use]
    pub fn default_treatment(risk: RiskLevel) -> Treatment {
        match risk.0 {
            0 | 1 => Treatment::Retain,
            2 => Treatment::Share,
            _ => Treatment::Reduce,
        }
    }

    /// Candidate controls for an attack class tag.
    #[must_use]
    pub fn candidate_controls(attack_class: Option<&str>) -> Vec<String> {
        match attack_class {
            Some("deauth-flood") => vec!["mfp".into(), "ids".into()],
            Some("rf-jamming") => vec!["ids".into(), "degraded-mode".into()],
            Some("gnss-spoofing") => {
                vec!["nav-consistency".into(), "ids".into(), "safe-stop".into()]
            }
            Some("gnss-jamming") => vec!["nav-consistency".into(), "degraded-mode".into()],
            Some("camera-blinding") => {
                vec![
                    "sensor-health".into(),
                    "drone-redundancy".into(),
                    "safe-stop".into(),
                ]
            }
            Some("replay") => vec!["secure-channel".into()],
            Some("rogue-node") => vec!["pki".into(), "secure-channel".into()],
            Some("firmware-tampering") => vec!["secure-boot".into(), "attestation".into()],
            _ => vec!["secure-channel".into(), "ids".into()],
        }
    }

    /// Runs the full assessment over a model.
    #[must_use]
    pub fn assess(model: &WorksiteModel) -> TaraReport {
        let mut risks = Vec::with_capacity(model.threats.len());
        let mut requirements = Vec::new();

        for threat in &model.threats {
            let impact = model
                .damage_scenario(&threat.damage_scenario_id)
                .map(|ds| ds.impact.overall())
                .unwrap_or(ImpactLevel::Negligible);
            let feasibility = threat.feasibility();
            let risk = RiskLevel::from_matrix(impact, feasibility);
            let treatment = Self::default_treatment(risk);
            if treatment == Treatment::Reduce {
                requirements.push(SecurityRequirement {
                    id: format!("req.{}", threat.id),
                    threat_id: threat.id.clone(),
                    text: format!(
                        "the system shall mitigate threat scenario {} (risk {})",
                        threat.id, risk.0
                    ),
                    candidate_controls: Self::candidate_controls(threat.attack_class.as_deref()),
                });
            }
            risks.push(AssessedRisk {
                threat_id: threat.id.clone(),
                damage_scenario_id: threat.damage_scenario_id.clone(),
                impact,
                feasibility,
                risk,
                treatment,
            });
        }
        risks.sort_by(|a, b| {
            b.risk
                .cmp(&a.risk)
                .then_with(|| a.threat_id.cmp(&b.threat_id))
        });

        let mut interplay_findings: Vec<InterplayFinding> = model
            .interplay
            .iter()
            .filter_map(|link| {
                let hazard = model.hazard(&link.hazard_id)?;
                let feasibility = model
                    .threats
                    .iter()
                    .find(|t| t.id == link.threat_id)?
                    .feasibility();
                Some(evaluate_link(link, hazard, feasibility))
            })
            .collect();
        interplay_findings.sort_by(|a, b| {
            b.priority()
                .cmp(&a.priority())
                .then_with(|| a.threat_id.cmp(&b.threat_id))
        });

        TaraReport {
            risks,
            interplay_findings,
            requirements,
            dangling_references: model.dangling_references(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::AttackPotential;
    use crate::impact::{ImpactCategory, ImpactRating};
    use crate::threat::{AttackStep, DamageScenario, ThreatScenario};
    use crate::{Asset, AssetCategory, SecurityProperty};

    fn tiny_model(impact: ImpactLevel, step_points: u8) -> WorksiteModel {
        WorksiteModel {
            assets: vec![Asset::new(
                "a",
                "asset",
                AssetCategory::Sensor,
                vec![SecurityProperty::Availability],
            )],
            damage_scenarios: vec![DamageScenario {
                id: "ds".into(),
                asset_id: "a".into(),
                violated_property: SecurityProperty::Availability,
                description: "d".into(),
                impact: ImpactRating::new().with(ImpactCategory::Safety, impact),
            }],
            threats: vec![ThreatScenario {
                id: "ts".into(),
                damage_scenario_id: "ds".into(),
                attack_class: Some("camera-blinding".into()),
                threat_agent: "vandal".into(),
                attack_paths: vec![vec![AttackStep {
                    action: "blind".into(),
                    potential: AttackPotential::new(step_points, 0, 0, 0, 0),
                }]],
            }],
            ..WorksiteModel::default()
        }
    }

    #[test]
    fn matrix_corners() {
        assert_eq!(
            RiskLevel::from_matrix(ImpactLevel::Negligible, AttackFeasibility::VeryLow).0,
            1
        );
        assert_eq!(
            RiskLevel::from_matrix(ImpactLevel::Severe, AttackFeasibility::High).0,
            5
        );
    }

    #[test]
    fn matrix_monotone() {
        use AttackFeasibility as F;
        use ImpactLevel as I;
        let impacts = [I::Negligible, I::Moderate, I::Major, I::Severe];
        let feas = [F::VeryLow, F::Low, F::Medium, F::High];
        for (i, imp) in impacts.iter().enumerate() {
            for (j, f) in feas.iter().enumerate() {
                let here = RiskLevel::from_matrix(*imp, *f);
                if i + 1 < impacts.len() {
                    assert!(RiskLevel::from_matrix(impacts[i + 1], *f) >= here);
                }
                if j + 1 < feas.len() {
                    assert!(RiskLevel::from_matrix(*imp, feas[j + 1]) >= here);
                }
            }
        }
    }

    #[test]
    fn severe_feasible_threat_gets_reduced_with_requirements() {
        let report = Tara::assess(&tiny_model(ImpactLevel::Severe, 0));
        assert_eq!(report.risks.len(), 1);
        assert_eq!(report.risks[0].risk.0, 5);
        assert_eq!(report.risks[0].treatment, Treatment::Reduce);
        let reqs: Vec<_> = report.requirements().collect();
        assert_eq!(reqs.len(), 1);
        assert!(reqs[0]
            .candidate_controls
            .contains(&"drone-redundancy".to_string()));
    }

    #[test]
    fn negligible_risk_retained_without_requirements() {
        let report = Tara::assess(&tiny_model(ImpactLevel::Negligible, 30));
        assert_eq!(report.risks[0].risk.0, 1);
        assert_eq!(report.risks[0].treatment, Treatment::Retain);
        assert_eq!(report.requirements().count(), 0);
    }

    #[test]
    fn risks_sorted_descending() {
        let mut model = tiny_model(ImpactLevel::Severe, 0);
        // Add a second, low-risk threat.
        model.threats.push(ThreatScenario {
            id: "ts2".into(),
            damage_scenario_id: "ds".into(),
            attack_class: None,
            threat_agent: "x".into(),
            attack_paths: vec![vec![AttackStep {
                action: "hard".into(),
                potential: AttackPotential::new(19, 8, 11, 0, 0),
            }]],
        });
        let report = Tara::assess(&model);
        assert!(report.risks[0].risk >= report.risks[1].risk);
        assert_eq!(report.risks_at_or_above(RiskLevel(5)).len(), 1);
    }

    #[test]
    fn assessment_is_pure() {
        let model = tiny_model(ImpactLevel::Major, 5);
        assert_eq!(Tara::assess(&model), Tara::assess(&model));
    }
}
