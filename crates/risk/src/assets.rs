//! Assets and security properties (the entry point of an asset-driven
//! TARA, following the CASCADE approach the paper's authors built for
//! automotive and intend to transfer to forestry).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse asset categories for the worksite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AssetCategory {
    /// Electronic control units and on-board computers.
    ControlUnit,
    /// Perception sensors (cameras, LiDAR, GNSS receivers).
    Sensor,
    /// Communication links and radios.
    CommunicationLink,
    /// Software and firmware images.
    Firmware,
    /// Operational and personal data.
    Data,
    /// Safety functions realised in software.
    SafetyFunction,
    /// Physical infrastructure (base station, chargers).
    Infrastructure,
}

/// The classic security properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecurityProperty {
    /// Confidentiality.
    Confidentiality,
    /// Integrity.
    Integrity,
    /// Availability.
    Availability,
    /// Authenticity (of origin).
    Authenticity,
}

impl fmt::Display for SecurityProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SecurityProperty::Confidentiality => "confidentiality",
            SecurityProperty::Integrity => "integrity",
            SecurityProperty::Availability => "availability",
            SecurityProperty::Authenticity => "authenticity",
        };
        f.write_str(s)
    }
}

/// An asset of the worksite system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Asset {
    /// Stable id, e.g. `"fw.ecu"`.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Category.
    pub category: AssetCategory,
    /// Which properties matter for this asset (drives damage-scenario
    /// enumeration).
    pub relevant_properties: Vec<SecurityProperty>,
}

impl Asset {
    /// Creates an asset.
    pub fn new(
        id: impl Into<String>,
        name: impl Into<String>,
        category: AssetCategory,
        relevant_properties: Vec<SecurityProperty>,
    ) -> Self {
        Asset {
            id: id.into(),
            name: name.into(),
            category,
            relevant_properties,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_serde() {
        let a = Asset::new(
            "fw.cam",
            "Forwarder people-detection camera",
            AssetCategory::Sensor,
            vec![SecurityProperty::Integrity, SecurityProperty::Availability],
        );
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(serde_json::from_str::<Asset>(&json).unwrap(), a);
    }

    #[test]
    fn property_display() {
        assert_eq!(SecurityProperty::Availability.to_string(), "availability");
    }
}
