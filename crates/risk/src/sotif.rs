//! SOTIF (ISO 21448) triggering-condition analysis adapted to forestry
//! machinery, as the paper's Sec. III-C proposes.
//!
//! SOTIF addresses hazards caused not by malfunction but by *functional
//! insufficiency*: the people-detection function performing as designed
//! yet inadequately in fog, dense stands or unusual worker postures.
//! The analysis classifies scenario space into the standard four areas
//! (known/unknown × safe/unsafe) and tracks the residual-risk estimate
//! per triggering condition as simulation evidence accumulates.

use serde::{Deserialize, Serialize};

/// The SOTIF scenario areas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioArea {
    /// Area 1: known safe.
    KnownSafe,
    /// Area 2: known unsafe (to be mitigated).
    KnownUnsafe,
    /// Area 3: unknown unsafe (to be discovered and minimized).
    UnknownUnsafe,
    /// Area 4: unknown safe.
    UnknownSafe,
}

/// A condition that can trigger functionally-insufficient behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggeringCondition {
    /// Stable id, e.g. `"tc.fog-detection"`.
    pub id: String,
    /// Narrative description.
    pub description: String,
    /// The affected function (by label).
    pub affected_function: String,
    /// Current classification.
    pub area: ScenarioArea,
}

/// Accumulating evidence about one triggering condition from simulation
/// or field runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Evidence {
    /// Exposures to the condition observed.
    pub exposures: u64,
    /// Exposures in which the function behaved unsafely.
    pub unsafe_outcomes: u64,
}

impl Evidence {
    /// Records one exposure.
    pub fn record(&mut self, was_unsafe: bool) {
        self.exposures += 1;
        if was_unsafe {
            self.unsafe_outcomes += 1;
        }
    }

    /// The observed unsafe rate (0 when no exposures).
    #[must_use]
    pub fn unsafe_rate(&self) -> f64 {
        if self.exposures == 0 {
            0.0
        } else {
            self.unsafe_outcomes as f64 / self.exposures as f64
        }
    }

    /// Rule-of-three style upper bound on the unsafe rate at ~95%
    /// confidence when no unsafe outcome has been seen; otherwise a
    /// crude upper estimate (rate + 3σ binomial).
    #[must_use]
    pub fn unsafe_rate_upper_bound(&self) -> f64 {
        if self.exposures == 0 {
            return 1.0;
        }
        let n = self.exposures as f64;
        if self.unsafe_outcomes == 0 {
            (3.0 / n).min(1.0)
        } else {
            let p = self.unsafe_rate();
            (p + 3.0 * (p * (1.0 - p) / n).sqrt()).min(1.0)
        }
    }

    /// Reclassifies the condition given an acceptance threshold on the
    /// unsafe-rate upper bound.
    #[must_use]
    pub fn classify(&self, acceptable_rate: f64) -> ScenarioArea {
        if self.exposures < 30 {
            // Too little evidence: still unknown.
            if self.unsafe_outcomes > 0 {
                ScenarioArea::UnknownUnsafe
            } else {
                ScenarioArea::UnknownSafe
            }
        } else if self.unsafe_rate_upper_bound() <= acceptable_rate {
            ScenarioArea::KnownSafe
        } else {
            ScenarioArea::KnownUnsafe
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_evidence_is_unknown() {
        let e = Evidence::default();
        assert_eq!(e.unsafe_rate(), 0.0);
        assert_eq!(e.unsafe_rate_upper_bound(), 1.0);
        assert_eq!(e.classify(0.01), ScenarioArea::UnknownSafe);
    }

    #[test]
    fn early_unsafe_outcome_is_unknown_unsafe() {
        let mut e = Evidence::default();
        for i in 0..10 {
            e.record(i == 3);
        }
        assert_eq!(e.classify(0.01), ScenarioArea::UnknownUnsafe);
    }

    #[test]
    fn clean_record_becomes_known_safe() {
        let mut e = Evidence::default();
        for _ in 0..1000 {
            e.record(false);
        }
        // Upper bound 3/1000 = 0.003 ≤ 0.01.
        assert_eq!(e.classify(0.01), ScenarioArea::KnownSafe);
    }

    #[test]
    fn dirty_record_becomes_known_unsafe() {
        let mut e = Evidence::default();
        for i in 0..1000 {
            e.record(i % 10 == 0); // 10% unsafe
        }
        assert!((e.unsafe_rate() - 0.1).abs() < 1e-9);
        assert_eq!(e.classify(0.01), ScenarioArea::KnownUnsafe);
    }

    #[test]
    fn upper_bound_shrinks_with_evidence() {
        let mut e = Evidence::default();
        let mut last = 1.0;
        for _ in 0..5 {
            for _ in 0..100 {
                e.record(false);
            }
            let ub = e.unsafe_rate_upper_bound();
            assert!(ub < last);
            last = ub;
        }
    }
}
