//! Damage scenarios, threat scenarios, attack paths and the worksite
//! model they hang off.

use crate::assets::{Asset, SecurityProperty};
use crate::feasibility::AttackPotential;
use crate::hara::Hazard;
use crate::impact::ImpactRating;
use crate::interplay::InterplayLink;
use crate::sotif::TriggeringCondition;
use serde::{Deserialize, Serialize};

/// A damage scenario: what goes wrong when a property of an asset is
/// violated (21434 clause 15.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DamageScenario {
    /// Stable id, e.g. `"ds.people-undetected"`.
    pub id: String,
    /// Id of the affected asset.
    pub asset_id: String,
    /// The violated property.
    pub violated_property: SecurityProperty,
    /// Narrative description.
    pub description: String,
    /// The impact rating.
    pub impact: ImpactRating,
}

/// One step of an attack path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackStep {
    /// What the attacker does.
    pub action: String,
    /// Attack potential required for this step.
    pub potential: AttackPotential,
}

/// A threat scenario realizing a damage scenario (21434 clause 15.4),
/// with one or more attack paths (clause 15.6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreatScenario {
    /// Stable id, e.g. `"ts.camera-blinding"`.
    pub id: String,
    /// The damage scenario this threat realizes.
    pub damage_scenario_id: String,
    /// Machine-readable attack class tag (matches the attack engine's
    /// `AttackKind` display names, e.g. `"gnss-spoofing"`), when the
    /// threat corresponds to a simulated attack.
    pub attack_class: Option<String>,
    /// Threat agent description (from the domain threat profile).
    pub threat_agent: String,
    /// Alternative attack paths; each path is a sequence of steps.
    pub attack_paths: Vec<Vec<AttackStep>>,
}

impl ThreatScenario {
    /// The scenario's attack feasibility: per 21434, a path's required
    /// potential is dominated by its hardest step (max), and the scenario
    /// takes its *easiest* path (min over paths).
    #[must_use]
    pub fn feasibility(&self) -> crate::feasibility::AttackFeasibility {
        self.attack_paths
            .iter()
            .filter_map(|path| {
                path.iter()
                    .map(|s| s.potential.total())
                    .max()
                    .map(|total| match total {
                        0..=13 => crate::feasibility::AttackFeasibility::High,
                        14..=19 => crate::feasibility::AttackFeasibility::Medium,
                        20..=24 => crate::feasibility::AttackFeasibility::Low,
                        _ => crate::feasibility::AttackFeasibility::VeryLow,
                    })
            })
            .max() // easiest path = highest feasibility
            .unwrap_or(crate::feasibility::AttackFeasibility::VeryLow)
    }
}

/// The full worksite model a TARA runs over.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorksiteModel {
    /// Assets.
    pub assets: Vec<Asset>,
    /// Damage scenarios.
    pub damage_scenarios: Vec<DamageScenario>,
    /// Threat scenarios.
    pub threats: Vec<ThreatScenario>,
    /// Machinery hazards (safety side).
    pub hazards: Vec<Hazard>,
    /// SOTIF triggering conditions.
    pub triggering_conditions: Vec<TriggeringCondition>,
    /// Safety–security interplay links.
    pub interplay: Vec<InterplayLink>,
}

impl WorksiteModel {
    /// Looks up a damage scenario by id.
    #[must_use]
    pub fn damage_scenario(&self, id: &str) -> Option<&DamageScenario> {
        self.damage_scenarios.iter().find(|d| d.id == id)
    }

    /// Looks up an asset by id.
    #[must_use]
    pub fn asset(&self, id: &str) -> Option<&Asset> {
        self.assets.iter().find(|a| a.id == id)
    }

    /// Looks up a hazard by id.
    #[must_use]
    pub fn hazard(&self, id: &str) -> Option<&Hazard> {
        self.hazards.iter().find(|h| h.id == id)
    }

    /// Validates referential integrity: every damage scenario points to a
    /// real asset, every threat to a real damage scenario, every
    /// interplay link to real endpoints. Returns the dangling references.
    #[must_use]
    pub fn dangling_references(&self) -> Vec<String> {
        let mut dangling = Vec::new();
        for ds in &self.damage_scenarios {
            if self.asset(&ds.asset_id).is_none() {
                dangling.push(format!("{} -> asset {}", ds.id, ds.asset_id));
            }
        }
        for ts in &self.threats {
            if self.damage_scenario(&ts.damage_scenario_id).is_none() {
                dangling.push(format!(
                    "{} -> damage scenario {}",
                    ts.id, ts.damage_scenario_id
                ));
            }
        }
        for link in &self.interplay {
            if !self.threats.iter().any(|t| t.id == link.threat_id) {
                dangling.push(format!("interplay -> threat {}", link.threat_id));
            }
            if self.hazard(&link.hazard_id).is_none() {
                dangling.push(format!("interplay -> hazard {}", link.hazard_id));
            }
        }
        dangling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::AttackFeasibility;

    fn step(total_hint: u8) -> AttackStep {
        AttackStep {
            action: "do a thing".into(),
            potential: AttackPotential::new(total_hint, 0, 0, 0, 0),
        }
    }

    #[test]
    fn path_feasibility_dominated_by_hardest_step() {
        let ts = ThreatScenario {
            id: "ts".into(),
            damage_scenario_id: "ds".into(),
            attack_class: None,
            threat_agent: "vandal".into(),
            attack_paths: vec![vec![step(0), step(19)]], // hardest step: 19 → Medium
        };
        assert_eq!(ts.feasibility(), AttackFeasibility::Medium);
    }

    #[test]
    fn scenario_takes_easiest_path() {
        let ts = ThreatScenario {
            id: "ts".into(),
            damage_scenario_id: "ds".into(),
            attack_class: None,
            threat_agent: "vandal".into(),
            attack_paths: vec![vec![step(19)], vec![step(2)]], // easy path exists → High
        };
        assert_eq!(ts.feasibility(), AttackFeasibility::High);
    }

    #[test]
    fn no_paths_is_very_low() {
        let ts = ThreatScenario {
            id: "ts".into(),
            damage_scenario_id: "ds".into(),
            attack_class: None,
            threat_agent: "vandal".into(),
            attack_paths: vec![],
        };
        assert_eq!(ts.feasibility(), AttackFeasibility::VeryLow);
    }

    #[test]
    fn dangling_reference_detection() {
        let model = WorksiteModel {
            threats: vec![ThreatScenario {
                id: "ts".into(),
                damage_scenario_id: "missing".into(),
                attack_class: None,
                threat_agent: "x".into(),
                attack_paths: vec![],
            }],
            ..WorksiteModel::default()
        };
        let dangling = model.dangling_references();
        assert_eq!(dangling.len(), 1);
        assert!(dangling[0].contains("missing"));
    }
}
