//! The safety–security interplay (IEC TS 63074; the paper's Sec. III-B).
//!
//! A security threat interacts with the machinery hazard picture in two
//! ways the model distinguishes:
//!
//! * **defeating a safety function** — e.g. camera blinding removes the
//!   risk reduction the people-detection stop function provides, so the
//!   hazard reverts to its unmitigated required PL;
//! * **raising exposure** — e.g. GNSS spoofing drags the machine outside
//!   its planned corridor, putting it near workers more often (F1 → F2).

use crate::feasibility::AttackFeasibility;
use crate::hara::{Exposure, Hazard, PerformanceLevel};
use serde::{Deserialize, Serialize};

/// How a threat affects a hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InterplayEffect {
    /// The threat can disable or degrade the hazard's safety function.
    DefeatsSafetyFunction,
    /// The threat raises exposure to the given level.
    RaisesExposure(Exposure),
}

/// A link between a threat scenario and a machinery hazard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterplayLink {
    /// The threat scenario id.
    pub threat_id: String,
    /// The hazard id.
    pub hazard_id: String,
    /// The effect.
    pub effect: InterplayEffect,
    /// Rationale for the link (reviewable evidence).
    pub rationale: String,
}

/// The combined safety–security finding for one link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterplayFinding {
    /// The link that produced the finding.
    pub threat_id: String,
    /// The affected hazard.
    pub hazard_id: String,
    /// The hazard's required PL without considering security.
    pub baseline_pl: PerformanceLevel,
    /// The required PL when the threat succeeds.
    pub compromised_pl: PerformanceLevel,
    /// The threat's feasibility (priority driver).
    pub feasibility: AttackFeasibility,
    /// Whether the safety function itself is defeated (a qualitative
    /// escalation beyond any PL statement).
    pub safety_function_defeated: bool,
}

impl InterplayFinding {
    /// A coarse priority: findings where a feasible attack defeats a
    /// high-PL safety function come first.
    #[must_use]
    pub fn priority(&self) -> u32 {
        let pl_weight = self.compromised_pl as u32 + 1;
        let defeat_weight = if self.safety_function_defeated { 10 } else { 0 };
        let feas_weight = u32::from(self.feasibility.value());
        pl_weight * (1 + feas_weight) + defeat_weight
    }
}

/// Evaluates one interplay link against its hazard and the threat's
/// feasibility.
#[must_use]
pub fn evaluate_link(
    link: &InterplayLink,
    hazard: &Hazard,
    feasibility: AttackFeasibility,
) -> InterplayFinding {
    let baseline_pl = hazard.required_pl();
    let (compromised_pl, defeated) = match link.effect {
        InterplayEffect::DefeatsSafetyFunction => (baseline_pl, true),
        InterplayEffect::RaisesExposure(exposure) => {
            (hazard.with_exposure(exposure).required_pl(), false)
        }
    };
    InterplayFinding {
        threat_id: link.threat_id.clone(),
        hazard_id: link.hazard_id.clone(),
        baseline_pl,
        compromised_pl,
        feasibility,
        safety_function_defeated: defeated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hara::{Avoidance, InjurySeverity};

    fn hazard() -> Hazard {
        Hazard {
            id: "hz.runover".into(),
            description: "machine strikes worker".into(),
            severity: InjurySeverity::S2,
            exposure: Exposure::F1,
            avoidance: Avoidance::P2,
            safety_function: Some("people-detection-stop".into()),
        }
    }

    #[test]
    fn exposure_raise_escalates_pl() {
        let link = InterplayLink {
            threat_id: "ts.gnss-spoof".into(),
            hazard_id: "hz.runover".into(),
            effect: InterplayEffect::RaisesExposure(Exposure::F2),
            rationale: "spoofed machine leaves corridor".into(),
        };
        let finding = evaluate_link(&link, &hazard(), AttackFeasibility::Medium);
        assert_eq!(finding.baseline_pl, PerformanceLevel::D);
        assert_eq!(finding.compromised_pl, PerformanceLevel::E);
        assert!(!finding.safety_function_defeated);
    }

    #[test]
    fn defeat_marks_function_defeated() {
        let link = InterplayLink {
            threat_id: "ts.blind".into(),
            hazard_id: "hz.runover".into(),
            effect: InterplayEffect::DefeatsSafetyFunction,
            rationale: "blinded camera cannot detect workers".into(),
        };
        let finding = evaluate_link(&link, &hazard(), AttackFeasibility::High);
        assert!(finding.safety_function_defeated);
        assert_eq!(finding.compromised_pl, finding.baseline_pl);
    }

    #[test]
    fn priority_ranks_defeats_and_feasibility_high() {
        let defeat = InterplayFinding {
            threat_id: "a".into(),
            hazard_id: "h".into(),
            baseline_pl: PerformanceLevel::D,
            compromised_pl: PerformanceLevel::D,
            feasibility: AttackFeasibility::High,
            safety_function_defeated: true,
        };
        let mild = InterplayFinding {
            threat_id: "b".into(),
            hazard_id: "h".into(),
            baseline_pl: PerformanceLevel::B,
            compromised_pl: PerformanceLevel::C,
            feasibility: AttackFeasibility::VeryLow,
            safety_function_defeated: false,
        };
        assert!(defeat.priority() > mild.priority());
    }
}
