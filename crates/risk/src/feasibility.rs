//! Attack-feasibility rating (ISO/SAE 21434 clause 15.7, attack-potential
//! approach).

use serde::{Deserialize, Serialize};

/// The attack-potential factors, each on its standard point scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackPotential {
    /// Elapsed time needed: 0 (≤1 day) … 19 (>6 months).
    pub elapsed_time: u8,
    /// Specialist expertise: 0 (layman) … 8 (multiple experts).
    pub expertise: u8,
    /// Knowledge of the item: 0 (public) … 11 (strictly confidential).
    pub knowledge: u8,
    /// Window of opportunity: 0 (unlimited) … 10 (difficult).
    pub window: u8,
    /// Equipment: 0 (standard) … 9 (multiple bespoke).
    pub equipment: u8,
}

impl AttackPotential {
    /// Creates a rating, clamping each factor to its scale.
    #[must_use]
    pub fn new(elapsed_time: u8, expertise: u8, knowledge: u8, window: u8, equipment: u8) -> Self {
        AttackPotential {
            elapsed_time: elapsed_time.min(19),
            expertise: expertise.min(8),
            knowledge: knowledge.min(11),
            window: window.min(10),
            equipment: equipment.min(9),
        }
    }

    /// The summed attack-potential value.
    #[must_use]
    pub fn total(&self) -> u8 {
        self.elapsed_time + self.expertise + self.knowledge + self.window + self.equipment
    }

    /// Maps the total to an attack-feasibility rating (21434 table:
    /// higher potential required ⇒ lower feasibility).
    #[must_use]
    pub fn feasibility(&self) -> AttackFeasibility {
        match self.total() {
            0..=13 => AttackFeasibility::High,
            14..=19 => AttackFeasibility::Medium,
            20..=24 => AttackFeasibility::Low,
            _ => AttackFeasibility::VeryLow,
        }
    }
}

/// The 21434 attack-feasibility levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackFeasibility {
    /// Considerable resources required.
    VeryLow,
    /// Significant resources required.
    Low,
    /// Moderate resources required.
    Medium,
    /// Attack is easy to mount.
    High,
}

impl AttackFeasibility {
    /// Numeric value 0–3 for risk matrices.
    #[must_use]
    pub fn value(self) -> u8 {
        match self {
            AttackFeasibility::VeryLow => 0,
            AttackFeasibility::Low => 1,
            AttackFeasibility::Medium => 2,
            AttackFeasibility::High => 3,
        }
    }

    /// Raises feasibility by one level (evidence the attack is happening
    /// in the field — used by continuous assessment).
    #[must_use]
    pub fn escalate(self) -> AttackFeasibility {
        match self {
            AttackFeasibility::VeryLow => AttackFeasibility::Low,
            AttackFeasibility::Low => AttackFeasibility::Medium,
            _ => AttackFeasibility::High,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        let p = AttackPotential::new(200, 200, 200, 200, 200);
        assert_eq!(p.total(), 19 + 8 + 11 + 10 + 9);
    }

    #[test]
    fn thresholds() {
        assert_eq!(
            AttackPotential::new(0, 0, 0, 0, 0).feasibility(),
            AttackFeasibility::High
        );
        assert_eq!(
            AttackPotential::new(13, 0, 0, 0, 0).feasibility(),
            AttackFeasibility::High
        );
        assert_eq!(
            AttackPotential::new(14, 0, 0, 0, 0).feasibility(),
            AttackFeasibility::Medium
        );
        assert_eq!(
            AttackPotential::new(19, 1, 0, 0, 0).feasibility(),
            AttackFeasibility::Low
        );
        assert_eq!(
            AttackPotential::new(19, 6, 0, 0, 0).feasibility(),
            AttackFeasibility::VeryLow
        );
    }

    #[test]
    fn feasibility_ordering() {
        assert!(AttackFeasibility::VeryLow < AttackFeasibility::High);
        assert_eq!(AttackFeasibility::High.value(), 3);
    }

    #[test]
    fn escalation_saturates() {
        assert_eq!(
            AttackFeasibility::VeryLow.escalate(),
            AttackFeasibility::Low
        );
        assert_eq!(
            AttackFeasibility::Medium.escalate(),
            AttackFeasibility::High
        );
        assert_eq!(AttackFeasibility::High.escalate(), AttackFeasibility::High);
    }

    #[test]
    fn more_potential_never_raises_feasibility() {
        let mut last = AttackFeasibility::High;
        for t in 0..40u8 {
            let p = AttackPotential::new(t.min(19), t.saturating_sub(19).min(8), 0, 0, 0);
            let f = p.feasibility();
            assert!(f <= last, "feasibility rose with potential at {t}");
            last = f;
        }
    }
}
