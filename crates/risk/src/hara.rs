//! Machinery hazard analysis and required performance levels
//! (ISO 12100 risk assessment feeding the ISO 13849-1 risk graph).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity of injury (ISO 13849-1 risk graph parameter S).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjurySeverity {
    /// S1 — slight (normally reversible) injury.
    S1,
    /// S2 — serious (normally irreversible) injury or death.
    S2,
}

/// Frequency/duration of exposure (parameter F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Exposure {
    /// F1 — seldom-to-less-often and/or short exposure.
    F1,
    /// F2 — frequent-to-continuous and/or long exposure.
    F2,
}

/// Possibility of avoiding the hazard (parameter P).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Avoidance {
    /// P1 — possible under specific conditions.
    P1,
    /// P2 — scarcely possible.
    P2,
}

/// ISO 13849-1 performance levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PerformanceLevel {
    /// PL a — lowest risk reduction.
    A,
    /// PL b.
    B,
    /// PL c.
    C,
    /// PL d.
    D,
    /// PL e — highest risk reduction.
    E,
}

impl fmt::Display for PerformanceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PerformanceLevel::A => "PL a",
            PerformanceLevel::B => "PL b",
            PerformanceLevel::C => "PL c",
            PerformanceLevel::D => "PL d",
            PerformanceLevel::E => "PL e",
        };
        f.write_str(s)
    }
}

/// The ISO 13849-1 risk graph: S × F × P → required PL.
#[must_use]
pub fn required_pl(s: InjurySeverity, f: Exposure, p: Avoidance) -> PerformanceLevel {
    match (s, f, p) {
        (InjurySeverity::S1, Exposure::F1, Avoidance::P1) => PerformanceLevel::A,
        (InjurySeverity::S1, Exposure::F1, Avoidance::P2) => PerformanceLevel::B,
        (InjurySeverity::S1, Exposure::F2, Avoidance::P1) => PerformanceLevel::B,
        (InjurySeverity::S1, Exposure::F2, Avoidance::P2) => PerformanceLevel::C,
        (InjurySeverity::S2, Exposure::F1, Avoidance::P1) => PerformanceLevel::C,
        (InjurySeverity::S2, Exposure::F1, Avoidance::P2) => PerformanceLevel::D,
        (InjurySeverity::S2, Exposure::F2, Avoidance::P1) => PerformanceLevel::D,
        (InjurySeverity::S2, Exposure::F2, Avoidance::P2) => PerformanceLevel::E,
    }
}

/// A machinery hazard with its risk-graph parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hazard {
    /// Stable id, e.g. `"hz.runover"`.
    pub id: String,
    /// Narrative description.
    pub description: String,
    /// Injury severity.
    pub severity: InjurySeverity,
    /// Exposure frequency.
    pub exposure: Exposure,
    /// Avoidance possibility.
    pub avoidance: Avoidance,
    /// The safety function mitigating this hazard, if any (by label).
    pub safety_function: Option<String>,
}

impl Hazard {
    /// The required performance level for this hazard's safety function.
    #[must_use]
    pub fn required_pl(&self) -> PerformanceLevel {
        required_pl(self.severity, self.exposure, self.avoidance)
    }

    /// The hazard re-rated with worsened exposure (the safety–security
    /// interplay: a security compromise can raise exposure, e.g. a
    /// spoofed machine wandering outside its planned corridor).
    #[must_use]
    pub fn with_exposure(&self, exposure: Exposure) -> Hazard {
        Hazard {
            exposure,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risk_graph_extremes() {
        assert_eq!(
            required_pl(InjurySeverity::S1, Exposure::F1, Avoidance::P1),
            PerformanceLevel::A
        );
        assert_eq!(
            required_pl(InjurySeverity::S2, Exposure::F2, Avoidance::P2),
            PerformanceLevel::E
        );
    }

    #[test]
    fn risk_graph_monotone_in_severity() {
        for f in [Exposure::F1, Exposure::F2] {
            for p in [Avoidance::P1, Avoidance::P2] {
                assert!(
                    required_pl(InjurySeverity::S1, f, p) <= required_pl(InjurySeverity::S2, f, p)
                );
            }
        }
    }

    #[test]
    fn risk_graph_monotone_in_exposure_and_avoidance() {
        for s in [InjurySeverity::S1, InjurySeverity::S2] {
            for p in [Avoidance::P1, Avoidance::P2] {
                assert!(required_pl(s, Exposure::F1, p) <= required_pl(s, Exposure::F2, p));
            }
            for f in [Exposure::F1, Exposure::F2] {
                assert!(required_pl(s, f, Avoidance::P1) <= required_pl(s, f, Avoidance::P2));
            }
        }
    }

    #[test]
    fn worsened_exposure_raises_pl() {
        let hz = Hazard {
            id: "hz.runover".into(),
            description: "forwarder strikes a worker".into(),
            severity: InjurySeverity::S2,
            exposure: Exposure::F1,
            avoidance: Avoidance::P2,
            safety_function: Some("people-detection-stop".into()),
        };
        assert_eq!(hz.required_pl(), PerformanceLevel::D);
        assert_eq!(
            hz.with_exposure(Exposure::F2).required_pl(),
            PerformanceLevel::E
        );
    }

    #[test]
    fn pl_display() {
        assert_eq!(PerformanceLevel::D.to_string(), "PL d");
    }
}
