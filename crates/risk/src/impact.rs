//! Impact rating (ISO/SAE 21434 clause 15.5).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The four 21434 impact categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ImpactCategory {
    /// Harm to people.
    Safety,
    /// Monetary loss.
    Financial,
    /// Disruption of operations.
    Operational,
    /// Exposure of personal or sensitive data.
    Privacy,
}

impl ImpactCategory {
    /// All categories.
    pub const ALL: [ImpactCategory; 4] = [
        ImpactCategory::Safety,
        ImpactCategory::Financial,
        ImpactCategory::Operational,
        ImpactCategory::Privacy,
    ];
}

/// The 21434 impact levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ImpactLevel {
    /// No noticeable effect.
    Negligible,
    /// Inconvenient but manageable.
    Moderate,
    /// Substantial harm or loss.
    Major,
    /// Life-threatening or existential.
    Severe,
}

impl ImpactLevel {
    /// Numeric value 0–3 for risk matrices.
    #[must_use]
    pub fn value(self) -> u8 {
        match self {
            ImpactLevel::Negligible => 0,
            ImpactLevel::Moderate => 1,
            ImpactLevel::Major => 2,
            ImpactLevel::Severe => 3,
        }
    }
}

/// A per-category impact rating.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ImpactRating(BTreeMap<ImpactCategory, ImpactLevel>);

impl ImpactRating {
    /// Creates an empty rating (all categories negligible).
    #[must_use]
    pub fn new() -> Self {
        ImpactRating::default()
    }

    /// Sets a category's level (builder style).
    #[must_use]
    pub fn with(mut self, category: ImpactCategory, level: ImpactLevel) -> Self {
        self.0.insert(category, level);
        self
    }

    /// The level for a category (Negligible when unset).
    #[must_use]
    pub fn level(&self, category: ImpactCategory) -> ImpactLevel {
        self.0
            .get(&category)
            .copied()
            .unwrap_or(ImpactLevel::Negligible)
    }

    /// The maximum level across categories (drives the risk value).
    #[must_use]
    pub fn overall(&self) -> ImpactLevel {
        ImpactCategory::ALL
            .iter()
            .map(|c| self.level(*c))
            .max()
            .unwrap_or(ImpactLevel::Negligible)
    }

    /// Whether safety impact is Major or Severe (triggers interplay
    /// analysis).
    #[must_use]
    pub fn is_safety_relevant(&self) -> bool {
        self.level(ImpactCategory::Safety) >= ImpactLevel::Major
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        assert!(ImpactLevel::Negligible < ImpactLevel::Moderate);
        assert!(ImpactLevel::Major < ImpactLevel::Severe);
        assert_eq!(ImpactLevel::Severe.value(), 3);
    }

    #[test]
    fn rating_defaults_and_overall() {
        let r = ImpactRating::new();
        assert_eq!(r.overall(), ImpactLevel::Negligible);
        let r = r
            .with(ImpactCategory::Operational, ImpactLevel::Major)
            .with(ImpactCategory::Safety, ImpactLevel::Moderate);
        assert_eq!(r.level(ImpactCategory::Operational), ImpactLevel::Major);
        assert_eq!(r.level(ImpactCategory::Privacy), ImpactLevel::Negligible);
        assert_eq!(r.overall(), ImpactLevel::Major);
    }

    #[test]
    fn safety_relevance() {
        let low = ImpactRating::new().with(ImpactCategory::Safety, ImpactLevel::Moderate);
        assert!(!low.is_safety_relevant());
        let high = ImpactRating::new().with(ImpactCategory::Safety, ImpactLevel::Severe);
        assert!(high.is_safety_relevant());
    }

    #[test]
    fn serde_roundtrip() {
        let r = ImpactRating::new().with(ImpactCategory::Safety, ImpactLevel::Severe);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<ImpactRating>(&json).unwrap(), r);
    }
}
