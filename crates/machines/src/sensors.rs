//! People-detection sensors with occlusion, range, field-of-view and
//! weather effects.
//!
//! These model the safety-critical perception path of the paper's use
//! case. A sensor sample either detects a worker (with a noisy position
//! estimate and a confidence) or it does not; detection probability
//! combines geometry (range falloff, field of view), the world's
//! line-of-sight factor (terrain/trunk/canopy occlusion), weather, and
//! the sensor's health (camera blinding attacks reduce it).

use serde::{Deserialize, Serialize};
use silvasec_sim::geom::{Vec2, Vec3};
use silvasec_sim::humans::{Human, HumanId};
use silvasec_sim::rng::SimRng;
use silvasec_sim::weather::Weather;
use silvasec_sim::world::World;

/// The sensor technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SensorKind {
    /// Optical camera with a forward cone field of view.
    Camera,
    /// 360° LiDAR.
    Lidar,
    /// Short-range ultrasonic ring.
    Ultrasonic,
}

impl SensorKind {
    /// Base detection range in clear weather, metres.
    #[must_use]
    pub fn base_range_m(self) -> f64 {
        match self {
            SensorKind::Camera => 60.0,
            SensorKind::Lidar => 45.0,
            SensorKind::Ultrasonic => 8.0,
        }
    }

    /// Horizontal field of view, radians.
    #[must_use]
    pub fn fov_rad(self) -> f64 {
        match self {
            SensorKind::Camera => 2.1, // ~120°
            SensorKind::Lidar | SensorKind::Ultrasonic => std::f64::consts::TAU,
        }
    }

    /// Per-sample detection probability for an unoccluded target at
    /// close range in clear weather.
    #[must_use]
    pub fn base_detection_prob(self) -> f64 {
        match self {
            SensorKind::Camera => 0.92,
            SensorKind::Lidar => 0.85,
            SensorKind::Ultrasonic => 0.95,
        }
    }

    /// Whether weather attenuates this sensor (optical sensors only).
    #[must_use]
    pub fn weather_sensitive(self) -> bool {
        matches!(self, SensorKind::Camera | SensorKind::Lidar)
    }
}

/// A detection of one worker in one sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Which worker was detected.
    pub human_id: HumanId,
    /// Noisy position estimate.
    pub position: Vec2,
    /// Confidence in `[0, 1]`.
    pub confidence: f64,
    /// True distance from the sensor at sample time, metres.
    pub distance_m: f64,
}

/// A people-detection sensor instance.
///
/// `health` is the sensor's attack surface: camera-blinding reduces it
/// towards zero; the IDS watches for exactly that collapse.
#[derive(Debug, Clone)]
pub struct PeopleSensor {
    /// Sensor technology.
    pub kind: SensorKind,
    /// Mount height above ground (ground machines) — aerial use supplies
    /// full 3-D poses instead.
    pub mount_height_m: f64,
    /// Health factor in `[0, 1]`; 1 = nominal, 0 = fully blinded.
    pub health: f64,
}

impl PeopleSensor {
    /// Creates a nominal sensor.
    #[must_use]
    pub fn new(kind: SensorKind, mount_height_m: f64) -> Self {
        PeopleSensor {
            kind,
            mount_height_m,
            health: 1.0,
        }
    }

    /// Applies degradation (e.g. a blinding attack); clamps to `[0, 1]`.
    pub fn degrade(&mut self, health: f64) {
        self.health = health.clamp(0.0, 1.0);
    }

    /// The effective detection range under `weather`, metres.
    fn effective_range(&self, weather: Weather) -> f64 {
        self.kind.base_range_m()
            * if self.kind.weather_sensitive() {
                weather.optical_range_factor()
            } else {
                1.0
            }
    }

    /// Samples one human: applies the range / field-of-view / occlusion
    /// filters (no RNG draws), then — only for a passing target — draws
    /// the detection chance and position noise. Shared verbatim by the
    /// allocating linear-scan oracles and the grid-culled `_into`
    /// variants so their RNG streams and outputs are bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn sample_human(
        &self,
        world: &World,
        sensor_pos: Vec3,
        heading: Option<f64>,
        weather: Weather,
        range: f64,
        human: &Human,
        rng: &mut SimRng,
        out: &mut Vec<Detection>,
    ) {
        let target = world.human_target_point(human);
        let dist = sensor_pos.distance(target);
        if dist > range {
            return;
        }
        // Field-of-view check against the 2-D bearing.
        if let Some(h) = heading {
            let bearing = (human.position - sensor_pos.xy()).heading();
            let mut diff = (bearing - h).abs() % std::f64::consts::TAU;
            if diff > std::f64::consts::PI {
                diff = std::f64::consts::TAU - diff;
            }
            if diff > self.kind.fov_rad() / 2.0 {
                return;
            }
        }
        let visibility = world.visibility(sensor_pos, target);
        if visibility.is_blocked() {
            return;
        }
        let weather_conf = if self.kind.weather_sensitive() {
            weather.detection_confidence_factor()
        } else {
            1.0
        };
        let range_falloff = 1.0 - 0.3 * (dist / range);
        let p = self.kind.base_detection_prob()
            * visibility.factor
            * weather_conf
            * range_falloff
            * self.health;
        if rng.chance(p) {
            let sigma = 0.2 + 0.02 * dist;
            let estimate = Vec2::new(
                human.position.x + rng.normal(0.0, sigma),
                human.position.y + rng.normal(0.0, sigma),
            );
            out.push(Detection {
                human_id: human.id,
                position: estimate,
                confidence: p.clamp(0.0, 1.0),
                distance_m: dist,
            });
        }
    }

    /// Samples detections from a ground pose (`position`, `heading`).
    ///
    /// Allocating linear-scan form; the hot path uses
    /// [`PeopleSensor::detect_into`], with this as its parity oracle.
    #[must_use]
    pub fn detect(
        &self,
        world: &World,
        position: Vec2,
        heading: f64,
        rng: &mut SimRng,
    ) -> Vec<Detection> {
        let sensor_pos = position.with_z(world.ground_at(position) + self.mount_height_m);
        self.detect_from(world, sensor_pos, Some(heading), rng)
    }

    /// Samples detections from an arbitrary 3-D pose (aerial use). A
    /// `heading` of `None` means omnidirectional (gimballed camera).
    ///
    /// Allocating linear-scan form; the hot path uses
    /// [`PeopleSensor::detect_from_into`], with this as its parity
    /// oracle.
    #[must_use]
    pub fn detect_from(
        &self,
        world: &World,
        sensor_pos: Vec3,
        heading: Option<f64>,
        rng: &mut SimRng,
    ) -> Vec<Detection> {
        let weather = world.weather();
        let range = self.effective_range(weather);
        let mut out = Vec::new();
        for human in world.humans() {
            self.sample_human(
                world, sensor_pos, heading, weather, range, human, rng, &mut out,
            );
        }
        out
    }

    /// Zero-alloc, grid-culled form of [`PeopleSensor::detect`]: writes
    /// detections into caller-owned `out` (cleared first), using
    /// `candidates` as index scratch. With warm capacities no heap
    /// allocation occurs. Output and RNG stream are bit-identical to
    /// `detect` — see [`silvasec_sim::grid::EntityGrid`] for the culling
    /// equivalence argument.
    pub fn detect_into(
        &self,
        world: &World,
        position: Vec2,
        heading: f64,
        rng: &mut SimRng,
        candidates: &mut Vec<u32>,
        out: &mut Vec<Detection>,
    ) {
        let sensor_pos = position.with_z(world.ground_at(position) + self.mount_height_m);
        self.detect_from_into(world, sensor_pos, Some(heading), rng, candidates, out);
    }

    /// Zero-alloc, grid-culled form of [`PeopleSensor::detect_from`].
    ///
    /// The grid query is 2-D with the full weather-adjusted range as
    /// radius; since planar distance never exceeds the 3-D sensor-target
    /// distance the candidate set is a superset of every human passing
    /// the range filter, and candidates arrive index-sorted, so
    /// re-applying the exact per-human filters visits the same accepted
    /// humans in the same order as the linear scan.
    pub fn detect_from_into(
        &self,
        world: &World,
        sensor_pos: Vec3,
        heading: Option<f64>,
        rng: &mut SimRng,
        candidates: &mut Vec<u32>,
        out: &mut Vec<Detection>,
    ) {
        out.clear();
        let weather = world.weather();
        let range = self.effective_range(weather);
        world
            .human_grid()
            .fill_candidates(sensor_pos.xy(), range, candidates);
        for &i in candidates.iter() {
            let human = &world.humans()[i as usize];
            self.sample_human(world, sensor_pos, heading, weather, range, human, rng, out);
        }
    }
}

/// Serializes a detection feed into `out` (cleared first), byte-for-byte
/// identical to `serde_json::to_vec(&detections)`: objects keep field
/// declaration order, the printer is compact, floats use the shortest
/// round-trip `Display` form and non-finite floats render as `null` —
/// exactly the vendored serializer's rules. Byte identity is load-bearing:
/// the payload length feeds the radio frame's airtime and loss draws, so
/// a single divergent digit would shift the RNG stream.
///
/// Allocation-free once `out` is warm.
pub fn detections_to_json(detections: &[Detection], out: &mut Vec<u8>) {
    use std::io::Write as _;
    fn write_f64(out: &mut Vec<u8>, f: f64) {
        if f.is_finite() {
            let _ = write!(out, "{f}");
        } else {
            out.extend_from_slice(b"null");
        }
    }
    out.clear();
    if detections.is_empty() {
        out.extend_from_slice(b"[]");
        return;
    }
    out.push(b'[');
    for (i, d) in detections.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        out.extend_from_slice(b"{\"human_id\":");
        let _ = write!(out, "{}", d.human_id.0);
        out.extend_from_slice(b",\"position\":{\"x\":");
        write_f64(out, d.position.x);
        out.extend_from_slice(b",\"y\":");
        write_f64(out, d.position.y);
        out.extend_from_slice(b"},\"confidence\":");
        write_f64(out, d.confidence);
        out.extend_from_slice(b",\"distance_m\":");
        write_f64(out, d.distance_m);
        out.push(b'}');
    }
    out.push(b']');
}

/// Parses a detection feed into `out` (cleared first); returns whether a
/// feed was decoded, matching `serde_json::from_slice::<Vec<Detection>>`
/// exactly in both acceptance and values.
///
/// The fast path is a strict scanner for the canonical grammar
/// [`detections_to_json`] emits and allocates nothing; any deviation
/// (whitespace, reordered keys, escapes — e.g. a forged payload) falls
/// back to the full `serde_json` parser, so hostile input behaves
/// exactly as it always did. Number equivalence: the fallback parses an
/// integral token as `u64` and widens with `as f64`, which rounds to the
/// same value `str::parse::<f64>` produces for the same token.
pub fn detections_from_json(bytes: &[u8], out: &mut Vec<Detection>) -> bool {
    out.clear();
    if parse_feed_fast(bytes, out) {
        return true;
    }
    out.clear();
    match serde_json::from_slice::<Vec<Detection>>(bytes) {
        Ok(v) => {
            out.extend_from_slice(&v);
            true
        }
        Err(_) => false,
    }
}

fn eat(bytes: &[u8], p: &mut usize, tok: &[u8]) -> bool {
    if bytes[*p..].starts_with(tok) {
        *p += tok.len();
        true
    } else {
        false
    }
}

fn scan_u32(bytes: &[u8], p: &mut usize) -> Option<u32> {
    let start = *p;
    while *p < bytes.len() && bytes[*p].is_ascii_digit() {
        *p += 1;
    }
    if *p == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*p]).ok()?.parse().ok()
}

/// Scans one JSON number token (the same token boundary the fallback
/// parser uses) and parses it as `f64`.
fn scan_f64(bytes: &[u8], p: &mut usize) -> Option<f64> {
    let start = *p;
    if *p < bytes.len() && bytes[*p] == b'-' {
        *p += 1;
    }
    while *p < bytes.len() && bytes[*p].is_ascii_digit() {
        *p += 1;
    }
    if *p < bytes.len() && bytes[*p] == b'.' {
        *p += 1;
        while *p < bytes.len() && bytes[*p].is_ascii_digit() {
            *p += 1;
        }
    }
    if *p < bytes.len() && matches!(bytes[*p], b'e' | b'E') {
        *p += 1;
        if *p < bytes.len() && matches!(bytes[*p], b'+' | b'-') {
            *p += 1;
        }
        while *p < bytes.len() && bytes[*p].is_ascii_digit() {
            *p += 1;
        }
    }
    if *p == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*p]).ok()?.parse().ok()
}

fn parse_feed_fast(bytes: &[u8], out: &mut Vec<Detection>) -> bool {
    let mut p = 0usize;
    if !eat(bytes, &mut p, b"[") {
        return false;
    }
    if eat(bytes, &mut p, b"]") {
        return p == bytes.len();
    }
    loop {
        if !eat(bytes, &mut p, b"{\"human_id\":") {
            return false;
        }
        let Some(id) = scan_u32(bytes, &mut p) else {
            return false;
        };
        if !eat(bytes, &mut p, b",\"position\":{\"x\":") {
            return false;
        }
        let Some(x) = scan_f64(bytes, &mut p) else {
            return false;
        };
        if !eat(bytes, &mut p, b",\"y\":") {
            return false;
        }
        let Some(y) = scan_f64(bytes, &mut p) else {
            return false;
        };
        if !eat(bytes, &mut p, b"},\"confidence\":") {
            return false;
        }
        let Some(confidence) = scan_f64(bytes, &mut p) else {
            return false;
        };
        if !eat(bytes, &mut p, b",\"distance_m\":") {
            return false;
        }
        let Some(distance_m) = scan_f64(bytes, &mut p) else {
            return false;
        };
        if !eat(bytes, &mut p, b"}") {
            return false;
        }
        out.push(Detection {
            human_id: HumanId(id),
            position: Vec2::new(x, y),
            confidence,
            distance_m,
        });
        if eat(bytes, &mut p, b",") {
            continue;
        }
        return eat(bytes, &mut p, b"]") && p == bytes.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::prelude::*;
    use silvasec_sim::terrain::TerrainConfig;
    use silvasec_sim::vegetation::StandConfig;

    /// A world with one human at a known location and no trees.
    fn open_world(human_near: Vec2) -> World {
        let config = WorldConfig {
            terrain: TerrainConfig {
                size_m: 200.0,
                relief_m: 0.001,
                ..TerrainConfig::default()
            },
            stand: StandConfig {
                trees_per_hectare: 0.0,
                ..StandConfig::default()
            },
            human_count: 1,
            ..WorldConfig::default()
        };
        let mut world = World::generate(&config, SimRng::from_seed(1));
        // Humans spawn randomly; step zero time and relocate via stepping
        // is awkward — instead exploit that detection reads positions, so
        // regenerate until the worker is near the desired point.
        let mut seed = 2;
        while world.humans()[0].position.distance(human_near) > 60.0 && seed < 200 {
            world = World::generate(&config, SimRng::from_seed(seed));
            seed += 1;
        }
        world
    }

    #[test]
    fn detects_close_unoccluded_worker() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Lidar, 3.0);
        let mut rng = SimRng::from_seed(3);
        let mut hits = 0;
        let pose = worker + Vec2::new(10.0, 0.0);
        for _ in 0..100 {
            if !sensor.detect(&world, pose, 0.0, &mut rng).is_empty() {
                hits += 1;
            }
        }
        assert!(hits > 60, "only {hits}/100 detections at 10 m in the open");
    }

    #[test]
    fn ignores_out_of_range_worker() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Ultrasonic, 1.0);
        let mut rng = SimRng::from_seed(4);
        // 50 m away with an 8 m sensor.
        let pose = worker + Vec2::new(50.0, 0.0);
        for _ in 0..50 {
            assert!(sensor.detect(&world, pose, 0.0, &mut rng).is_empty());
        }
    }

    #[test]
    fn camera_fov_limits_detection() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Camera, 2.5);
        let mut rng = SimRng::from_seed(5);
        let pose = worker + Vec2::new(15.0, 0.0);
        // Worker is due west of the pose; looking east misses entirely.
        for _ in 0..50 {
            assert!(sensor.detect(&world, pose, 0.0, &mut rng).is_empty());
        }
        // Looking west hits.
        let mut hits = 0;
        for _ in 0..100 {
            if !sensor
                .detect(&world, pose, std::f64::consts::PI, &mut rng)
                .is_empty()
            {
                hits += 1;
            }
        }
        assert!(hits > 60, "{hits}/100 looking at the worker");
    }

    #[test]
    fn blinded_sensor_detects_nothing() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let mut sensor = PeopleSensor::new(SensorKind::Camera, 2.5);
        sensor.degrade(0.0);
        let mut rng = SimRng::from_seed(6);
        let pose = worker + Vec2::new(10.0, 0.0);
        for _ in 0..100 {
            assert!(sensor
                .detect(&world, pose, std::f64::consts::PI, &mut rng)
                .is_empty());
        }
    }

    #[test]
    fn degraded_sensor_detects_less() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let pose = worker + Vec2::new(10.0, 0.0);
        let rate = |health: f64| {
            let mut s = PeopleSensor::new(SensorKind::Lidar, 3.0);
            s.degrade(health);
            let mut rng = SimRng::from_seed(7);
            (0..300)
                .filter(|_| !s.detect(&world, pose, 0.0, &mut rng).is_empty())
                .count()
        };
        let healthy = rate(1.0);
        let weak = rate(0.3);
        assert!(weak < healthy / 2, "healthy {healthy}, weak {weak}");
    }

    #[test]
    fn aerial_detection_from_overhead() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Camera, 0.0);
        let mut rng = SimRng::from_seed(8);
        let aerial = worker.with_z(world.ground_at(worker) + 40.0);
        let mut hits = 0;
        for _ in 0..100 {
            if !sensor
                .detect_from(&world, aerial, None, &mut rng)
                .is_empty()
            {
                hits += 1;
            }
        }
        assert!(hits > 60, "{hits}/100 from overhead");
    }

    #[test]
    fn estimate_noise_grows_with_distance_on_average() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Lidar, 3.0);
        let mean_err = |dist: f64| {
            let mut rng = SimRng::from_seed(9);
            let pose = worker + Vec2::new(dist, 0.0);
            let mut errs = Vec::new();
            for _ in 0..2000 {
                for d in sensor.detect(&world, pose, 0.0, &mut rng) {
                    errs.push(d.position.distance(worker));
                }
            }
            errs.iter().sum::<f64>() / errs.len().max(1) as f64
        };
        let near = mean_err(5.0);
        let far = mean_err(35.0);
        assert!(
            far > near,
            "noise at 35 m ({far}) should exceed 5 m ({near})"
        );
    }

    fn feed_cases() -> Vec<Vec<Detection>> {
        let det = |id: u32, x: f64, y: f64, c: f64, d: f64| Detection {
            human_id: HumanId(id),
            position: Vec2::new(x, y),
            confidence: c,
            distance_m: d,
        };
        vec![
            vec![],
            vec![det(0, 0.0, -0.0, 1.0, 0.1)],
            vec![
                det(7, 123.456789012345, -98.7, 0.8315450011223344, 41.0),
                det(u32::MAX, 1e-12, 2.5e300, 0.0, 1.0 / 3.0),
            ],
            vec![det(3, std::f64::consts::PI * 1e5, -1234.0, 0.25, 60.0)],
        ]
    }

    #[test]
    fn feed_writer_matches_serde_bytes() {
        let mut buf = Vec::new();
        for feed in feed_cases() {
            detections_to_json(&feed, &mut buf);
            let oracle = serde_json::to_vec(&feed).unwrap();
            assert_eq!(buf, oracle, "writer diverged for {feed:?}");
        }
    }

    #[test]
    fn feed_parser_round_trips_and_matches_serde() {
        let mut buf = Vec::new();
        let mut parsed = Vec::new();
        for feed in feed_cases() {
            detections_to_json(&feed, &mut buf);
            assert!(detections_from_json(&buf, &mut parsed));
            assert_eq!(parsed, feed);
        }
    }

    #[test]
    fn feed_parser_fallback_agrees_with_serde_on_hostile_input() {
        let mut parsed = Vec::new();
        let cases: &[&[u8]] = &[
            b"",
            b"not json",
            b"[",
            b"[{\"human_id\":1}]",
            b"{\"human_id\":1}",
            // Whitespace and reordered keys: serde accepts, fast path
            // cannot — the fallback must still decode them.
            b"[ {\"position\":{\"x\":1.0,\"y\":2.0},\"human_id\":4,\"confidence\":0.5,\"distance_m\":3.0} ]",
            // Float where an integer id is expected.
            b"[{\"human_id\":1.5,\"position\":{\"x\":0,\"y\":0},\"confidence\":0,\"distance_m\":0}]",
        ];
        for &bytes in cases {
            let ok = detections_from_json(bytes, &mut parsed);
            let oracle = serde_json::from_slice::<Vec<Detection>>(bytes);
            assert_eq!(ok, oracle.is_ok(), "acceptance diverged for {bytes:?}");
            if let Ok(o) = oracle {
                // Compare re-serialized bytes: missing fields decode to
                // NaN, which is unequal to itself under `PartialEq`.
                assert_eq!(
                    serde_json::to_vec(&parsed).unwrap(),
                    serde_json::to_vec(&o).unwrap(),
                    "values diverged for {bytes:?}"
                );
            }
        }
    }

    #[test]
    fn detection_reports_identity_and_distance() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = &world.humans()[0];
        let sensor = PeopleSensor::new(SensorKind::Lidar, 3.0);
        let mut rng = SimRng::from_seed(10);
        let pose = worker.position + Vec2::new(10.0, 0.0);
        for _ in 0..100 {
            for d in sensor.detect(&world, pose, 0.0, &mut rng) {
                assert_eq!(d.human_id, worker.id);
                assert!((d.distance_m - 10.0).abs() < 3.0);
                assert!((0.0..=1.0).contains(&d.confidence));
            }
        }
    }
}
