//! People-detection sensors with occlusion, range, field-of-view and
//! weather effects.
//!
//! These model the safety-critical perception path of the paper's use
//! case. A sensor sample either detects a worker (with a noisy position
//! estimate and a confidence) or it does not; detection probability
//! combines geometry (range falloff, field of view), the world's
//! line-of-sight factor (terrain/trunk/canopy occlusion), weather, and
//! the sensor's health (camera blinding attacks reduce it).

use serde::{Deserialize, Serialize};
use silvasec_sim::geom::{Vec2, Vec3};
use silvasec_sim::humans::HumanId;
use silvasec_sim::rng::SimRng;
use silvasec_sim::world::World;

/// The sensor technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SensorKind {
    /// Optical camera with a forward cone field of view.
    Camera,
    /// 360° LiDAR.
    Lidar,
    /// Short-range ultrasonic ring.
    Ultrasonic,
}

impl SensorKind {
    /// Base detection range in clear weather, metres.
    #[must_use]
    pub fn base_range_m(self) -> f64 {
        match self {
            SensorKind::Camera => 60.0,
            SensorKind::Lidar => 45.0,
            SensorKind::Ultrasonic => 8.0,
        }
    }

    /// Horizontal field of view, radians.
    #[must_use]
    pub fn fov_rad(self) -> f64 {
        match self {
            SensorKind::Camera => 2.1, // ~120°
            SensorKind::Lidar | SensorKind::Ultrasonic => std::f64::consts::TAU,
        }
    }

    /// Per-sample detection probability for an unoccluded target at
    /// close range in clear weather.
    #[must_use]
    pub fn base_detection_prob(self) -> f64 {
        match self {
            SensorKind::Camera => 0.92,
            SensorKind::Lidar => 0.85,
            SensorKind::Ultrasonic => 0.95,
        }
    }

    /// Whether weather attenuates this sensor (optical sensors only).
    #[must_use]
    pub fn weather_sensitive(self) -> bool {
        matches!(self, SensorKind::Camera | SensorKind::Lidar)
    }
}

/// A detection of one worker in one sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Which worker was detected.
    pub human_id: HumanId,
    /// Noisy position estimate.
    pub position: Vec2,
    /// Confidence in `[0, 1]`.
    pub confidence: f64,
    /// True distance from the sensor at sample time, metres.
    pub distance_m: f64,
}

/// A people-detection sensor instance.
///
/// `health` is the sensor's attack surface: camera-blinding reduces it
/// towards zero; the IDS watches for exactly that collapse.
#[derive(Debug, Clone)]
pub struct PeopleSensor {
    /// Sensor technology.
    pub kind: SensorKind,
    /// Mount height above ground (ground machines) — aerial use supplies
    /// full 3-D poses instead.
    pub mount_height_m: f64,
    /// Health factor in `[0, 1]`; 1 = nominal, 0 = fully blinded.
    pub health: f64,
}

impl PeopleSensor {
    /// Creates a nominal sensor.
    #[must_use]
    pub fn new(kind: SensorKind, mount_height_m: f64) -> Self {
        PeopleSensor {
            kind,
            mount_height_m,
            health: 1.0,
        }
    }

    /// Applies degradation (e.g. a blinding attack); clamps to `[0, 1]`.
    pub fn degrade(&mut self, health: f64) {
        self.health = health.clamp(0.0, 1.0);
    }

    /// Samples detections from a ground pose (`position`, `heading`).
    #[must_use]
    pub fn detect(
        &self,
        world: &World,
        position: Vec2,
        heading: f64,
        rng: &mut SimRng,
    ) -> Vec<Detection> {
        let sensor_pos = position.with_z(world.ground_at(position) + self.mount_height_m);
        self.detect_from(world, sensor_pos, Some(heading), rng)
    }

    /// Samples detections from an arbitrary 3-D pose (aerial use). A
    /// `heading` of `None` means omnidirectional (gimballed camera).
    #[must_use]
    pub fn detect_from(
        &self,
        world: &World,
        sensor_pos: Vec3,
        heading: Option<f64>,
        rng: &mut SimRng,
    ) -> Vec<Detection> {
        let weather = world.weather();
        let range = self.kind.base_range_m()
            * if self.kind.weather_sensitive() {
                weather.optical_range_factor()
            } else {
                1.0
            };

        let mut out = Vec::new();
        for human in world.humans() {
            let target = world.human_target_point(human);
            let dist = sensor_pos.distance(target);
            if dist > range {
                continue;
            }
            // Field-of-view check against the 2-D bearing.
            if let Some(h) = heading {
                let bearing = (human.position - sensor_pos.xy()).heading();
                let mut diff = (bearing - h).abs() % std::f64::consts::TAU;
                if diff > std::f64::consts::PI {
                    diff = std::f64::consts::TAU - diff;
                }
                if diff > self.kind.fov_rad() / 2.0 {
                    continue;
                }
            }
            let visibility = world.visibility(sensor_pos, target);
            if visibility.is_blocked() {
                continue;
            }
            let weather_conf = if self.kind.weather_sensitive() {
                weather.detection_confidence_factor()
            } else {
                1.0
            };
            let range_falloff = 1.0 - 0.3 * (dist / range);
            let p = self.kind.base_detection_prob()
                * visibility.factor
                * weather_conf
                * range_falloff
                * self.health;
            if rng.chance(p) {
                let sigma = 0.2 + 0.02 * dist;
                let estimate = Vec2::new(
                    human.position.x + rng.normal(0.0, sigma),
                    human.position.y + rng.normal(0.0, sigma),
                );
                out.push(Detection {
                    human_id: human.id,
                    position: estimate,
                    confidence: p.clamp(0.0, 1.0),
                    distance_m: dist,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::prelude::*;
    use silvasec_sim::terrain::TerrainConfig;
    use silvasec_sim::vegetation::StandConfig;

    /// A world with one human at a known location and no trees.
    fn open_world(human_near: Vec2) -> World {
        let config = WorldConfig {
            terrain: TerrainConfig {
                size_m: 200.0,
                relief_m: 0.001,
                ..TerrainConfig::default()
            },
            stand: StandConfig {
                trees_per_hectare: 0.0,
                ..StandConfig::default()
            },
            human_count: 1,
            ..WorldConfig::default()
        };
        let mut world = World::generate(&config, SimRng::from_seed(1));
        // Humans spawn randomly; step zero time and relocate via stepping
        // is awkward — instead exploit that detection reads positions, so
        // regenerate until the worker is near the desired point.
        let mut seed = 2;
        while world.humans()[0].position.distance(human_near) > 60.0 && seed < 200 {
            world = World::generate(&config, SimRng::from_seed(seed));
            seed += 1;
        }
        world
    }

    #[test]
    fn detects_close_unoccluded_worker() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Lidar, 3.0);
        let mut rng = SimRng::from_seed(3);
        let mut hits = 0;
        let pose = worker + Vec2::new(10.0, 0.0);
        for _ in 0..100 {
            if !sensor.detect(&world, pose, 0.0, &mut rng).is_empty() {
                hits += 1;
            }
        }
        assert!(hits > 60, "only {hits}/100 detections at 10 m in the open");
    }

    #[test]
    fn ignores_out_of_range_worker() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Ultrasonic, 1.0);
        let mut rng = SimRng::from_seed(4);
        // 50 m away with an 8 m sensor.
        let pose = worker + Vec2::new(50.0, 0.0);
        for _ in 0..50 {
            assert!(sensor.detect(&world, pose, 0.0, &mut rng).is_empty());
        }
    }

    #[test]
    fn camera_fov_limits_detection() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Camera, 2.5);
        let mut rng = SimRng::from_seed(5);
        let pose = worker + Vec2::new(15.0, 0.0);
        // Worker is due west of the pose; looking east misses entirely.
        for _ in 0..50 {
            assert!(sensor.detect(&world, pose, 0.0, &mut rng).is_empty());
        }
        // Looking west hits.
        let mut hits = 0;
        for _ in 0..100 {
            if !sensor
                .detect(&world, pose, std::f64::consts::PI, &mut rng)
                .is_empty()
            {
                hits += 1;
            }
        }
        assert!(hits > 60, "{hits}/100 looking at the worker");
    }

    #[test]
    fn blinded_sensor_detects_nothing() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let mut sensor = PeopleSensor::new(SensorKind::Camera, 2.5);
        sensor.degrade(0.0);
        let mut rng = SimRng::from_seed(6);
        let pose = worker + Vec2::new(10.0, 0.0);
        for _ in 0..100 {
            assert!(sensor
                .detect(&world, pose, std::f64::consts::PI, &mut rng)
                .is_empty());
        }
    }

    #[test]
    fn degraded_sensor_detects_less() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let pose = worker + Vec2::new(10.0, 0.0);
        let rate = |health: f64| {
            let mut s = PeopleSensor::new(SensorKind::Lidar, 3.0);
            s.degrade(health);
            let mut rng = SimRng::from_seed(7);
            (0..300)
                .filter(|_| !s.detect(&world, pose, 0.0, &mut rng).is_empty())
                .count()
        };
        let healthy = rate(1.0);
        let weak = rate(0.3);
        assert!(weak < healthy / 2, "healthy {healthy}, weak {weak}");
    }

    #[test]
    fn aerial_detection_from_overhead() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Camera, 0.0);
        let mut rng = SimRng::from_seed(8);
        let aerial = worker.with_z(world.ground_at(worker) + 40.0);
        let mut hits = 0;
        for _ in 0..100 {
            if !sensor
                .detect_from(&world, aerial, None, &mut rng)
                .is_empty()
            {
                hits += 1;
            }
        }
        assert!(hits > 60, "{hits}/100 from overhead");
    }

    #[test]
    fn estimate_noise_grows_with_distance_on_average() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = world.humans()[0].position;
        let sensor = PeopleSensor::new(SensorKind::Lidar, 3.0);
        let mean_err = |dist: f64| {
            let mut rng = SimRng::from_seed(9);
            let pose = worker + Vec2::new(dist, 0.0);
            let mut errs = Vec::new();
            for _ in 0..2000 {
                for d in sensor.detect(&world, pose, 0.0, &mut rng) {
                    errs.push(d.position.distance(worker));
                }
            }
            errs.iter().sum::<f64>() / errs.len().max(1) as f64
        };
        let near = mean_err(5.0);
        let far = mean_err(35.0);
        assert!(
            far > near,
            "noise at 35 m ({far}) should exceed 5 m ({near})"
        );
    }

    #[test]
    fn detection_reports_identity_and_distance() {
        let world = open_world(Vec2::new(100.0, 100.0));
        let worker = &world.humans()[0];
        let sensor = PeopleSensor::new(SensorKind::Lidar, 3.0);
        let mut rng = SimRng::from_seed(10);
        let pose = worker.position + Vec2::new(10.0, 0.0);
        for _ in 0..100 {
            for d in sensor.detect(&world, pose, 0.0, &mut rng) {
                assert_eq!(d.human_id, worker.id);
                assert!((d.distance_m - 10.0).abs() < 3.0);
                assert!((0.0..=1.0).contains(&d.confidence));
            }
        }
    }
}
