//! Ground-vehicle and drone motion models.

use silvasec_sim::geom::{Vec2, Vec3};
use silvasec_sim::terrain::Terrain;
use silvasec_sim::time::SimDuration;

/// A ground vehicle following a waypoint path.
///
/// Speed is limited by a commanded cap (set by the safety supervisor),
/// the machine's own maximum, and terrain slope (steeper ground slows the
/// machine down).
#[derive(Debug, Clone)]
pub struct GroundVehicle {
    /// Current position (2-D; altitude follows terrain).
    pub position: Vec2,
    /// Heading in radians.
    pub heading: f64,
    /// Maximum speed on flat ground, m/s.
    pub max_speed: f64,
    /// Commanded speed cap, m/s (safety supervisor output).
    pub speed_cap: f64,
    path: Vec<Vec2>,
    path_index: usize,
}

impl GroundVehicle {
    /// Creates a stationary vehicle.
    #[must_use]
    pub fn new(position: Vec2, max_speed: f64) -> Self {
        GroundVehicle {
            position,
            heading: 0.0,
            max_speed,
            speed_cap: max_speed,
            path: Vec::new(),
            path_index: 0,
        }
    }

    /// Replaces the current waypoint path.
    pub fn set_path(&mut self, path: Vec<Vec2>) {
        self.path = path;
        self.path_index = 0;
    }

    /// Clears the path in place and resets progress, keeping the
    /// buffer's capacity — the zero-alloc form of
    /// `set_path(Vec::new())`.
    pub fn clear_path(&mut self) {
        self.path.clear();
        self.path_index = 0;
    }

    /// Clears the path, resets progress and hands back the backing
    /// buffer for in-place refilling (planner output), keeping its
    /// capacity across replans.
    pub fn begin_path(&mut self) -> &mut Vec<Vec2> {
        self.path.clear();
        self.path_index = 0;
        &mut self.path
    }

    /// Whether all waypoints have been reached.
    #[must_use]
    pub fn path_complete(&self) -> bool {
        self.path_index >= self.path.len()
    }

    /// The remaining path (current target first).
    #[must_use]
    pub fn remaining_path(&self) -> &[Vec2] {
        &self.path[self.path_index.min(self.path.len())..]
    }

    /// Effective speed right now given slope and the commanded cap.
    #[must_use]
    pub fn effective_speed(&self, terrain: &Terrain) -> f64 {
        let slope = terrain.slope_at(self.position);
        // 10% grade costs ~20% speed; clamp to a crawl floor.
        let slope_factor = (1.0 - 2.0 * slope).clamp(0.25, 1.0);
        self.max_speed.min(self.speed_cap).max(0.0) * slope_factor
    }

    /// Advances along the path for `dt`. Returns the distance travelled.
    pub fn step(&mut self, terrain: &Terrain, dt: SimDuration) -> f64 {
        let mut budget = self.effective_speed(terrain) * dt.as_secs_f64();
        let mut travelled = 0.0;
        while budget > 1e-9 && !self.path_complete() {
            let target = self.path[self.path_index];
            let to_target = target - self.position;
            let dist = to_target.length();
            if dist <= budget {
                self.position = target;
                travelled += dist;
                budget -= dist;
                self.path_index += 1;
            } else {
                let dir = to_target.normalized();
                self.position = self.position + dir * budget;
                self.heading = dir.heading();
                travelled += budget;
                budget = 0.0;
            }
        }
        travelled
    }
}

/// A drone with simple fly-to-target kinematics at a held altitude
/// above ground level (AGL).
#[derive(Debug, Clone)]
pub struct DroneBody {
    /// Current position (absolute altitude).
    pub position: Vec3,
    /// Cruise speed, m/s.
    pub cruise_speed: f64,
    /// Held altitude above ground, m.
    pub altitude_agl: f64,
    target: Option<Vec2>,
}

impl DroneBody {
    /// Creates a drone hovering at `position_2d` at `altitude_agl`.
    #[must_use]
    pub fn new(position_2d: Vec2, altitude_agl: f64, cruise_speed: f64, terrain: &Terrain) -> Self {
        let z = terrain.height_at(position_2d) + altitude_agl;
        DroneBody {
            position: position_2d.with_z(z),
            cruise_speed,
            altitude_agl,
            target: None,
        }
    }

    /// Commands the drone to fly towards a 2-D target.
    pub fn set_target(&mut self, target: Vec2) {
        self.target = Some(target);
    }

    /// Whether the drone has (approximately) reached its target.
    #[must_use]
    pub fn at_target(&self) -> bool {
        match self.target {
            Some(t) => self.position.xy().distance(t) < 1.0,
            None => true,
        }
    }

    /// Advances the drone for `dt`, tracking terrain to hold AGL.
    pub fn step(&mut self, terrain: &Terrain, dt: SimDuration) {
        if let Some(target) = self.target {
            let to_target = target - self.position.xy();
            let dist = to_target.length();
            let step_len = self.cruise_speed * dt.as_secs_f64();
            let new_2d = if dist <= step_len {
                target
            } else {
                self.position.xy() + to_target.normalized() * step_len
            };
            self.position = new_2d.with_z(terrain.height_at(new_2d) + self.altitude_agl);
        } else {
            // Hold position but track terrain (e.g. config changes).
            let p2 = self.position.xy();
            self.position = p2.with_z(terrain.height_at(p2) + self.altitude_agl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::rng::SimRng;
    use silvasec_sim::terrain::{Terrain, TerrainConfig};

    fn flat() -> Terrain {
        Terrain::flat(500.0, 5.0)
    }

    #[test]
    fn vehicle_follows_path() {
        let mut v = GroundVehicle::new(Vec2::new(0.0, 0.0), 5.0);
        v.set_path(vec![Vec2::new(10.0, 0.0), Vec2::new(10.0, 10.0)]);
        let terrain = flat();
        let mut steps = 0;
        while !v.path_complete() && steps < 100 {
            v.step(&terrain, SimDuration::from_millis(500));
            steps += 1;
        }
        assert!(v.path_complete());
        assert!(v.position.distance(Vec2::new(10.0, 10.0)) < 1e-9);
        // 20 m at 5 m/s = 4 s = 8 steps.
        assert!((8..=10).contains(&steps), "took {steps} steps");
    }

    #[test]
    fn speed_cap_slows_vehicle() {
        let terrain = flat();
        let mut v = GroundVehicle::new(Vec2::ZERO, 5.0);
        v.speed_cap = 1.0;
        v.set_path(vec![Vec2::new(100.0, 0.0)]);
        let d = v.step(&terrain, SimDuration::from_secs(1));
        assert!((d - 1.0).abs() < 1e-9);
        v.speed_cap = 0.0;
        let d = v.step(&terrain, SimDuration::from_secs(1));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn slope_slows_vehicle() {
        let rough = Terrain::generate(
            &TerrainConfig {
                relief_m: 60.0,
                ..TerrainConfig::default()
            },
            &mut SimRng::from_seed(3),
        );
        let flat_t = flat();
        let v = GroundVehicle::new(Vec2::new(250.0, 250.0), 5.0);
        // Find a sloped spot.
        let mut sloped = v.clone();
        let mut max_slope = 0.0;
        for i in 0..100 {
            let p = Vec2::new((i * 37 % 480) as f64 + 10.0, (i * 53 % 480) as f64 + 10.0);
            let s = rough.slope_at(p);
            if s > max_slope {
                max_slope = s;
                sloped.position = p;
            }
        }
        assert!(max_slope > 0.05, "no slope found");
        assert!(sloped.effective_speed(&rough) < v.effective_speed(&flat_t));
    }

    #[test]
    fn partial_step_sets_heading() {
        let terrain = flat();
        let mut v = GroundVehicle::new(Vec2::ZERO, 2.0);
        v.set_path(vec![Vec2::new(0.0, 100.0)]);
        v.step(&terrain, SimDuration::from_secs(1));
        assert!((v.heading - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn empty_path_is_complete() {
        let v = GroundVehicle::new(Vec2::ZERO, 2.0);
        assert!(v.path_complete());
        assert!(v.remaining_path().is_empty());
    }

    #[test]
    fn drone_flies_to_target_and_holds_agl() {
        let terrain = Terrain::generate(
            &TerrainConfig {
                relief_m: 30.0,
                ..TerrainConfig::default()
            },
            &mut SimRng::from_seed(4),
        );
        let mut d = DroneBody::new(Vec2::new(50.0, 50.0), 60.0, 12.0, &terrain);
        d.set_target(Vec2::new(300.0, 300.0));
        let mut steps = 0;
        while !d.at_target() && steps < 200 {
            d.step(&terrain, SimDuration::from_millis(500));
            steps += 1;
            let agl = d.position.z - terrain.height_at(d.position.xy());
            assert!((agl - 60.0).abs() < 0.5, "AGL drifted to {agl}");
        }
        assert!(d.at_target(), "drone never arrived");
    }

    #[test]
    fn drone_without_target_hovers() {
        let terrain = flat();
        let mut d = DroneBody::new(Vec2::new(10.0, 10.0), 40.0, 12.0, &terrain);
        let before = d.position;
        d.step(&terrain, SimDuration::from_secs(5));
        assert_eq!(d.position, before);
        assert!(d.at_target());
    }
}
