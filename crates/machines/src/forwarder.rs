//! The autonomous forwarder's work cycle.
//!
//! Loop: drive to the work area, load logs, drive to the landing area,
//! unload, repeat. Navigation uses the slope-aware planner; driving speed
//! is capped by the safety supervisor's commanded limit. Productivity
//! (logs delivered) is the headline mission metric attacks degrade.

use crate::kinematics::GroundVehicle;
use crate::planner::{plan_path_into, PlannerConfig, PlannerScratch};
use crate::safety::SpeedLimit;
use serde::{Deserialize, Serialize};
use silvasec_sim::geom::Vec2;
use silvasec_sim::time::SimDuration;
use silvasec_sim::world::World;

/// The forwarder's work-cycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForwarderPhase {
    /// Driving to the work (loading) area.
    ToLoading,
    /// Loading logs at the work area.
    Loading {
        /// Sim time (ms) when loading completes.
        until_ms: u64,
    },
    /// Driving to the landing (unloading) area.
    ToUnloading,
    /// Unloading at the landing area.
    Unloading {
        /// Sim time (ms) when unloading completes.
        until_ms: u64,
    },
    /// No path could be planned; operator intervention required.
    Stranded,
}

/// Forwarder parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForwarderConfig {
    /// Maximum driving speed, m/s.
    pub max_speed: f64,
    /// Time to load a full grapple of logs.
    pub load_time: SimDuration,
    /// Time to unload at the landing.
    pub unload_time: SimDuration,
    /// Planner parameters.
    pub planner: PlannerConfig,
}

impl Default for ForwarderConfig {
    fn default() -> Self {
        ForwarderConfig {
            max_speed: 4.0,
            load_time: SimDuration::from_secs(90),
            unload_time: SimDuration::from_secs(60),
            planner: PlannerConfig::default(),
        }
    }
}

/// The autonomous forwarder.
#[derive(Debug, Clone)]
pub struct Forwarder {
    /// The drive platform.
    pub vehicle: GroundVehicle,
    config: ForwarderConfig,
    phase: ForwarderPhase,
    loads_delivered: u64,
    distance_travelled: f64,
    stopped_time: SimDuration,
    scratch: PlannerScratch,
}

impl Forwarder {
    /// Creates a forwarder at `position`, heading out to load.
    #[must_use]
    pub fn new(position: Vec2, config: ForwarderConfig) -> Self {
        Forwarder {
            vehicle: GroundVehicle::new(position, config.max_speed),
            config,
            phase: ForwarderPhase::ToLoading,
            loads_delivered: 0,
            distance_travelled: 0.0,
            stopped_time: SimDuration::ZERO,
            scratch: PlannerScratch::default(),
        }
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> ForwarderPhase {
        self.phase
    }

    /// Completed haul cycles (loads delivered to the landing).
    #[must_use]
    pub fn loads_delivered(&self) -> u64 {
        self.loads_delivered
    }

    /// Total distance driven, metres.
    #[must_use]
    pub fn distance_travelled(&self) -> f64 {
        self.distance_travelled
    }

    /// Accumulated time spent commanded to standstill.
    #[must_use]
    pub fn stopped_time(&self) -> SimDuration {
        self.stopped_time
    }

    /// Current position.
    #[must_use]
    pub fn position(&self) -> Vec2 {
        self.vehicle.position
    }

    /// Advances the work cycle by `dt` under the commanded speed `limit`.
    pub fn step(&mut self, world: &World, limit: SpeedLimit, dt: SimDuration) {
        self.vehicle.speed_cap = limit.cap_mps(self.config.max_speed);
        if limit == SpeedLimit::Stop {
            self.stopped_time = self.stopped_time + dt;
        }
        let now = world.now();
        let work = world.config().work_area;
        let landing = world.config().landing_area;

        match self.phase {
            ForwarderPhase::ToLoading => {
                self.drive_towards(world, work, dt);
                if self.vehicle.position.distance(work) < 15.0 {
                    self.phase = ForwarderPhase::Loading {
                        until_ms: (now + self.config.load_time).as_millis(),
                    };
                }
            }
            ForwarderPhase::Loading { until_ms } => {
                if now.as_millis() >= until_ms {
                    self.vehicle.clear_path();
                    self.phase = ForwarderPhase::ToUnloading;
                }
            }
            ForwarderPhase::ToUnloading => {
                self.drive_towards(world, landing, dt);
                if self.vehicle.position.distance(landing) < 15.0 {
                    self.phase = ForwarderPhase::Unloading {
                        until_ms: (now + self.config.unload_time).as_millis(),
                    };
                }
            }
            ForwarderPhase::Unloading { until_ms } => {
                if now.as_millis() >= until_ms {
                    self.loads_delivered += 1;
                    self.vehicle.clear_path();
                    self.phase = ForwarderPhase::ToLoading;
                }
            }
            ForwarderPhase::Stranded => {}
        }
    }

    fn drive_towards(&mut self, world: &World, goal: Vec2, dt: SimDuration) {
        if self.vehicle.path_complete() && self.vehicle.position.distance(goal) >= 15.0 {
            let start = self.vehicle.position;
            // Replan into the vehicle's own path buffer via reusable
            // scratch: steady-state replans touch no heap. On failure
            // the path stays empty (still complete, as before).
            let planned = plan_path_into(
                world.terrain(),
                &self.config.planner,
                start,
                goal,
                &mut self.scratch,
                self.vehicle.begin_path(),
            );
            if !planned {
                self.phase = ForwarderPhase::Stranded;
                return;
            }
        }
        self.distance_travelled += self.vehicle.step(world.terrain(), dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::prelude::*;
    use silvasec_sim::terrain::TerrainConfig;
    use silvasec_sim::vegetation::StandConfig;

    fn world() -> World {
        let config = WorldConfig {
            terrain: TerrainConfig {
                size_m: 300.0,
                relief_m: 5.0,
                ..TerrainConfig::default()
            },
            stand: StandConfig {
                trees_per_hectare: 0.0,
                ..StandConfig::default()
            },
            human_count: 0,
            work_area: Vec2::new(250.0, 250.0),
            landing_area: Vec2::new(50.0, 50.0),
            ..WorldConfig::default()
        };
        World::generate(&config, SimRng::from_seed(1))
    }

    fn fast_config() -> ForwarderConfig {
        ForwarderConfig {
            max_speed: 8.0,
            load_time: SimDuration::from_secs(5),
            unload_time: SimDuration::from_secs(5),
            ..ForwarderConfig::default()
        }
    }

    #[test]
    fn completes_haul_cycles() {
        let mut w = world();
        let mut f = Forwarder::new(Vec2::new(50.0, 50.0), fast_config());
        for _ in 0..2400 {
            w.step(SimDuration::from_millis(500));
            f.step(&w, SpeedLimit::Full, SimDuration::from_millis(500));
        }
        assert!(
            f.loads_delivered() >= 2,
            "only {} loads in 20 min",
            f.loads_delivered()
        );
        assert!(f.distance_travelled() > 400.0);
    }

    #[test]
    fn stop_command_halts_progress() {
        let mut w = world();
        let mut f = Forwarder::new(Vec2::new(50.0, 50.0), fast_config());
        for _ in 0..600 {
            w.step(SimDuration::from_millis(500));
            f.step(&w, SpeedLimit::Stop, SimDuration::from_millis(500));
        }
        assert_eq!(f.loads_delivered(), 0);
        assert!(f.position().distance(Vec2::new(50.0, 50.0)) < 1.0);
        assert_eq!(f.stopped_time(), SimDuration::from_secs(300));
    }

    #[test]
    fn slow_command_reduces_throughput() {
        let run = |limit: SpeedLimit| {
            let mut w = world();
            let mut f = Forwarder::new(Vec2::new(50.0, 50.0), fast_config());
            for _ in 0..2400 {
                w.step(SimDuration::from_millis(500));
                f.step(&w, limit, SimDuration::from_millis(500));
            }
            f.distance_travelled()
        };
        let full = run(SpeedLimit::Full);
        let slow = run(SpeedLimit::Slow);
        assert!(slow < full / 2.0, "slow {slow} vs full {full}");
    }

    #[test]
    fn phase_progression() {
        let mut w = world();
        let mut f = Forwarder::new(Vec2::new(50.0, 50.0), fast_config());
        assert_eq!(f.phase(), ForwarderPhase::ToLoading);
        let mut seen_loading = false;
        let mut seen_unloading = false;
        for _ in 0..2400 {
            w.step(SimDuration::from_millis(500));
            f.step(&w, SpeedLimit::Full, SimDuration::from_millis(500));
            match f.phase() {
                ForwarderPhase::Loading { .. } => seen_loading = true,
                ForwarderPhase::Unloading { .. } => seen_unloading = true,
                _ => {}
            }
        }
        assert!(seen_loading && seen_unloading);
    }
}
