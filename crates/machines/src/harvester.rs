//! The manned harvester: fells trees and produces log piles at the work
//! area for the forwarder to haul.

use silvasec_sim::geom::Vec2;
use silvasec_sim::time::SimDuration;
use silvasec_sim::time::SimTime;

/// The manned harvester.
///
/// Harvesting itself is manually operated in the paper's scenario
/// (Sec. III); the model is accordingly simple: a position near the work
/// area and a steady production rate of log bunches.
#[derive(Debug, Clone)]
pub struct Harvester {
    /// Current position.
    pub position: Vec2,
    production_interval: SimDuration,
    last_production: SimTime,
    logs_produced: u64,
}

impl Harvester {
    /// Creates a harvester at `position` producing a bunch every
    /// `production_interval`.
    #[must_use]
    pub fn new(position: Vec2, production_interval: SimDuration) -> Self {
        Harvester {
            position,
            production_interval,
            last_production: SimTime::ZERO,
            logs_produced: 0,
        }
    }

    /// Log bunches produced so far.
    #[must_use]
    pub fn logs_produced(&self) -> u64 {
        self.logs_produced
    }

    /// Advances production to `now`; returns how many new bunches were
    /// finished in this step.
    pub fn step(&mut self, now: SimTime) -> u64 {
        let mut produced = 0;
        while now.since(self.last_production) >= self.production_interval {
            self.last_production += self.production_interval;
            self.logs_produced += 1;
            produced += 1;
        }
        produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_at_interval() {
        let mut h = Harvester::new(Vec2::ZERO, SimDuration::from_secs(60));
        assert_eq!(h.step(SimTime::from_secs(59)), 0);
        assert_eq!(h.step(SimTime::from_secs(60)), 1);
        assert_eq!(h.step(SimTime::from_secs(300)), 4);
        assert_eq!(h.logs_produced(), 5);
    }

    #[test]
    fn catch_up_is_exact() {
        let mut h = Harvester::new(Vec2::ZERO, SimDuration::from_secs(10));
        assert_eq!(h.step(SimTime::from_secs(100)), 10);
        assert_eq!(h.step(SimTime::from_secs(100)), 0, "no double counting");
    }
}
