//! Forestry machine models: forwarder, harvester, drone, their sensors
//! and the safety supervisor.
//!
//! The paper's use case (Sec. III, Figure 1–2): an **autonomous forwarder**
//! hauls logs from a manually-operated **harvester** to a landing area,
//! while an observation **drone** complements the forwarder's
//! people-detection safety function with an elevated point of view. This
//! crate models those machines at the level the safety and security
//! questions live at:
//!
//! * [`kinematics`] — ground-vehicle and drone motion.
//! * [`planner`] — A* path planning over terrain with slope costs.
//! * [`sensors`] — people-detection sensors (camera/LiDAR) with occlusion,
//!   range, field of view and weather effects; blinding attack surface.
//! * [`gnss`] — GNSS receivers and the spoofing/jamming field.
//! * [`fusion`] — multi-source detection fusion.
//! * [`safety`] — the stop/slow-zone safety supervisor (ISO 13849-style
//!   safety function).
//! * [`forwarder`] — the autonomous forwarder's work cycle.
//! * [`drone`] — the observation drone's patrol behaviour.
//! * [`harvester`] — the manned harvester producing log piles.
//!
//! # Example
//!
//! ```
//! use silvasec_machines::prelude::*;
//! use silvasec_sim::prelude::*;
//!
//! let world = World::generate(&WorldConfig::default(), SimRng::from_seed(1));
//! let sensor = PeopleSensor::new(SensorKind::Lidar, 3.0);
//! let mut rng = SimRng::from_seed(2);
//! let pose = Vec2::new(250.0, 250.0);
//! let detections = sensor.detect(&world, pose, 0.0, &mut rng);
//! // Detections depend on who is in range and line of sight.
//! assert!(detections.len() <= world.humans().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drone;
pub mod forwarder;
pub mod fusion;
pub mod gnss;
pub mod harvester;
pub mod kinematics;
pub mod planner;
pub mod safety;
pub mod sensors;
pub mod validation;

pub use forwarder::{Forwarder, ForwarderPhase};
pub use gnss::{GnssField, GnssFix, GnssReceiver};
pub use safety::{SafetySupervisor, SpeedLimit};
pub use sensors::{Detection, PeopleSensor, SensorKind};

/// Identifier of a machine on the worksite.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct MachineId(pub u32);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine-{}", self.0)
    }
}

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::drone::Drone;
    pub use crate::forwarder::{Forwarder, ForwarderPhase};
    pub use crate::fusion::{fuse_detections, fuse_detections_into};
    pub use crate::gnss::{GnssField, GnssFix, GnssReceiver};
    pub use crate::harvester::Harvester;
    pub use crate::kinematics::{DroneBody, GroundVehicle};
    pub use crate::planner::{plan_path, PlannerConfig};
    pub use crate::safety::{SafetySupervisor, SpeedLimit};
    pub use crate::sensors::{Detection, PeopleSensor, SensorKind};
    pub use crate::MachineId;
}
