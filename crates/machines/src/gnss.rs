//! GNSS receivers and the spoofing/jamming field.
//!
//! GNSS attacks are among the top threats identified for autonomous
//! haulage (Gaber et al.): spoofing drags a victim's position estimate
//! away from truth; jamming denies fixes entirely. Attacks act through a
//! shared [`GnssField`] — regional RF effects, not per-victim tampering —
//! which is the physically faithful boundary.

use serde::{Deserialize, Serialize};
use silvasec_sim::geom::Vec2;
use silvasec_sim::rng::SimRng;
use silvasec_sim::time::SimTime;

/// A regional spoofing transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spoofer {
    /// Centre of the affected region.
    pub center: Vec2,
    /// Radius of the affected region, metres.
    pub radius_m: f64,
    /// Position-offset drag rate, metres per second. The induced offset
    /// grows linearly from the spoof onset (a "carry-off" attack).
    pub drag_mps: Vec2,
    /// When the spoofer switched on.
    pub since: SimTime,
}

/// A regional GNSS jammer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GnssJammer {
    /// Centre of the affected region.
    pub center: Vec2,
    /// Radius of the affected region, metres.
    pub radius_m: f64,
}

/// The shared GNSS RF environment.
#[derive(Debug, Clone, Default)]
pub struct GnssField {
    spoofers: Vec<(u64, Spoofer)>,
    jammers: Vec<(u64, GnssJammer)>,
    next_id: u64,
}

impl GnssField {
    /// Creates a clean field.
    #[must_use]
    pub fn new() -> Self {
        GnssField::default()
    }

    /// Adds a spoofer; returns its handle for later removal.
    pub fn add_spoofer(&mut self, spoofer: Spoofer) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.spoofers.push((id, spoofer));
        id
    }

    /// Adds a jammer; returns its handle for later removal.
    pub fn add_jammer(&mut self, jammer: GnssJammer) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.jammers.push((id, jammer));
        id
    }

    /// Removes a spoofer by handle; `true` if it existed.
    pub fn remove_spoofer(&mut self, id: u64) -> bool {
        let before = self.spoofers.len();
        self.spoofers.retain(|(i, _)| *i != id);
        self.spoofers.len() != before
    }

    /// Removes a jammer by handle; `true` if it existed.
    pub fn remove_jammer(&mut self, id: u64) -> bool {
        let before = self.jammers.len();
        self.jammers.retain(|(i, _)| *i != id);
        self.jammers.len() != before
    }

    /// Removes all spoofers and jammers.
    pub fn clear(&mut self) {
        self.spoofers.clear();
        self.jammers.clear();
    }

    /// Whether `position` is inside any jammer region.
    #[must_use]
    pub fn is_jammed(&self, position: Vec2) -> bool {
        self.jammers
            .iter()
            .any(|(_, j)| j.center.distance(position) <= j.radius_m)
    }

    /// Aggregate spoofing offset at `position` and `now`.
    #[must_use]
    pub fn spoof_offset(&self, position: Vec2, now: SimTime) -> Vec2 {
        let mut offset = Vec2::ZERO;
        for (_, s) in &self.spoofers {
            if s.center.distance(position) <= s.radius_m {
                let dt = now.since(s.since).as_secs_f64();
                offset = offset + s.drag_mps * dt;
            }
        }
        offset
    }

    /// Numbers of active spoofers and jammers.
    #[must_use]
    pub fn counts(&self) -> (usize, usize) {
        (self.spoofers.len(), self.jammers.len())
    }
}

/// A position fix produced by a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GnssFix {
    /// Estimated position.
    pub position: Vec2,
    /// Reported horizontal accuracy (1σ), metres.
    pub accuracy_m: f64,
    /// Fix time.
    pub at: SimTime,
}

/// A GNSS receiver attached to one machine.
#[derive(Debug, Clone)]
pub struct GnssReceiver {
    /// Nominal fix noise (1σ), metres.
    pub noise_m: f64,
}

impl Default for GnssReceiver {
    fn default() -> Self {
        GnssReceiver { noise_m: 1.5 }
    }
}

impl GnssReceiver {
    /// Samples a fix for a machine truly located at `true_position`.
    ///
    /// Returns `None` when jammed (no fix available). A spoofed fix has
    /// *nominal* reported accuracy — the receiver does not know it is
    /// being lied to; detecting that is the IDS's job (cross-sensor
    /// consistency).
    #[must_use]
    pub fn sample(
        &self,
        field: &GnssField,
        true_position: Vec2,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<GnssFix> {
        if field.is_jammed(true_position) {
            return None;
        }
        let offset = field.spoof_offset(true_position, now);
        let position = Vec2::new(
            true_position.x + offset.x + rng.normal(0.0, self.noise_m),
            true_position.y + offset.y + rng.normal(0.0, self.noise_m),
        );
        Some(GnssFix {
            position,
            accuracy_m: self.noise_m,
            at: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::time::SimDuration;

    #[test]
    fn clean_field_gives_noisy_truth() {
        let field = GnssField::new();
        let rx = GnssReceiver::default();
        let mut rng = SimRng::from_seed(1);
        let truth = Vec2::new(100.0, 100.0);
        let mut err_sum = 0.0;
        for _ in 0..500 {
            let fix = rx.sample(&field, truth, SimTime::ZERO, &mut rng).unwrap();
            err_sum += fix.position.distance(truth);
        }
        let mean_err = err_sum / 500.0;
        // Mean radial error of 2-D Gaussian with σ=1.5 ≈ 1.88 m.
        assert!((1.0..3.0).contains(&mean_err), "mean error {mean_err}");
    }

    #[test]
    fn jammer_denies_fix_inside_region_only() {
        let mut field = GnssField::new();
        field.add_jammer(GnssJammer {
            center: Vec2::new(0.0, 0.0),
            radius_m: 50.0,
        });
        let rx = GnssReceiver::default();
        let mut rng = SimRng::from_seed(2);
        assert!(rx
            .sample(&field, Vec2::new(10.0, 0.0), SimTime::ZERO, &mut rng)
            .is_none());
        assert!(rx
            .sample(&field, Vec2::new(100.0, 0.0), SimTime::ZERO, &mut rng)
            .is_some());
    }

    #[test]
    fn spoofer_drags_position_over_time() {
        let mut field = GnssField::new();
        field.add_spoofer(Spoofer {
            center: Vec2::new(0.0, 0.0),
            radius_m: 500.0,
            drag_mps: Vec2::new(0.5, 0.0),
            since: SimTime::ZERO,
        });
        let rx = GnssReceiver { noise_m: 0.01 };
        let mut rng = SimRng::from_seed(3);
        let truth = Vec2::new(10.0, 10.0);
        let early = rx
            .sample(&field, truth, SimTime::from_secs(10), &mut rng)
            .unwrap();
        let late = rx
            .sample(&field, truth, SimTime::from_secs(100), &mut rng)
            .unwrap();
        assert!((early.position.x - truth.x - 5.0).abs() < 0.5);
        assert!((late.position.x - truth.x - 50.0).abs() < 0.5);
        // Spoofed fixes still claim nominal accuracy.
        assert_eq!(late.accuracy_m, 0.01);
    }

    #[test]
    fn spoofer_outside_region_no_effect() {
        let mut field = GnssField::new();
        field.add_spoofer(Spoofer {
            center: Vec2::new(0.0, 0.0),
            radius_m: 20.0,
            drag_mps: Vec2::new(10.0, 0.0),
            since: SimTime::ZERO,
        });
        assert_eq!(
            field.spoof_offset(Vec2::new(100.0, 0.0), SimTime::from_secs(100)),
            Vec2::ZERO
        );
    }

    #[test]
    fn clear_removes_everything() {
        let mut field = GnssField::new();
        field.add_spoofer(Spoofer {
            center: Vec2::ZERO,
            radius_m: 100.0,
            drag_mps: Vec2::new(1.0, 0.0),
            since: SimTime::ZERO,
        });
        field.add_jammer(GnssJammer {
            center: Vec2::ZERO,
            radius_m: 100.0,
        });
        assert_eq!(field.counts(), (1, 1));
        field.clear();
        assert_eq!(field.counts(), (0, 0));
        assert!(!field.is_jammed(Vec2::ZERO));
    }

    #[test]
    fn overlapping_spoofers_sum() {
        let mut field = GnssField::new();
        for _ in 0..2 {
            field.add_spoofer(Spoofer {
                center: Vec2::ZERO,
                radius_m: 100.0,
                drag_mps: Vec2::new(1.0, 0.0),
                since: SimTime::ZERO,
            });
        }
        let off = field.spoof_offset(Vec2::ZERO, SimTime::from_secs(10) + SimDuration::ZERO);
        assert!((off.x - 20.0).abs() < 1e-9);
    }
}
