//! Multi-source detection fusion.
//!
//! The collaborative safety function of the paper's Figure 2 fuses the
//! forwarder's own detections with the drone's: per worker, keep the
//! highest-confidence report (the sources are independent views of the
//! same ground truth, so the best view wins).

use crate::sensors::Detection;
use silvasec_sim::humans::HumanId;
use std::collections::HashMap;

/// Fuses detection lists from multiple sources.
///
/// Output is sorted by worker id for determinism. Allocating form; the
/// hot path uses [`fuse_detections_into`], with this as its parity
/// oracle.
#[must_use]
pub fn fuse_detections(sources: &[Vec<Detection>]) -> Vec<Detection> {
    let mut best: HashMap<HumanId, Detection> = HashMap::new();
    for source in sources {
        for d in source {
            best.entry(d.human_id)
                .and_modify(|cur| {
                    if d.confidence > cur.confidence {
                        *cur = *d;
                    }
                })
                .or_insert(*d);
        }
    }
    let mut out: Vec<Detection> = best.into_values().collect();
    out.sort_by_key(|d| d.human_id);
    out
}

/// Zero-alloc form of [`fuse_detections`]: writes the fused list into
/// caller-owned `out` (cleared first). With warm capacity no heap
/// allocation occurs.
///
/// A handful of detections per tick makes a linear merge cheaper than
/// hashing; it applies the identical rule (per worker, keep the first
/// report and replace it only on strictly greater confidence), and with
/// one entry per worker after the merge the unstable sort by id yields
/// exactly the oracle's order.
pub fn fuse_detections_into(sources: &[&[Detection]], out: &mut Vec<Detection>) {
    out.clear();
    for source in sources {
        for d in *source {
            match out.iter_mut().find(|cur| cur.human_id == d.human_id) {
                Some(cur) => {
                    if d.confidence > cur.confidence {
                        *cur = *d;
                    }
                }
                None => out.push(*d),
            }
        }
    }
    out.sort_unstable_by_key(|d| d.human_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::geom::Vec2;

    fn det(id: u32, confidence: f64) -> Detection {
        Detection {
            human_id: HumanId(id),
            position: Vec2::new(id as f64, 0.0),
            confidence,
            distance_m: 1.0,
        }
    }

    #[test]
    fn empty_sources_fuse_to_empty() {
        assert!(fuse_detections(&[]).is_empty());
        assert!(fuse_detections(&[vec![], vec![]]).is_empty());
    }

    #[test]
    fn union_of_distinct_workers() {
        let fused = fuse_detections(&[vec![det(1, 0.5)], vec![det(2, 0.6)]]);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].human_id, HumanId(1));
        assert_eq!(fused[1].human_id, HumanId(2));
    }

    #[test]
    fn highest_confidence_wins() {
        let fused = fuse_detections(&[vec![det(1, 0.5)], vec![det(1, 0.9)], vec![det(1, 0.2)]]);
        assert_eq!(fused.len(), 1);
        assert!((fused[0].confidence - 0.9).abs() < 1e-12);
    }

    #[test]
    fn deterministic_order() {
        let a = fuse_detections(&[vec![det(3, 0.1), det(1, 0.2)], vec![det(2, 0.3)]]);
        let ids: Vec<u32> = a.iter().map(|d| d.human_id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn into_variant_matches_oracle() {
        let cases: Vec<Vec<Vec<Detection>>> = vec![
            vec![],
            vec![vec![], vec![]],
            vec![vec![det(1, 0.5)], vec![det(2, 0.6)]],
            vec![vec![det(1, 0.5)], vec![det(1, 0.9)], vec![det(1, 0.2)]],
            // Tie on confidence: the first-seen report must win in both
            // (the reports differ in distance, so a wrong winner shows).
            vec![
                vec![Detection {
                    distance_m: 1.0,
                    ..det(4, 0.5)
                }],
                vec![Detection {
                    distance_m: 9.0,
                    ..det(4, 0.5)
                }],
            ],
            vec![
                vec![det(3, 0.1), det(1, 0.2), det(3, 0.3)],
                vec![det(2, 0.3), det(1, 0.1)],
            ],
        ];
        let mut out = Vec::new();
        for sources in cases {
            let slices: Vec<&[Detection]> = sources.iter().map(Vec::as_slice).collect();
            fuse_detections_into(&slices, &mut out);
            assert_eq!(out, fuse_detections(&sources));
        }
    }
}
