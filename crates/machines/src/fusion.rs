//! Multi-source detection fusion.
//!
//! The collaborative safety function of the paper's Figure 2 fuses the
//! forwarder's own detections with the drone's: per worker, keep the
//! highest-confidence report (the sources are independent views of the
//! same ground truth, so the best view wins).

use crate::sensors::Detection;
use silvasec_sim::humans::HumanId;
use std::collections::HashMap;

/// Fuses detection lists from multiple sources.
///
/// Output is sorted by worker id for determinism.
#[must_use]
pub fn fuse_detections(sources: &[Vec<Detection>]) -> Vec<Detection> {
    let mut best: HashMap<HumanId, Detection> = HashMap::new();
    for source in sources {
        for d in source {
            best.entry(d.human_id)
                .and_modify(|cur| {
                    if d.confidence > cur.confidence {
                        *cur = *d;
                    }
                })
                .or_insert(*d);
        }
    }
    let mut out: Vec<Detection> = best.into_values().collect();
    out.sort_by_key(|d| d.human_id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::geom::Vec2;

    fn det(id: u32, confidence: f64) -> Detection {
        Detection {
            human_id: HumanId(id),
            position: Vec2::new(id as f64, 0.0),
            confidence,
            distance_m: 1.0,
        }
    }

    #[test]
    fn empty_sources_fuse_to_empty() {
        assert!(fuse_detections(&[]).is_empty());
        assert!(fuse_detections(&[vec![], vec![]]).is_empty());
    }

    #[test]
    fn union_of_distinct_workers() {
        let fused = fuse_detections(&[vec![det(1, 0.5)], vec![det(2, 0.6)]]);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].human_id, HumanId(1));
        assert_eq!(fused[1].human_id, HumanId(2));
    }

    #[test]
    fn highest_confidence_wins() {
        let fused = fuse_detections(&[vec![det(1, 0.5)], vec![det(1, 0.9)], vec![det(1, 0.2)]]);
        assert_eq!(fused.len(), 1);
        assert!((fused[0].confidence - 0.9).abs() < 1e-12);
    }

    #[test]
    fn deterministic_order() {
        let a = fuse_detections(&[vec![det(3, 0.1), det(1, 0.2)], vec![det(2, 0.3)]]);
        let ids: Vec<u32> = a.iter().map(|d| d.human_id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
