//! A* path planning over terrain with slope costs.
//!
//! The planner works on a coarse grid over the terrain. Cells whose slope
//! exceeds the machine's capability are impassable; otherwise cost grows
//! with slope. The returned path is a sparse waypoint list suitable for
//! [`crate::kinematics::GroundVehicle::set_path`].

use silvasec_sim::geom::Vec2;
use silvasec_sim::terrain::Terrain;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Planner parameters.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Planning grid resolution, metres.
    pub grid_m: f64,
    /// Maximum traversable slope (rise/run).
    pub max_slope: f64,
    /// Cost multiplier per unit slope.
    pub slope_cost: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            grid_m: 10.0,
            max_slope: 0.45,
            slope_cost: 6.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OpenEntry {
    f: f64,
    cell: (i32, i32),
}

impl Eq for OpenEntry {}

impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f; tie-break on cell for determinism.
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.cell.cmp(&self.cell))
    }
}

impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable planner allocations (scores, frontier, raw path) so replans
/// in the steady-state tick never touch the heap once warm. Owned by
/// the machine that replans (the forwarder).
#[derive(Debug, Clone, Default)]
pub struct PlannerScratch {
    g_score: Vec<f64>,
    came_from: Vec<Option<(i32, i32)>>,
    open: BinaryHeap<OpenEntry>,
    raw: Vec<Vec2>,
}

/// Zero-alloc form of [`plan_path`]: writes the waypoints into
/// caller-owned `out` and returns whether a path exists. `out` is
/// cleared first; on `false` (unreachable goal) it stays empty. With
/// warm scratch and output capacities no heap allocation occurs.
/// Identical search, costs, tie-breaking and simplification as the
/// allocating oracle — asserted by `into_variant_matches_oracle`.
pub fn plan_path_into(
    terrain: &Terrain,
    config: &PlannerConfig,
    start: Vec2,
    goal: Vec2,
    scratch: &mut PlannerScratch,
    out: &mut Vec<Vec2>,
) -> bool {
    out.clear();
    let cells = (terrain.size_m() / config.grid_m).floor() as i32 + 1;
    let to_cell = |p: Vec2| -> (i32, i32) {
        (
            ((p.x / config.grid_m).round() as i32).clamp(0, cells - 1),
            ((p.y / config.grid_m).round() as i32).clamp(0, cells - 1),
        )
    };
    let to_point = |c: (i32, i32)| -> Vec2 {
        Vec2::new(c.0 as f64 * config.grid_m, c.1 as f64 * config.grid_m)
    };
    let passable = |c: (i32, i32)| -> bool { terrain.slope_at(to_point(c)) <= config.max_slope };

    let start_cell = to_cell(start);
    let goal_cell = to_cell(goal);
    if !passable(goal_cell) || !passable(start_cell) {
        return false;
    }
    if start_cell == goal_cell {
        out.push(goal);
        return true;
    }

    let idx = |c: (i32, i32)| (c.1 * cells + c.0) as usize;
    scratch.g_score.clear();
    scratch
        .g_score
        .resize((cells * cells) as usize, f64::INFINITY);
    scratch.came_from.clear();
    scratch.came_from.resize((cells * cells) as usize, None);
    scratch.open.clear();
    scratch.g_score[idx(start_cell)] = 0.0;
    scratch.open.push(OpenEntry {
        f: 0.0,
        cell: start_cell,
    });

    let heuristic = |c: (i32, i32)| {
        let dx = (c.0 - goal_cell.0) as f64;
        let dy = (c.1 - goal_cell.1) as f64;
        dx.hypot(dy) * config.grid_m
    };

    const DIRS: [(i32, i32); 8] = [
        (1, 0),
        (-1, 0),
        (0, 1),
        (0, -1),
        (1, 1),
        (1, -1),
        (-1, 1),
        (-1, -1),
    ];

    while let Some(OpenEntry { cell, .. }) = scratch.open.pop() {
        if cell == goal_cell {
            scratch.raw.clear();
            scratch.raw.push(goal);
            let mut cur = cell;
            while let Some(prev) = scratch.came_from[idx(cur)] {
                scratch.raw.push(to_point(cur));
                cur = prev;
            }
            scratch.raw.reverse();
            simplify_into(&scratch.raw, out);
            return true;
        }
        let g_here = scratch.g_score[idx(cell)];
        for (dx, dy) in DIRS {
            let next = (cell.0 + dx, cell.1 + dy);
            if next.0 < 0 || next.1 < 0 || next.0 >= cells || next.1 >= cells {
                continue;
            }
            if !passable(next) {
                continue;
            }
            let step = ((dx * dx + dy * dy) as f64).sqrt() * config.grid_m;
            let slope = terrain.slope_at(to_point(next));
            let cost = step * (1.0 + config.slope_cost * slope);
            let tentative = g_here + cost;
            if tentative < scratch.g_score[idx(next)] {
                scratch.g_score[idx(next)] = tentative;
                scratch.came_from[idx(next)] = Some(cell);
                scratch.open.push(OpenEntry {
                    f: tentative + heuristic(next),
                    cell: next,
                });
            }
        }
    }
    false
}

/// Plans a path from `start` to `goal`. Returns waypoints including the
/// goal, or `None` when the goal is unreachable under the slope limit.
///
/// Allocating form; the hot path uses [`plan_path_into`], with this as
/// its parity oracle.
#[must_use]
pub fn plan_path(
    terrain: &Terrain,
    config: &PlannerConfig,
    start: Vec2,
    goal: Vec2,
) -> Option<Vec<Vec2>> {
    let cells = (terrain.size_m() / config.grid_m).floor() as i32 + 1;
    let to_cell = |p: Vec2| -> (i32, i32) {
        (
            ((p.x / config.grid_m).round() as i32).clamp(0, cells - 1),
            ((p.y / config.grid_m).round() as i32).clamp(0, cells - 1),
        )
    };
    let to_point = |c: (i32, i32)| -> Vec2 {
        Vec2::new(c.0 as f64 * config.grid_m, c.1 as f64 * config.grid_m)
    };
    let passable = |c: (i32, i32)| -> bool { terrain.slope_at(to_point(c)) <= config.max_slope };

    let start_cell = to_cell(start);
    let goal_cell = to_cell(goal);
    if !passable(goal_cell) || !passable(start_cell) {
        return None;
    }
    if start_cell == goal_cell {
        return Some(vec![goal]);
    }

    let idx = |c: (i32, i32)| (c.1 * cells + c.0) as usize;
    let mut g_score = vec![f64::INFINITY; (cells * cells) as usize];
    let mut came_from: Vec<Option<(i32, i32)>> = vec![None; (cells * cells) as usize];
    let mut open = BinaryHeap::new();
    g_score[idx(start_cell)] = 0.0;
    open.push(OpenEntry {
        f: 0.0,
        cell: start_cell,
    });

    let heuristic = |c: (i32, i32)| {
        let dx = (c.0 - goal_cell.0) as f64;
        let dy = (c.1 - goal_cell.1) as f64;
        dx.hypot(dy) * config.grid_m
    };

    const DIRS: [(i32, i32); 8] = [
        (1, 0),
        (-1, 0),
        (0, 1),
        (0, -1),
        (1, 1),
        (1, -1),
        (-1, 1),
        (-1, -1),
    ];

    while let Some(OpenEntry { cell, .. }) = open.pop() {
        if cell == goal_cell {
            // Reconstruct.
            let mut path = vec![goal];
            let mut cur = cell;
            while let Some(prev) = came_from[idx(cur)] {
                path.push(to_point(cur));
                cur = prev;
            }
            path.reverse();
            // `path` currently ends with goal duplicated after reverse?
            // After reverse: [first-after-start … goal-cell-point, goal].
            return Some(simplify(path));
        }
        let g_here = g_score[idx(cell)];
        for (dx, dy) in DIRS {
            let next = (cell.0 + dx, cell.1 + dy);
            if next.0 < 0 || next.1 < 0 || next.0 >= cells || next.1 >= cells {
                continue;
            }
            if !passable(next) {
                continue;
            }
            let step = ((dx * dx + dy * dy) as f64).sqrt() * config.grid_m;
            let slope = terrain.slope_at(to_point(next));
            let cost = step * (1.0 + config.slope_cost * slope);
            let tentative = g_here + cost;
            if tentative < g_score[idx(next)] {
                g_score[idx(next)] = tentative;
                came_from[idx(next)] = Some(cell);
                open.push(OpenEntry {
                    f: tentative + heuristic(next),
                    cell: next,
                });
            }
        }
    }
    None
}

/// Removes collinear intermediate waypoints.
fn simplify(path: Vec<Vec2>) -> Vec<Vec2> {
    if path.len() <= 2 {
        return path;
    }
    let mut out = vec![path[0]];
    for i in 1..path.len() - 1 {
        let a = *out.last().expect("non-empty");
        let b = path[i];
        let c = path[i + 1];
        let ab = (b - a).normalized();
        let bc = (c - b).normalized();
        if ab.dot(bc) < 0.9999 {
            out.push(b);
        }
    }
    out.push(*path.last().expect("non-empty"));
    out
}

/// [`simplify`] writing into caller-owned `out` (cleared first).
fn simplify_into(path: &[Vec2], out: &mut Vec<Vec2>) {
    out.clear();
    if path.len() <= 2 {
        out.extend_from_slice(path);
        return;
    }
    out.push(path[0]);
    for i in 1..path.len() - 1 {
        let a = *out.last().expect("non-empty");
        let b = path[i];
        let c = path[i + 1];
        let ab = (b - a).normalized();
        let bc = (c - b).normalized();
        if ab.dot(bc) < 0.9999 {
            out.push(b);
        }
    }
    out.push(*path.last().expect("non-empty"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::rng::SimRng;
    use silvasec_sim::terrain::{Terrain, TerrainConfig};

    #[test]
    fn straight_line_on_flat_ground() {
        let terrain = Terrain::flat(200.0, 5.0);
        let path = plan_path(
            &terrain,
            &PlannerConfig::default(),
            Vec2::new(10.0, 10.0),
            Vec2::new(150.0, 10.0),
        )
        .unwrap();
        assert_eq!(*path.last().unwrap(), Vec2::new(150.0, 10.0));
        // Should be nearly straight: total length close to 140.
        let len: f64 = std::iter::once(Vec2::new(10.0, 10.0))
            .chain(path.iter().copied())
            .collect::<Vec<_>>()
            .windows(2)
            .map(|w| w[0].distance(w[1]))
            .sum();
        assert!(len < 160.0, "path length {len}");
    }

    #[test]
    fn same_cell_returns_goal() {
        let terrain = Terrain::flat(100.0, 5.0);
        let path = plan_path(
            &terrain,
            &PlannerConfig::default(),
            Vec2::new(10.0, 10.0),
            Vec2::new(11.0, 11.0),
        )
        .unwrap();
        assert_eq!(path, vec![Vec2::new(11.0, 11.0)]);
    }

    #[test]
    fn finds_path_on_rough_terrain() {
        let terrain = Terrain::generate(
            &TerrainConfig {
                relief_m: 25.0,
                ..TerrainConfig::default()
            },
            &mut SimRng::from_seed(1),
        );
        let path = plan_path(
            &terrain,
            &PlannerConfig::default(),
            Vec2::new(20.0, 20.0),
            Vec2::new(450.0, 450.0),
        );
        assert!(path.is_some(), "no path on moderate terrain");
        let path = path.unwrap();
        // Every waypoint passable.
        for p in &path {
            assert!(terrain.slope_at(*p) <= PlannerConfig::default().max_slope + 1e-9);
        }
    }

    #[test]
    fn impassable_goal_returns_none() {
        let terrain = Terrain::generate(
            &TerrainConfig {
                relief_m: 25.0,
                ..TerrainConfig::default()
            },
            &mut SimRng::from_seed(2),
        );
        // A max_slope of 0 makes any non-flat cell impassable.
        let config = PlannerConfig {
            max_slope: 0.0,
            ..PlannerConfig::default()
        };
        let path = plan_path(
            &terrain,
            &config,
            Vec2::new(20.0, 20.0),
            Vec2::new(450.0, 450.0),
        );
        assert!(path.is_none());
    }

    #[test]
    fn deterministic() {
        let terrain = Terrain::generate(&TerrainConfig::default(), &mut SimRng::from_seed(3));
        let run = || {
            plan_path(
                &terrain,
                &PlannerConfig::default(),
                Vec2::new(30.0, 40.0),
                Vec2::new(400.0, 380.0),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn into_variant_matches_oracle() {
        let terrain = Terrain::generate(
            &TerrainConfig {
                relief_m: 25.0,
                ..TerrainConfig::default()
            },
            &mut SimRng::from_seed(5),
        );
        let mut scratch = PlannerScratch::default();
        let mut out = Vec::new();
        let mut rng = SimRng::from_seed(6);
        for cfg in [
            PlannerConfig::default(),
            PlannerConfig {
                max_slope: 0.0,
                ..PlannerConfig::default()
            },
            PlannerConfig {
                slope_cost: 30.0,
                ..PlannerConfig::default()
            },
        ] {
            for _ in 0..12 {
                let start = Vec2::new(rng.uniform_range(0.0, 500.0), rng.uniform_range(0.0, 500.0));
                let goal = Vec2::new(rng.uniform_range(0.0, 500.0), rng.uniform_range(0.0, 500.0));
                let oracle = plan_path(&terrain, &cfg, start, goal);
                let found = plan_path_into(&terrain, &cfg, start, goal, &mut scratch, &mut out);
                match oracle {
                    Some(path) => {
                        assert!(found);
                        assert_eq!(out, path);
                    }
                    None => {
                        assert!(!found);
                        assert!(out.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn simplify_collapses_collinear() {
        let path = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(3.0, 1.0),
        ];
        let s = simplify(path);
        assert_eq!(
            s,
            vec![
                Vec2::new(0.0, 0.0),
                Vec2::new(2.0, 0.0),
                Vec2::new(3.0, 1.0)
            ]
        );
    }

    #[test]
    fn slope_cost_prefers_flat_detour() {
        // Synthetic terrain: a steep ridge along x = 100 except it is
        // flat near the top edge → planner should detour up and around
        // when slope costs dominate. We approximate by checking the path
        // avoids the highest-slope cells it can.
        let terrain = Terrain::generate(
            &TerrainConfig {
                relief_m: 20.0,
                ..TerrainConfig::default()
            },
            &mut SimRng::from_seed(4),
        );
        let flat_cfg = PlannerConfig {
            slope_cost: 0.0,
            ..PlannerConfig::default()
        };
        let steep_cfg = PlannerConfig {
            slope_cost: 30.0,
            ..PlannerConfig::default()
        };
        let a = Vec2::new(30.0, 250.0);
        let b = Vec2::new(470.0, 250.0);
        assert!(
            terrain.slope_at(a) <= flat_cfg.max_slope && terrain.slope_at(b) <= flat_cfg.max_slope
        );
        let direct = plan_path(&terrain, &flat_cfg, a, b).unwrap();
        let cautious = plan_path(&terrain, &steep_cfg, a, b).unwrap();
        let mean_slope = |p: &[Vec2]| -> f64 {
            p.iter().map(|w| terrain.slope_at(*w)).sum::<f64>() / p.len() as f64
        };
        assert!(
            mean_slope(&cautious) <= mean_slope(&direct) + 1e-9,
            "slope-aware path should not be steeper on average"
        );
    }
}
