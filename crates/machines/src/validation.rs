//! Validation of the simulation toolchain against reference data.
//!
//! The paper's future work (Sec. VI) calls for "a validation method for
//! simulation environments to ensure that their obtained results possess
//! an adequate representation of the real world", naming the virtual
//! sensor as the first component to validate. This module implements
//! that method for the people-detection sensor: measure the sensor's
//! *detection-rate-versus-distance curve* in a candidate simulation and
//! compare it, bin by bin, against a reference curve (from field trials
//! or a trusted simulation), with a divergence threshold deciding
//! acceptance.

use crate::sensors::PeopleSensor;
use serde::{Deserialize, Serialize};
use silvasec_sim::geom::Vec2;
use silvasec_sim::rng::SimRng;
use silvasec_sim::time::SimDuration;
use silvasec_sim::world::World;

/// One distance bin of a detection curve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BinStat {
    /// (human, tick) samples observed in this bin.
    pub samples: u64,
    /// Samples that were detected.
    pub detections: u64,
}

impl BinStat {
    /// The detection rate (0 when no samples).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.detections as f64 / self.samples as f64
        }
    }
}

/// A detection-rate-versus-distance curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionCurve {
    /// Width of each distance bin, metres.
    pub bin_width_m: f64,
    /// Bins from 0 outwards.
    pub bins: Vec<BinStat>,
}

impl DetectionCurve {
    /// Creates an empty curve covering `max_range_m`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width_m` is not positive.
    #[must_use]
    pub fn new(bin_width_m: f64, max_range_m: f64) -> Self {
        assert!(bin_width_m > 0.0, "bin width must be positive");
        let n = (max_range_m / bin_width_m).ceil() as usize;
        DetectionCurve {
            bin_width_m,
            bins: vec![BinStat::default(); n],
        }
    }

    /// Records one sample at `distance_m`.
    pub fn record(&mut self, distance_m: f64, detected: bool) {
        let idx = (distance_m / self.bin_width_m) as usize;
        if let Some(bin) = self.bins.get_mut(idx) {
            bin.samples += 1;
            if detected {
                bin.detections += 1;
            }
        }
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.bins.iter().map(|b| b.samples).sum()
    }
}

/// The outcome of comparing a candidate curve against a reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Maximum absolute detection-rate difference across compared bins.
    pub max_divergence: f64,
    /// Mean absolute difference across compared bins.
    pub mean_divergence: f64,
    /// Number of bins with enough samples on both sides to compare.
    pub bins_compared: usize,
    /// The acceptance threshold used.
    pub threshold: f64,
    /// Whether the candidate is accepted as representative.
    pub accepted: bool,
    /// The worst bin's index and rates (reference, candidate), if any.
    pub worst_bin: Option<(usize, f64, f64)>,
}

/// Compares two curves; bins with fewer than `min_samples` on either
/// side are skipped (insufficient evidence either way).
#[must_use]
pub fn validate_curves(
    reference: &DetectionCurve,
    candidate: &DetectionCurve,
    min_samples: u64,
    threshold: f64,
) -> ValidationReport {
    let mut max_div: f64 = 0.0;
    let mut sum_div = 0.0;
    let mut compared = 0usize;
    let mut worst = None;
    for (i, (r, c)) in reference.bins.iter().zip(candidate.bins.iter()).enumerate() {
        if r.samples < min_samples || c.samples < min_samples {
            continue;
        }
        let div = (r.rate() - c.rate()).abs();
        sum_div += div;
        compared += 1;
        if div > max_div {
            max_div = div;
            worst = Some((i, r.rate(), c.rate()));
        }
    }
    ValidationReport {
        max_divergence: max_div,
        mean_divergence: if compared == 0 {
            0.0
        } else {
            sum_div / compared as f64
        },
        bins_compared: compared,
        threshold,
        accepted: compared > 0 && max_div <= threshold,
        worst_bin: worst,
    }
}

/// Measures the people-sensor detection curve in a world: a stationary
/// 360°-swept sensor at `machine_pos` sampling the world's workers as
/// they move, for `duration`.
pub fn measure_detection_curve(
    world: &mut World,
    sensor: &PeopleSensor,
    machine_pos: Vec2,
    duration: SimDuration,
    rng: &mut SimRng,
) -> DetectionCurve {
    let tick = SimDuration::from_millis(500);
    let max_range = sensor.kind.base_range_m();
    let mut curve = DetectionCurve::new(5.0, max_range);
    let ticks = duration.as_millis() / tick.as_millis();
    let mut heading = 0.0f64;
    for _ in 0..ticks {
        world.step(tick);
        heading = (heading + 0.35) % std::f64::consts::TAU;
        let detections = sensor.detect(world, machine_pos, heading, rng);
        for human in world.humans() {
            let dist = human.position.distance(machine_pos);
            if dist <= max_range {
                let detected = detections.iter().any(|d| d.human_id == human.id);
                curve.record(dist, detected);
            }
        }
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::SensorKind;
    use silvasec_sim::terrain::TerrainConfig;
    use silvasec_sim::vegetation::StandConfig;
    use silvasec_sim::weather::Weather;
    use silvasec_sim::world::WorldConfig;

    fn world(seed: u64, weather: Weather) -> World {
        let config = WorldConfig {
            terrain: TerrainConfig {
                size_m: 150.0,
                relief_m: 2.0,
                ..TerrainConfig::default()
            },
            stand: StandConfig {
                trees_per_hectare: 150.0,
                ..StandConfig::default()
            },
            human_count: 6,
            human: silvasec_sim::humans::HumanConfig {
                work_area_bias: 0.8,
                ..silvasec_sim::humans::HumanConfig::default()
            },
            work_area: Vec2::new(75.0, 75.0),
            landing_area: Vec2::new(20.0, 20.0),
            initial_weather: weather,
            weather_change_prob: 0.0,
        };
        World::generate(&config, SimRng::from_seed(seed))
    }

    fn curve(seed: u64, weather: Weather) -> DetectionCurve {
        let mut w = world(seed, weather);
        let sensor = PeopleSensor::new(SensorKind::Lidar, 3.0);
        let mut rng = SimRng::from_seed(seed ^ 0xabc);
        measure_detection_curve(
            &mut w,
            &sensor,
            Vec2::new(75.0, 75.0),
            SimDuration::from_secs(900),
            &mut rng,
        )
    }

    #[test]
    fn bins_and_rates() {
        let mut c = DetectionCurve::new(5.0, 45.0);
        assert_eq!(c.bins.len(), 9);
        c.record(2.0, true);
        c.record(3.0, false);
        c.record(44.9, true);
        assert_eq!(c.bins[0].samples, 2);
        assert!((c.bins[0].rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.bins[8].detections, 1);
        assert_eq!(c.total_samples(), 3);
        // Out of range records are dropped.
        c.record(100.0, true);
        assert_eq!(c.total_samples(), 3);
    }

    #[test]
    fn same_configuration_validates() {
        let reference = curve(1, Weather::Clear);
        let candidate = curve(2, Weather::Clear);
        assert!(
            reference.total_samples() > 300,
            "not enough exposure: {}",
            reference.total_samples()
        );
        let report = validate_curves(&reference, &candidate, 30, 0.2);
        assert!(
            report.accepted,
            "same config must validate: max divergence {:.3} over {} bins ({:?})",
            report.max_divergence, report.bins_compared, report.worst_bin
        );
    }

    #[test]
    fn wrong_weather_model_rejected() {
        // Reference "field data" in clear weather; candidate simulation
        // wrongly models the campaign as fog.
        let reference = curve(1, Weather::Clear);
        let candidate = curve(2, Weather::Fog);
        let report = validate_curves(&reference, &candidate, 30, 0.2);
        assert!(
            !report.accepted,
            "fog-vs-clear must diverge: max {:.3}",
            report.max_divergence
        );
    }

    #[test]
    fn sparse_bins_skipped() {
        let a = DetectionCurve::new(5.0, 45.0);
        let b = DetectionCurve::new(5.0, 45.0);
        let report = validate_curves(&a, &b, 10, 0.1);
        assert_eq!(report.bins_compared, 0);
        assert!(!report.accepted, "no evidence means no acceptance");
    }
}
