//! The stop/slow-zone safety supervisor.
//!
//! This is the ISO 13849-style safety function of the forwarder: fuse the
//! people detections, compare against protective zones, and command a
//! speed limit. It latches: once stopped, the machine stays stopped until
//! the zone has been clear for a configurable delay (preventing rapid
//! stop/start oscillation around the detection threshold).

use crate::sensors::Detection;
use serde::{Deserialize, Serialize};
use silvasec_sim::geom::Vec2;
use silvasec_sim::time::{SimDuration, SimTime};

/// The commanded speed limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpeedLimit {
    /// Full operating speed.
    Full,
    /// Reduced speed (person in the slow zone).
    Slow,
    /// Standstill (person in the stop zone).
    Stop,
}

impl SpeedLimit {
    /// The speed cap in m/s this limit imposes, given the machine's
    /// nominal maximum.
    #[must_use]
    pub fn cap_mps(self, max_speed: f64) -> f64 {
        match self {
            SpeedLimit::Full => max_speed,
            SpeedLimit::Slow => (max_speed * 0.3).min(1.0),
            SpeedLimit::Stop => 0.0,
        }
    }
}

/// Supervisor configuration.
#[derive(Debug, Clone, Copy)]
pub struct SafetyConfig {
    /// Radius of the standstill zone, metres.
    pub stop_radius_m: f64,
    /// Radius of the reduced-speed zone, metres.
    pub slow_radius_m: f64,
    /// Zone must be clear this long before releasing a stop.
    pub clear_delay: SimDuration,
    /// Minimum detection confidence to act on.
    pub min_confidence: f64,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig {
            stop_radius_m: 10.0,
            slow_radius_m: 25.0,
            clear_delay: SimDuration::from_secs(3),
            min_confidence: 0.05,
        }
    }
}

/// The latching safety supervisor.
#[derive(Debug, Clone)]
pub struct SafetySupervisor {
    config: SafetyConfig,
    current: SpeedLimit,
    last_stop_trigger: Option<SimTime>,
    stop_events: u64,
}

impl SafetySupervisor {
    /// Creates a supervisor in the `Full` state.
    #[must_use]
    pub fn new(config: SafetyConfig) -> Self {
        SafetySupervisor {
            config,
            current: SpeedLimit::Full,
            last_stop_trigger: None,
            stop_events: 0,
        }
    }

    /// The current commanded limit.
    #[must_use]
    pub fn current(&self) -> SpeedLimit {
        self.current
    }

    /// How many distinct stop events the supervisor has commanded.
    #[must_use]
    pub fn stop_events(&self) -> u64 {
        self.stop_events
    }

    /// Feeds the fused detections for this cycle; returns the commanded
    /// limit. `machine_position` is the reference for zone distances.
    pub fn update(
        &mut self,
        now: SimTime,
        machine_position: Vec2,
        detections: &[Detection],
    ) -> SpeedLimit {
        let mut nearest = f64::INFINITY;
        for d in detections {
            if d.confidence < self.config.min_confidence {
                continue;
            }
            nearest = nearest.min(d.position.distance(machine_position));
        }

        if nearest <= self.config.stop_radius_m {
            if self.current != SpeedLimit::Stop {
                self.stop_events += 1;
            }
            self.current = SpeedLimit::Stop;
            self.last_stop_trigger = Some(now);
        } else if self.current == SpeedLimit::Stop {
            // Latched: release only after the clear delay.
            let clear_since = self.last_stop_trigger.expect("stop implies trigger time");
            if now.since(clear_since) >= self.config.clear_delay {
                self.current = if nearest <= self.config.slow_radius_m {
                    SpeedLimit::Slow
                } else {
                    SpeedLimit::Full
                };
            }
        } else if nearest <= self.config.slow_radius_m {
            self.current = SpeedLimit::Slow;
        } else {
            self.current = SpeedLimit::Full;
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::humans::HumanId;

    fn det(pos: Vec2, confidence: f64) -> Detection {
        Detection {
            human_id: HumanId(0),
            position: pos,
            confidence,
            distance_m: 0.0,
        }
    }

    fn supervisor() -> SafetySupervisor {
        SafetySupervisor::new(SafetyConfig::default())
    }

    #[test]
    fn zones_map_to_limits() {
        let mut s = supervisor();
        let m = Vec2::ZERO;
        assert_eq!(
            s.update(SimTime::ZERO, m, &[det(Vec2::new(50.0, 0.0), 0.9)]),
            SpeedLimit::Full
        );
        assert_eq!(
            s.update(SimTime::ZERO, m, &[det(Vec2::new(20.0, 0.0), 0.9)]),
            SpeedLimit::Slow
        );
        assert_eq!(
            s.update(SimTime::ZERO, m, &[det(Vec2::new(5.0, 0.0), 0.9)]),
            SpeedLimit::Stop
        );
    }

    #[test]
    fn stop_latches_until_clear_delay() {
        let mut s = supervisor();
        let m = Vec2::ZERO;
        s.update(SimTime::from_secs(0), m, &[det(Vec2::new(5.0, 0.0), 0.9)]);
        assert_eq!(s.current(), SpeedLimit::Stop);
        // Zone clear, but delay not elapsed.
        assert_eq!(s.update(SimTime::from_secs(1), m, &[]), SpeedLimit::Stop);
        assert_eq!(s.update(SimTime::from_secs(2), m, &[]), SpeedLimit::Stop);
        // Delay elapsed → release.
        assert_eq!(s.update(SimTime::from_secs(3), m, &[]), SpeedLimit::Full);
    }

    #[test]
    fn retrigger_extends_latch() {
        let mut s = supervisor();
        let m = Vec2::ZERO;
        s.update(SimTime::from_secs(0), m, &[det(Vec2::new(5.0, 0.0), 0.9)]);
        s.update(SimTime::from_secs(2), m, &[det(Vec2::new(6.0, 0.0), 0.9)]);
        // 3 s after the *second* trigger.
        assert_eq!(s.update(SimTime::from_secs(4), m, &[]), SpeedLimit::Stop);
        assert_eq!(s.update(SimTime::from_secs(5), m, &[]), SpeedLimit::Full);
    }

    #[test]
    fn stop_events_counted_once_per_event() {
        let mut s = supervisor();
        let m = Vec2::ZERO;
        for t in 0..5 {
            s.update(SimTime::from_secs(t), m, &[det(Vec2::new(5.0, 0.0), 0.9)]);
        }
        assert_eq!(s.stop_events(), 1);
        // Release, then a new event.
        for t in 5..9 {
            s.update(SimTime::from_secs(t), m, &[]);
        }
        s.update(SimTime::from_secs(9), m, &[det(Vec2::new(5.0, 0.0), 0.9)]);
        assert_eq!(s.stop_events(), 2);
    }

    #[test]
    fn low_confidence_ignored() {
        let mut s = supervisor();
        let m = Vec2::ZERO;
        assert_eq!(
            s.update(SimTime::ZERO, m, &[det(Vec2::new(5.0, 0.0), 0.01)]),
            SpeedLimit::Full
        );
    }

    #[test]
    fn release_into_slow_when_person_in_slow_zone() {
        let mut s = supervisor();
        let m = Vec2::ZERO;
        s.update(SimTime::from_secs(0), m, &[det(Vec2::new(5.0, 0.0), 0.9)]);
        // Person retreats to the slow zone and stays there past the delay.
        s.update(SimTime::from_secs(1), m, &[det(Vec2::new(20.0, 0.0), 0.9)]);
        s.update(SimTime::from_secs(2), m, &[det(Vec2::new(20.0, 0.0), 0.9)]);
        let limit = s.update(SimTime::from_secs(3), m, &[det(Vec2::new(20.0, 0.0), 0.9)]);
        assert_eq!(limit, SpeedLimit::Slow);
    }

    #[test]
    fn speed_caps() {
        assert_eq!(SpeedLimit::Full.cap_mps(5.0), 5.0);
        assert_eq!(SpeedLimit::Slow.cap_mps(5.0), 1.0);
        assert_eq!(SpeedLimit::Stop.cap_mps(5.0), 0.0);
    }
}
