//! The observation drone: an elevated, gimballed people-detection
//! platform escorting the forwarder (the paper's Figure 2 concept).

use crate::kinematics::DroneBody;
use crate::sensors::{Detection, PeopleSensor, SensorKind};
use silvasec_sim::geom::Vec2;
use silvasec_sim::rng::SimRng;
use silvasec_sim::time::SimDuration;
use silvasec_sim::world::World;

/// Drone parameters.
#[derive(Debug, Clone, Copy)]
pub struct DroneConfig {
    /// Patrol altitude above ground, metres.
    pub altitude_agl: f64,
    /// Cruise speed, m/s.
    pub cruise_speed: f64,
    /// Orbit radius around the escorted machine, metres.
    pub orbit_radius: f64,
    /// Orbit angular rate, radians per second.
    pub orbit_rate: f64,
}

impl Default for DroneConfig {
    fn default() -> Self {
        DroneConfig {
            altitude_agl: 50.0,
            cruise_speed: 12.0,
            orbit_radius: 20.0,
            orbit_rate: 0.15,
        }
    }
}

/// The observation drone.
#[derive(Debug, Clone)]
pub struct Drone {
    /// The airframe.
    pub body: DroneBody,
    /// The downward-looking gimballed camera.
    pub sensor: PeopleSensor,
    config: DroneConfig,
    orbit_angle: f64,
}

impl Drone {
    /// Creates a drone at `position_2d` over the given world.
    #[must_use]
    pub fn new(position_2d: Vec2, config: DroneConfig, world: &World) -> Self {
        Drone {
            body: DroneBody::new(
                position_2d,
                config.altitude_agl,
                config.cruise_speed,
                world.terrain(),
            ),
            sensor: PeopleSensor::new(SensorKind::Camera, 0.0),
            config,
            orbit_angle: 0.0,
        }
    }

    /// Advances the escort orbit around `escort_target` by `dt`.
    pub fn step(&mut self, world: &World, escort_target: Vec2, dt: SimDuration) {
        self.orbit_angle =
            (self.orbit_angle + self.config.orbit_rate * dt.as_secs_f64()) % std::f64::consts::TAU;
        let offset = Vec2::new(
            self.config.orbit_radius * self.orbit_angle.cos(),
            self.config.orbit_radius * self.orbit_angle.sin(),
        );
        self.body.set_target(escort_target + offset);
        self.body.step(world.terrain(), dt);
    }

    /// Samples the drone's people detections (gimballed camera:
    /// omnidirectional in azimuth).
    ///
    /// Allocating form; the hot path uses [`Drone::detect_into`], with
    /// this as its parity oracle.
    #[must_use]
    pub fn detect(&self, world: &World, rng: &mut SimRng) -> Vec<Detection> {
        self.sensor
            .detect_from(world, self.body.position, None, rng)
    }

    /// Zero-alloc, grid-culled form of [`Drone::detect`]: writes
    /// detections into caller-owned `out` (cleared first), using
    /// `candidates` as index scratch. Bit-identical output and RNG
    /// stream — see [`crate::sensors::PeopleSensor::detect_from_into`].
    pub fn detect_into(
        &self,
        world: &World,
        rng: &mut SimRng,
        candidates: &mut Vec<u32>,
        out: &mut Vec<Detection>,
    ) {
        self.sensor
            .detect_from_into(world, self.body.position, None, rng, candidates, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::prelude::*;
    use silvasec_sim::terrain::TerrainConfig;
    use silvasec_sim::vegetation::StandConfig;

    fn world() -> World {
        let config = WorldConfig {
            terrain: TerrainConfig {
                size_m: 300.0,
                relief_m: 2.0,
                ..TerrainConfig::default()
            },
            stand: StandConfig {
                trees_per_hectare: 0.0,
                ..StandConfig::default()
            },
            human_count: 2,
            ..WorldConfig::default()
        };
        World::generate(&config, SimRng::from_seed(1))
    }

    #[test]
    fn orbits_the_escort_target() {
        let w = world();
        let target = Vec2::new(150.0, 150.0);
        let mut d = Drone::new(target, DroneConfig::default(), &w);
        let mut distances = Vec::new();
        for _ in 0..600 {
            d.step(&w, target, SimDuration::from_millis(500));
            distances.push(d.body.position.xy().distance(target));
        }
        // After settling, distance should hover near the orbit radius.
        let settled = &distances[300..];
        let mean: f64 = settled.iter().sum::<f64>() / settled.len() as f64;
        assert!((10.0..=30.0).contains(&mean), "mean orbit distance {mean}");
    }

    #[test]
    fn follows_a_moving_target() {
        let w = world();
        let mut d = Drone::new(Vec2::new(50.0, 50.0), DroneConfig::default(), &w);
        let mut target = Vec2::new(50.0, 50.0);
        for i in 0..1200 {
            target = Vec2::new(50.0 + 0.1 * i as f64, 50.0);
            d.step(&w, target, SimDuration::from_millis(500));
        }
        assert!(
            d.body.position.xy().distance(target) < 40.0,
            "drone fell behind: {} m",
            d.body.position.xy().distance(target)
        );
    }

    #[test]
    fn detects_from_altitude() {
        let w = world();
        let worker = w.humans()[0].position;
        let mut d = Drone::new(worker, DroneConfig::default(), &w);
        let mut rng = SimRng::from_seed(2);
        // Hover directly over the worker.
        d.step(&w, worker, SimDuration::from_millis(500));
        let mut hits = 0;
        for _ in 0..100 {
            if d.detect(&w, &mut rng)
                .iter()
                .any(|det| det.human_id == w.humans()[0].id)
            {
                hits += 1;
            }
        }
        assert!(hits > 50, "{hits}/100 detections from overhead");
    }
}
