//! Alert and severity types.

use serde::{Deserialize, Serialize};
use silvasec_sim::time::SimTime;
use std::fmt;

/// What the IDS believes is happening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AlertKind {
    /// A burst of de-authentication frames (Wi-Fi DoS).
    DeauthFlood,
    /// Noise-floor rise with delivery collapse (RF jamming).
    Jamming,
    /// GNSS position diverging from dead reckoning (spoofing).
    GnssSpoofing,
    /// Loss of GNSS fixes while motion continues (GNSS jamming).
    GnssJamming,
    /// People-detection rate collapse (camera blinding / tampering).
    SensorBlinding,
    /// Repeated cryptographic authentication failures (active tampering
    /// or an impersonation attempt).
    AuthFailureStorm,
    /// Association attempts from radios outside the commissioned roster
    /// (a rogue node trying to join the worksite network).
    RogueAssociation,
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl AlertKind {
    /// Short stable name of the alert class, used as a telemetry label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::DeauthFlood => "deauth-flood",
            AlertKind::Jamming => "jamming",
            AlertKind::GnssSpoofing => "gnss-spoofing",
            AlertKind::GnssJamming => "gnss-jamming",
            AlertKind::SensorBlinding => "sensor-blinding",
            AlertKind::AuthFailureStorm => "auth-failure-storm",
            AlertKind::RogueAssociation => "rogue-association",
        }
    }

    /// Parses the stable class name produced by [`AlertKind::as_str`]
    /// back into the kind. Returns `None` for classes this IDS does not
    /// raise (fleet-synthesised classes pass through ops as strings).
    #[must_use]
    pub fn from_class(class: &str) -> Option<Self> {
        match class {
            "deauth-flood" => Some(AlertKind::DeauthFlood),
            "jamming" => Some(AlertKind::Jamming),
            "gnss-spoofing" => Some(AlertKind::GnssSpoofing),
            "gnss-jamming" => Some(AlertKind::GnssJamming),
            "sensor-blinding" => Some(AlertKind::SensorBlinding),
            "auth-failure-storm" => Some(AlertKind::AuthFailureStorm),
            "rogue-association" => Some(AlertKind::RogueAssociation),
            _ => None,
        }
    }

    /// The default severity of this alert kind, reflecting how directly
    /// it can compromise a safety function.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            AlertKind::SensorBlinding | AlertKind::GnssSpoofing => Severity::Critical,
            AlertKind::Jamming | AlertKind::DeauthFlood => Severity::High,
            AlertKind::GnssJamming => Severity::High,
            AlertKind::AuthFailureStorm | AlertKind::RogueAssociation => Severity::Medium,
        }
    }
}

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; log only.
    Low,
    /// Needs operator attention.
    Medium,
    /// Mission-impacting; degraded mode advised.
    High,
    /// Safety-impacting; protective action required.
    Critical,
}

impl Severity {
    /// Short stable name of the severity, used as a telemetry label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
            Severity::Critical => "critical",
        }
    }

    /// Parses the stable name produced by [`Severity::as_str`]. Unknown
    /// names map to `None` so callers choose their own conservative
    /// default rather than inheriting one silently.
    #[must_use]
    pub fn from_str_name(name: &str) -> Option<Self> {
        match name {
            "low" => Some(Severity::Low),
            "medium" => Some(Severity::Medium),
            "high" => Some(Severity::High),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// One alert raised by a detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// What is suspected.
    pub kind: AlertKind,
    /// How severe.
    pub severity: Severity,
    /// The entity the alert concerns (node, machine or sensor label).
    pub subject: String,
    /// When it was raised.
    pub at: SimTime,
    /// Human-readable evidence summary.
    pub detail: String,
}

impl Alert {
    /// Creates an alert with the kind's default severity.
    pub fn new(kind: AlertKind, subject: impl Into<String>, at: SimTime, detail: String) -> Self {
        Alert {
            kind,
            severity: kind.default_severity(),
            subject: subject.into(),
            at,
            detail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Low < Severity::Medium);
        assert!(Severity::Medium < Severity::High);
        assert!(Severity::High < Severity::Critical);
    }

    #[test]
    fn safety_relevant_kinds_are_critical() {
        assert_eq!(
            AlertKind::SensorBlinding.default_severity(),
            Severity::Critical
        );
        assert_eq!(
            AlertKind::GnssSpoofing.default_severity(),
            Severity::Critical
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(AlertKind::DeauthFlood.to_string(), "deauth-flood");
        assert_eq!(AlertKind::Jamming.to_string(), "jamming");
    }

    #[test]
    fn class_and_severity_names_roundtrip() {
        for kind in [
            AlertKind::DeauthFlood,
            AlertKind::Jamming,
            AlertKind::GnssSpoofing,
            AlertKind::GnssJamming,
            AlertKind::SensorBlinding,
            AlertKind::AuthFailureStorm,
            AlertKind::RogueAssociation,
        ] {
            assert_eq!(AlertKind::from_class(kind.as_str()), Some(kind));
        }
        assert_eq!(AlertKind::from_class("not-a-class"), None);
        for sev in [
            Severity::Low,
            Severity::Medium,
            Severity::High,
            Severity::Critical,
        ] {
            assert_eq!(Severity::from_str_name(sev.as_str()), Some(sev));
        }
        assert_eq!(Severity::from_str_name("catastrophic"), None);
    }

    #[test]
    fn constructor_applies_default_severity() {
        let a = Alert::new(
            AlertKind::Jamming,
            "fw-01",
            SimTime::ZERO,
            "noise +20 dB".into(),
        );
        assert_eq!(a.severity, Severity::High);
        assert_eq!(a.subject, "fw-01");
    }

    #[test]
    fn serde_roundtrip() {
        let a = Alert::new(
            AlertKind::GnssSpoofing,
            "fw-01",
            SimTime::from_secs(5),
            "drift".into(),
        );
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(serde_json::from_str::<Alert>(&json).unwrap(), a);
    }
}
