//! Alert correlation: deduplication and incident formation.
//!
//! A single attack raises alerts from multiple detectors on multiple
//! machines (a jammer trips the jamming detector on every node in range).
//! The correlator groups alerts of the same kind within a time window
//! into one **incident**, which is the unit operators and the continuous
//! risk assessment consume.

use crate::alert::{Alert, AlertKind, Severity};
use serde::{Deserialize, Serialize};
use silvasec_sim::time::{SimDuration, SimTime};

/// A correlated group of alerts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Incident id (monotonic).
    pub id: u64,
    /// The shared alert kind.
    pub kind: AlertKind,
    /// Maximum severity across grouped alerts.
    pub severity: Severity,
    /// First alert time.
    pub opened_at: SimTime,
    /// Most recent alert time.
    pub last_alert_at: SimTime,
    /// Distinct subjects involved.
    pub subjects: Vec<String>,
    /// Number of alerts grouped.
    pub alert_count: u64,
}

/// Groups alerts into incidents.
#[derive(Debug, Default)]
pub struct AlertCorrelator {
    window: SimDuration,
    open: Vec<Incident>,
    closed: Vec<Incident>,
    next_id: u64,
}

impl AlertCorrelator {
    /// Creates a correlator; alerts of the same kind within `window` of
    /// an incident's last alert join that incident.
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        AlertCorrelator {
            window,
            ..AlertCorrelator::default()
        }
    }

    /// Feeds an alert; returns the id of the incident it joined, and
    /// whether that incident is new.
    pub fn ingest(&mut self, alert: &Alert) -> (u64, bool) {
        self.expire(alert.at);
        if let Some(incident) = self
            .open
            .iter_mut()
            .find(|i| i.kind == alert.kind && alert.at.since(i.last_alert_at) <= self.window)
        {
            incident.last_alert_at = alert.at;
            incident.alert_count += 1;
            incident.severity = incident.severity.max(alert.severity);
            if !incident.subjects.contains(&alert.subject) {
                incident.subjects.push(alert.subject.clone());
            }
            (incident.id, false)
        } else {
            let id = self.next_id;
            self.next_id += 1;
            self.open.push(Incident {
                id,
                kind: alert.kind,
                severity: alert.severity,
                opened_at: alert.at,
                last_alert_at: alert.at,
                subjects: vec![alert.subject.clone()],
                alert_count: 1,
            });
            (id, true)
        }
    }

    fn expire(&mut self, now: SimTime) {
        let window = self.window;
        let (still_open, expired): (Vec<Incident>, Vec<Incident>) = self
            .open
            .drain(..)
            .partition(|i| now.since(i.last_alert_at) <= window);
        self.open = still_open;
        self.closed.extend(expired);
    }

    /// Incidents currently open as of their last ingest.
    #[must_use]
    pub fn open_incidents(&self) -> &[Incident] {
        &self.open
    }

    /// Incidents that have gone quiet.
    #[must_use]
    pub fn closed_incidents(&self) -> &[Incident] {
        &self.closed
    }

    /// All incidents, open and closed.
    #[must_use]
    pub fn all_incidents(&self) -> Vec<&Incident> {
        self.closed.iter().chain(self.open.iter()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(kind: AlertKind, subject: &str, at_s: u64) -> Alert {
        Alert::new(kind, subject, SimTime::from_secs(at_s), "test".into())
    }

    #[test]
    fn same_kind_within_window_groups() {
        let mut c = AlertCorrelator::new(SimDuration::from_secs(60));
        let (id1, new1) = c.ingest(&alert(AlertKind::Jamming, "fw-01", 10));
        let (id2, new2) = c.ingest(&alert(AlertKind::Jamming, "drone-01", 30));
        assert!(new1);
        assert!(!new2);
        assert_eq!(id1, id2);
        let inc = &c.open_incidents()[0];
        assert_eq!(inc.alert_count, 2);
        assert_eq!(inc.subjects.len(), 2);
    }

    #[test]
    fn different_kinds_separate_incidents() {
        let mut c = AlertCorrelator::new(SimDuration::from_secs(60));
        let (a, _) = c.ingest(&alert(AlertKind::Jamming, "fw-01", 10));
        let (b, _) = c.ingest(&alert(AlertKind::DeauthFlood, "fw-01", 11));
        assert_ne!(a, b);
        assert_eq!(c.open_incidents().len(), 2);
    }

    #[test]
    fn gap_beyond_window_opens_new_incident() {
        let mut c = AlertCorrelator::new(SimDuration::from_secs(60));
        let (a, _) = c.ingest(&alert(AlertKind::Jamming, "fw-01", 10));
        let (b, is_new) = c.ingest(&alert(AlertKind::Jamming, "fw-01", 100));
        assert_ne!(a, b);
        assert!(is_new);
        assert_eq!(c.closed_incidents().len(), 1);
        assert_eq!(c.open_incidents().len(), 1);
    }

    #[test]
    fn severity_escalates_to_max() {
        let mut c = AlertCorrelator::new(SimDuration::from_secs(60));
        let mut low = alert(AlertKind::Jamming, "fw-01", 10);
        low.severity = Severity::Low;
        c.ingest(&low);
        c.ingest(&alert(AlertKind::Jamming, "fw-01", 20)); // default High
        assert_eq!(c.open_incidents()[0].severity, Severity::High);
    }

    #[test]
    fn duplicate_subjects_not_repeated() {
        let mut c = AlertCorrelator::new(SimDuration::from_secs(60));
        for t in 10..15 {
            c.ingest(&alert(AlertKind::DeauthFlood, "fw-01", t));
        }
        let inc = &c.open_incidents()[0];
        assert_eq!(inc.subjects, vec!["fw-01".to_string()]);
        assert_eq!(inc.alert_count, 5);
    }

    #[test]
    fn all_incidents_combines() {
        let mut c = AlertCorrelator::new(SimDuration::from_secs(10));
        c.ingest(&alert(AlertKind::Jamming, "a", 0));
        c.ingest(&alert(AlertKind::Jamming, "a", 100));
        assert_eq!(c.all_incidents().len(), 2);
    }
}
