//! Sensor-health monitoring: detecting camera blinding and tampering.
//!
//! A blinded people-detection sensor is the most safety-critical attack
//! in the catalog: the machine keeps driving but can no longer see
//! workers. The monitor learns the sensor's background *feature rate*
//! (detections + environmental features like trunks per sample — any
//! healthy optical sensor in a forest sees *something*) and alerts when
//! the rate collapses far below the baseline.

use crate::alert::{Alert, AlertKind};
use silvasec_sim::time::{SimDuration, SimTime};
use silvasec_telemetry::Label;
use std::collections::VecDeque;

/// One sensor-health sample.
#[derive(Debug, Clone)]
pub struct SensorObservation {
    /// The sensor's label (e.g. `"forwarder-01/camera"`; a
    /// fixed-capacity [`Label`], so building an observation per tick
    /// never allocates).
    pub sensor_label: Label,
    /// Sample time.
    pub at: SimTime,
    /// Features (detections, trunks, landmarks) the sensor reported in
    /// this sample.
    pub feature_count: u32,
}

/// Sensor-health tuning.
#[derive(Debug, Clone)]
pub struct SensorHealthConfig {
    /// Samples used to learn the baseline before monitoring starts.
    pub learning_samples: usize,
    /// Alert when the recent mean rate falls below this fraction of the
    /// learned baseline.
    pub collapse_fraction: f64,
    /// Recent window length in samples.
    pub recent_samples: usize,
    /// Cool-down between alerts.
    pub cooldown: SimDuration,
}

impl Default for SensorHealthConfig {
    fn default() -> Self {
        SensorHealthConfig {
            learning_samples: 30,
            collapse_fraction: 0.25,
            recent_samples: 10,
            cooldown: SimDuration::from_secs(60),
        }
    }
}

/// The per-sensor health monitor.
#[derive(Debug)]
pub struct SensorHealthMonitor {
    config: SensorHealthConfig,
    baseline_sum: f64,
    baseline_count: usize,
    recent: VecDeque<u32>,
    last_alert: Option<SimTime>,
}

impl SensorHealthMonitor {
    /// Creates a monitor with the given tuning.
    #[must_use]
    pub fn new(config: SensorHealthConfig) -> Self {
        SensorHealthMonitor {
            config,
            baseline_sum: 0.0,
            baseline_count: 0,
            recent: VecDeque::new(),
            last_alert: None,
        }
    }

    /// The learned baseline feature rate, once learning completes.
    #[must_use]
    pub fn baseline(&self) -> Option<f64> {
        if self.baseline_count >= self.config.learning_samples {
            Some(self.baseline_sum / self.baseline_count as f64)
        } else {
            None
        }
    }

    /// Feeds a sample; returns any new alerts.
    pub fn observe(&mut self, obs: &SensorObservation) -> Vec<Alert> {
        if self.baseline_count < self.config.learning_samples {
            self.baseline_sum += f64::from(obs.feature_count);
            self.baseline_count += 1;
            return Vec::new();
        }
        self.recent.push_back(obs.feature_count);
        while self.recent.len() > self.config.recent_samples {
            self.recent.pop_front();
        }
        if self.recent.len() < self.config.recent_samples {
            return Vec::new();
        }
        let baseline = self.baseline().expect("learning complete");
        if baseline <= 0.0 {
            return Vec::new(); // nothing to compare against
        }
        let recent_mean =
            self.recent.iter().map(|&c| f64::from(c)).sum::<f64>() / self.recent.len() as f64;
        if recent_mean < baseline * self.config.collapse_fraction {
            let in_cooldown = self
                .last_alert
                .is_some_and(|t| obs.at.since(t) < self.config.cooldown);
            if !in_cooldown {
                self.last_alert = Some(obs.at);
                return vec![Alert::new(
                    AlertKind::SensorBlinding,
                    obs.sensor_label.as_str(),
                    obs.at,
                    format!(
                        "feature rate {recent_mean:.1} collapsed below {:.0}% of baseline {baseline:.1}",
                        self.config.collapse_fraction * 100.0
                    ),
                )];
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(at_s: u64, features: u32) -> SensorObservation {
        SensorObservation {
            sensor_label: "fw/cam".into(),
            at: SimTime::from_secs(at_s),
            feature_count: features,
        }
    }

    fn trained_monitor() -> SensorHealthMonitor {
        let mut m = SensorHealthMonitor::new(SensorHealthConfig::default());
        for t in 0..30 {
            let _ = m.observe(&obs(t, 20));
        }
        assert_eq!(m.baseline(), Some(20.0));
        m
    }

    #[test]
    fn healthy_sensor_quiet() {
        let mut m = trained_monitor();
        for t in 30..100 {
            assert!(m.observe(&obs(t, 18 + (t % 5) as u32)).is_empty());
        }
    }

    #[test]
    fn blinding_detected() {
        let mut m = trained_monitor();
        let mut alerts = Vec::new();
        for t in 30..60 {
            alerts.extend(m.observe(&obs(t, 0)));
        }
        assert!(!alerts.is_empty());
        assert_eq!(alerts[0].kind, AlertKind::SensorBlinding);
        // Needs the 10-sample recent window to fill first.
        assert!(alerts[0].at >= SimTime::from_secs(39));
    }

    #[test]
    fn partial_degradation_above_threshold_tolerated() {
        let mut m = trained_monitor();
        // 40% of baseline stays above the 25% collapse threshold.
        for t in 30..100 {
            assert!(m.observe(&obs(t, 8)).is_empty());
        }
    }

    #[test]
    fn no_alert_during_learning() {
        let mut m = SensorHealthMonitor::new(SensorHealthConfig::default());
        for t in 0..29 {
            assert!(m.observe(&obs(t, 0)).is_empty());
            assert_eq!(m.baseline(), None);
        }
    }

    #[test]
    fn zero_baseline_never_alerts() {
        let mut m = SensorHealthMonitor::new(SensorHealthConfig::default());
        for t in 0..100 {
            assert!(m.observe(&obs(t, 0)).is_empty());
        }
    }

    #[test]
    fn cooldown_limits_alert_rate() {
        let mut m = trained_monitor();
        let mut count = 0;
        for t in 30..160 {
            count += m.observe(&obs(t, 0)).len();
        }
        // 120+ seconds of blinding with a 60 s cooldown → ~2-3 alerts.
        assert!((2..=3).contains(&count), "{count} alerts");
    }
}
