//! GNSS/odometry consistency monitoring.
//!
//! The defence Ren et al. recommend against GNSS spoofing is cross-sensor
//! consistency: dead reckoning (wheel odometry + IMU) drifts slowly but
//! cannot be spoofed remotely, so a growing divergence between the GNSS
//! fix and the dead-reckoned position is the spoofing signature. Fix loss
//! while the machine believes it is moving flags jamming instead.

use crate::alert::{Alert, AlertKind};
use silvasec_sim::geom::Vec2;
use silvasec_sim::time::{SimDuration, SimTime};
use silvasec_telemetry::Label;

/// One navigation cross-check sample for one machine.
#[derive(Debug, Clone)]
pub struct NavObservation {
    /// The machine's label (a fixed-capacity [`Label`], so building an
    /// observation per tick never allocates).
    pub machine_label: Label,
    /// Sample time.
    pub at: SimTime,
    /// The GNSS fix, if the receiver produced one.
    pub gnss_fix: Option<Vec2>,
    /// The dead-reckoned position (odometry integrated from the last
    /// trusted fix).
    pub dead_reckoned: Vec2,
    /// Whether the machine is currently commanded to move.
    pub moving: bool,
}

/// Navigation-monitor tuning.
#[derive(Debug, Clone)]
pub struct NavConfig {
    /// Base divergence tolerance, metres (GNSS noise + map errors).
    pub base_tolerance_m: f64,
    /// Extra tolerance per second since the monitor last resynced,
    /// metres/second (odometry drift allowance).
    pub drift_allowance_mps: f64,
    /// Consecutive divergent samples required before alerting.
    pub required_consecutive: u32,
    /// Consecutive missing fixes (while moving) that flag jamming.
    pub missing_fix_threshold: u32,
    /// Cool-down between repeated alerts of the same kind.
    pub cooldown: SimDuration,
}

impl Default for NavConfig {
    fn default() -> Self {
        NavConfig {
            base_tolerance_m: 8.0,
            drift_allowance_mps: 0.05,
            required_consecutive: 3,
            missing_fix_threshold: 5,
            cooldown: SimDuration::from_secs(30),
        }
    }
}

/// The per-machine consistency monitor.
#[derive(Debug)]
pub struct NavConsistencyMonitor {
    config: NavConfig,
    divergent_streak: u32,
    missing_streak: u32,
    synced_at: Option<SimTime>,
    last_alert: std::collections::HashMap<AlertKind, SimTime>,
}

impl NavConsistencyMonitor {
    /// Creates a monitor with the given tuning.
    #[must_use]
    pub fn new(config: NavConfig) -> Self {
        NavConsistencyMonitor {
            config,
            divergent_streak: 0,
            missing_streak: 0,
            synced_at: None,
            last_alert: std::collections::HashMap::new(),
        }
    }

    fn raise(&mut self, kind: AlertKind, obs: &NavObservation, detail: String) -> Option<Alert> {
        if self
            .last_alert
            .get(&kind)
            .is_some_and(|t| obs.at.since(*t) < self.config.cooldown)
        {
            return None;
        }
        self.last_alert.insert(kind, obs.at);
        Some(Alert::new(kind, obs.machine_label.as_str(), obs.at, detail))
    }

    /// Feeds a sample; returns any new alerts.
    pub fn observe(&mut self, obs: &NavObservation) -> Vec<Alert> {
        let mut alerts = Vec::new();
        match obs.gnss_fix {
            None => {
                if obs.moving {
                    self.missing_streak += 1;
                    if self.missing_streak >= self.config.missing_fix_threshold {
                        if let Some(a) = self.raise(
                            AlertKind::GnssJamming,
                            obs,
                            format!(
                                "{} consecutive missing fixes while moving",
                                self.missing_streak
                            ),
                        ) {
                            alerts.push(a);
                        }
                    }
                }
            }
            Some(fix) => {
                self.missing_streak = 0;
                let synced = *self.synced_at.get_or_insert(obs.at);
                let age_s = obs.at.since(synced).as_secs_f64();
                let tolerance =
                    self.config.base_tolerance_m + self.config.drift_allowance_mps * age_s;
                let divergence = fix.distance(obs.dead_reckoned);
                if divergence > tolerance {
                    self.divergent_streak += 1;
                    if self.divergent_streak >= self.config.required_consecutive {
                        if let Some(a) = self.raise(
                            AlertKind::GnssSpoofing,
                            obs,
                            format!(
                                "gnss/odometry divergence {divergence:.1} m > tolerance {tolerance:.1} m"
                            ),
                        ) {
                            alerts.push(a);
                        }
                    }
                } else {
                    self.divergent_streak = 0;
                    // Consistent fix: treat as a resync point.
                    self.synced_at = Some(obs.at);
                }
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(at_s: u64, fix: Option<Vec2>, dr: Vec2) -> NavObservation {
        NavObservation {
            machine_label: "fw".into(),
            at: SimTime::from_secs(at_s),
            gnss_fix: fix,
            dead_reckoned: dr,
            moving: true,
        }
    }

    #[test]
    fn consistent_fixes_no_alert() {
        let mut m = NavConsistencyMonitor::new(NavConfig::default());
        for t in 0..100 {
            let p = Vec2::new(t as f64, 0.0);
            let noisy = p + Vec2::new(1.5, -0.8);
            assert!(m.observe(&obs(t, Some(noisy), p)).is_empty());
        }
    }

    #[test]
    fn spoofing_drag_detected() {
        let mut m = NavConsistencyMonitor::new(NavConfig::default());
        let mut alerts = Vec::new();
        for t in 0..120 {
            let truth = Vec2::new(t as f64, 0.0);
            // Spoof drags the fix away at 0.5 m/s after t = 20.
            let drag = if t > 20 { 0.5 * (t - 20) as f64 } else { 0.0 };
            let fix = truth + Vec2::new(0.0, drag);
            alerts.extend(m.observe(&obs(t, Some(fix), truth)));
        }
        assert!(!alerts.is_empty(), "spoof never detected");
        assert_eq!(alerts[0].kind, AlertKind::GnssSpoofing);
        // Detection latency: divergence crosses ~8 m at t ≈ 36, plus the
        // 3-sample confirmation.
        assert!(
            alerts[0].at <= SimTime::from_secs(45),
            "late: {}",
            alerts[0].at
        );
    }

    #[test]
    fn single_glitch_not_flagged() {
        let mut m = NavConsistencyMonitor::new(NavConfig::default());
        for t in 0..10 {
            let p = Vec2::new(t as f64, 0.0);
            assert!(m.observe(&obs(t, Some(p), p)).is_empty());
        }
        // One wild fix (multipath glitch).
        let p = Vec2::new(10.0, 0.0);
        assert!(m
            .observe(&obs(10, Some(p + Vec2::new(50.0, 0.0)), p))
            .is_empty());
        // Back to normal.
        for t in 11..20 {
            let p = Vec2::new(t as f64, 0.0);
            assert!(m.observe(&obs(t, Some(p), p)).is_empty());
        }
    }

    #[test]
    fn fix_loss_while_moving_is_jamming() {
        let mut m = NavConsistencyMonitor::new(NavConfig::default());
        let mut alerts = Vec::new();
        for t in 0..10 {
            alerts.extend(m.observe(&obs(t, None, Vec2::new(t as f64, 0.0))));
        }
        assert!(!alerts.is_empty());
        assert_eq!(alerts[0].kind, AlertKind::GnssJamming);
    }

    #[test]
    fn fix_loss_while_parked_is_fine() {
        let mut m = NavConsistencyMonitor::new(NavConfig::default());
        for t in 0..50 {
            let mut o = obs(t, None, Vec2::ZERO);
            o.moving = false;
            assert!(m.observe(&o).is_empty());
        }
    }

    #[test]
    fn base_tolerance_controls_sensitivity() {
        // A constant 12 m offset: flagged under the default 8 m base
        // tolerance, tolerated under a 20 m one.
        let run = |base: f64| {
            let config = NavConfig {
                base_tolerance_m: base,
                ..NavConfig::default()
            };
            let mut m = NavConsistencyMonitor::new(config);
            let mut alerts = Vec::new();
            for t in 0..60 {
                let truth = Vec2::new(t as f64, 0.0);
                let fix = truth + Vec2::new(0.0, 12.0);
                alerts.extend(m.observe(&obs(t, Some(fix), truth)));
            }
            alerts.len()
        };
        assert!(run(8.0) >= 1, "default tolerance should flag a 12 m offset");
        assert_eq!(run(20.0), 0, "large tolerance should accept a 12 m offset");
    }
}
