//! Radio-layer detectors: de-auth flood, jamming, auth-failure storm.

use crate::alert::{Alert, AlertKind};
use silvasec_sim::time::{SimDuration, SimTime};
use silvasec_telemetry::Label;
use std::collections::VecDeque;

/// One radio telemetry sample for one node.
#[derive(Debug, Clone)]
pub struct RadioObservation {
    /// The observed node's label (a fixed-capacity [`Label`], so
    /// building an observation per tick never allocates).
    pub node_label: Label,
    /// Sample time.
    pub at: SimTime,
    /// Observed noise+interference floor, dBm (None = no measurement).
    pub noise_dbm: Option<f64>,
    /// Delivery ratio over the sample interval, `[0, 1]`.
    pub delivery_ratio: f64,
    /// De-auth frames received in the sample interval.
    pub deauth_frames: u64,
    /// Cryptographic authentication failures in the sample interval
    /// (AEAD tag failures, handshake rejections).
    pub auth_failures: u64,
    /// Association requests received from radios outside the
    /// commissioned roster in the sample interval.
    pub unknown_assoc_requests: u64,
}

/// Radio-detector tuning.
#[derive(Debug, Clone)]
pub struct RadioConfig {
    /// Sliding window length.
    pub window: SimDuration,
    /// De-auth frames per window that trip [`AlertKind::DeauthFlood`].
    pub deauth_threshold: u64,
    /// Noise rise above the learned baseline (dB) that, combined with
    /// delivery collapse, trips [`AlertKind::Jamming`].
    pub jamming_noise_rise_db: f64,
    /// Delivery ratio below which jamming is plausible.
    pub jamming_delivery_max: f64,
    /// Auth failures per window that trip [`AlertKind::AuthFailureStorm`].
    pub auth_failure_threshold: u64,
    /// Unknown association requests per window that trip
    /// [`AlertKind::RogueAssociation`].
    pub rogue_assoc_threshold: u64,
    /// Cool-down between repeated alerts of the same kind.
    pub cooldown: SimDuration,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            window: SimDuration::from_secs(10),
            deauth_threshold: 5,
            jamming_noise_rise_db: 10.0,
            jamming_delivery_max: 0.5,
            auth_failure_threshold: 5,
            rogue_assoc_threshold: 3,
            cooldown: SimDuration::from_secs(30),
        }
    }
}

/// Per-node radio detectors with learned noise baseline.
#[derive(Debug)]
pub struct RadioDetectors {
    config: RadioConfig,
    deauth_events: VecDeque<(SimTime, u64)>,
    auth_fail_events: VecDeque<(SimTime, u64)>,
    rogue_assoc_events: VecDeque<(SimTime, u64)>,
    /// Slowly learned clean-channel noise floor.
    noise_baseline: Option<f64>,
    last_alert: std::collections::HashMap<AlertKind, SimTime>,
}

impl RadioDetectors {
    /// Creates detectors with the given tuning.
    #[must_use]
    pub fn new(config: RadioConfig) -> Self {
        RadioDetectors {
            config,
            deauth_events: VecDeque::new(),
            auth_fail_events: VecDeque::new(),
            rogue_assoc_events: VecDeque::new(),
            noise_baseline: None,
            last_alert: std::collections::HashMap::new(),
        }
    }

    fn in_cooldown(&self, kind: AlertKind, now: SimTime) -> bool {
        self.last_alert
            .get(&kind)
            .is_some_and(|t| now.since(*t) < self.config.cooldown)
    }

    fn raise(&mut self, kind: AlertKind, obs: &RadioObservation, detail: String) -> Option<Alert> {
        if self.in_cooldown(kind, obs.at) {
            return None;
        }
        self.last_alert.insert(kind, obs.at);
        Some(Alert::new(kind, obs.node_label.as_str(), obs.at, detail))
    }

    /// Feeds a sample; returns any new alerts.
    pub fn observe(&mut self, obs: &RadioObservation) -> Vec<Alert> {
        let mut alerts = Vec::new();

        // --- de-auth flood ---
        if obs.deauth_frames > 0 {
            self.deauth_events.push_back((obs.at, obs.deauth_frames));
        }
        while let Some((t, _)) = self.deauth_events.front() {
            if obs.at.since(*t) > self.config.window {
                self.deauth_events.pop_front();
            } else {
                break;
            }
        }
        let deauth_count: u64 = self.deauth_events.iter().map(|(_, n)| n).sum();
        if deauth_count >= self.config.deauth_threshold {
            if let Some(a) = self.raise(
                AlertKind::DeauthFlood,
                obs,
                format!("{deauth_count} de-auth frames in window"),
            ) {
                alerts.push(a);
            }
        }

        // --- auth-failure storm ---
        if obs.auth_failures > 0 {
            self.auth_fail_events.push_back((obs.at, obs.auth_failures));
        }
        while let Some((t, _)) = self.auth_fail_events.front() {
            if obs.at.since(*t) > self.config.window {
                self.auth_fail_events.pop_front();
            } else {
                break;
            }
        }
        let fail_count: u64 = self.auth_fail_events.iter().map(|(_, n)| n).sum();
        if fail_count >= self.config.auth_failure_threshold {
            if let Some(a) = self.raise(
                AlertKind::AuthFailureStorm,
                obs,
                format!("{fail_count} authentication failures in window"),
            ) {
                alerts.push(a);
            }
        }

        // --- rogue association attempts ---
        if obs.unknown_assoc_requests > 0 {
            self.rogue_assoc_events
                .push_back((obs.at, obs.unknown_assoc_requests));
        }
        while let Some((t, _)) = self.rogue_assoc_events.front() {
            if obs.at.since(*t) > self.config.window {
                self.rogue_assoc_events.pop_front();
            } else {
                break;
            }
        }
        let rogue_count: u64 = self.rogue_assoc_events.iter().map(|(_, n)| n).sum();
        if rogue_count >= self.config.rogue_assoc_threshold {
            if let Some(a) = self.raise(
                AlertKind::RogueAssociation,
                obs,
                format!("{rogue_count} association requests from unknown radios in window"),
            ) {
                alerts.push(a);
            }
        }

        // --- jamming: noise rise + delivery collapse ---
        if let Some(noise) = obs.noise_dbm {
            match self.noise_baseline {
                None => self.noise_baseline = Some(noise),
                Some(baseline) => {
                    let rise = noise - baseline;
                    if rise >= self.config.jamming_noise_rise_db
                        && obs.delivery_ratio <= self.config.jamming_delivery_max
                    {
                        if let Some(a) = self.raise(
                            AlertKind::Jamming,
                            obs,
                            format!(
                                "noise +{rise:.1} dB over baseline, delivery {:.0}%",
                                obs.delivery_ratio * 100.0
                            ),
                        ) {
                            alerts.push(a);
                        }
                    } else if rise < self.config.jamming_noise_rise_db / 2.0 {
                        // Learn slowly, and only from plausibly clean samples
                        // so a long attack cannot poison the baseline.
                        self.noise_baseline = Some(baseline + 0.05 * (noise - baseline));
                    }
                }
            }
        }

        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(at_s: u64) -> RadioObservation {
        RadioObservation {
            node_label: "n".into(),
            at: SimTime::from_secs(at_s),
            noise_dbm: Some(-94.0),
            delivery_ratio: 0.98,
            deauth_frames: 0,
            auth_failures: 0,
            unknown_assoc_requests: 0,
        }
    }

    #[test]
    fn quiet_channel_no_alerts() {
        let mut d = RadioDetectors::new(RadioConfig::default());
        for t in 0..100 {
            assert!(d.observe(&obs(t)).is_empty());
        }
    }

    #[test]
    fn deauth_flood_detected() {
        let mut d = RadioDetectors::new(RadioConfig::default());
        let mut alerts = Vec::new();
        for t in 0..5 {
            let mut o = obs(t);
            o.deauth_frames = 2;
            alerts.extend(d.observe(&o));
        }
        assert_eq!(alerts.len(), 1, "one alert, then cooldown");
        assert_eq!(alerts[0].kind, AlertKind::DeauthFlood);
    }

    #[test]
    fn sparse_deauths_not_flagged() {
        let mut d = RadioDetectors::new(RadioConfig::default());
        // One de-auth every 20 s never accumulates 5 in a 10 s window.
        for t in (0..200).step_by(20) {
            let mut o = obs(t);
            o.deauth_frames = 1;
            assert!(d.observe(&o).is_empty(), "false positive at t={t}");
        }
    }

    #[test]
    fn jamming_needs_noise_and_delivery_collapse() {
        let mut d = RadioDetectors::new(RadioConfig::default());
        // Learn baseline.
        for t in 0..20 {
            let _ = d.observe(&obs(t));
        }
        // Noise rise alone (delivery fine): no alert.
        let mut o = obs(21);
        o.noise_dbm = Some(-70.0);
        assert!(d.observe(&o).is_empty());
        // Delivery collapse alone (noise fine): no alert.
        let mut o = obs(22);
        o.delivery_ratio = 0.1;
        assert!(d.observe(&o).is_empty());
        // Both: alert.
        let mut o = obs(23);
        o.noise_dbm = Some(-70.0);
        o.delivery_ratio = 0.1;
        let alerts = d.observe(&o);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Jamming);
    }

    #[test]
    fn baseline_not_poisoned_by_attack() {
        let mut d = RadioDetectors::new(RadioConfig::default());
        for t in 0..10 {
            let _ = d.observe(&obs(t));
        }
        // Long jamming period: baseline must not absorb the attack noise.
        for t in 10..100 {
            let mut o = obs(t);
            o.noise_dbm = Some(-70.0);
            o.delivery_ratio = 0.1;
            let _ = d.observe(&o);
        }
        assert!(
            d.noise_baseline.unwrap() < -90.0,
            "baseline drifted to {:?}",
            d.noise_baseline
        );
    }

    #[test]
    fn cooldown_suppresses_repeats_then_realerts() {
        let config = RadioConfig {
            cooldown: SimDuration::from_secs(30),
            ..RadioConfig::default()
        };
        let mut d = RadioDetectors::new(config);
        let mut count = 0;
        for t in 0..120 {
            let mut o = obs(t);
            o.deauth_frames = 10;
            count += d.observe(&o).len();
        }
        // 120 s of sustained attack with 30 s cooldown → ~4 alerts.
        assert!((3..=5).contains(&count), "{count} alerts");
    }

    #[test]
    fn auth_failure_storm_detected() {
        let mut d = RadioDetectors::new(RadioConfig::default());
        let mut o = obs(1);
        o.auth_failures = 10;
        let alerts = d.observe(&o);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::AuthFailureStorm);
    }

    #[test]
    fn rogue_association_detected() {
        let mut d = RadioDetectors::new(RadioConfig::default());
        let mut alerts = Vec::new();
        for t in 0..4 {
            let mut o = obs(t);
            o.unknown_assoc_requests = 1;
            alerts.extend(d.observe(&o));
        }
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::RogueAssociation);
    }

    #[test]
    fn single_rejoin_not_flagged() {
        // One association request (a machine legitimately rejoining after
        // a power cycle) stays under the threshold.
        let mut d = RadioDetectors::new(RadioConfig::default());
        let mut o = obs(1);
        o.unknown_assoc_requests = 1;
        assert!(d.observe(&o).is_empty());
        for t in 2..50 {
            assert!(d.observe(&obs(t)).is_empty());
        }
    }
}
