//! Response policy: mapping alerts to protective actions.
//!
//! Forestry's limited connectivity (Table I) rules out "call the SOC":
//! the response policy must be executable locally and err towards safe
//! states. The default policy embodies the paper's safety–security
//! interplay principle: attacks that can defeat a safety function demand
//! a protective (safe-stop) response, not just logging.

use crate::alert::{Alert, AlertKind, Severity};
use serde::{Deserialize, Serialize};
use silvasec_telemetry::{Event, Label, Recorder};

/// A protective action the worksite can execute autonomously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResponseAction {
    /// Log and continue.
    LogOnly,
    /// Continue the mission at reduced speed with increased sensor
    /// cross-checking.
    DegradedMode,
    /// Re-key all channels and force re-authentication of peers.
    RekeyAndReauth,
    /// Controlled stop of the affected machine until cleared.
    SafeStop,
}

impl ResponseAction {
    /// Short stable name of the action, used as a telemetry label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ResponseAction::LogOnly => "log-only",
            ResponseAction::DegradedMode => "degraded-mode",
            ResponseAction::RekeyAndReauth => "rekey-and-reauth",
            ResponseAction::SafeStop => "safe-stop",
        }
    }
}

/// A configurable alert → action policy.
#[derive(Debug, Clone)]
pub struct ResponsePolicy {
    /// Severity at or above which the policy escalates to [`ResponseAction::SafeStop`]
    /// regardless of kind.
    pub safe_stop_severity: Severity,
}

impl Default for ResponsePolicy {
    fn default() -> Self {
        ResponsePolicy {
            safe_stop_severity: Severity::Critical,
        }
    }
}

impl ResponsePolicy {
    /// Decides the action for an alert.
    #[must_use]
    pub fn decide(&self, alert: &Alert) -> ResponseAction {
        if alert.severity >= self.safe_stop_severity {
            return ResponseAction::SafeStop;
        }
        match alert.kind {
            AlertKind::SensorBlinding | AlertKind::GnssSpoofing => ResponseAction::SafeStop,
            AlertKind::Jamming | AlertKind::GnssJamming => ResponseAction::DegradedMode,
            AlertKind::DeauthFlood => ResponseAction::DegradedMode,
            AlertKind::AuthFailureStorm | AlertKind::RogueAssociation => {
                ResponseAction::RekeyAndReauth
            }
        }
    }

    /// Decides the action for an alert and records the decision as a
    /// `Response` telemetry event (stamped with the alert's time).
    #[must_use]
    pub fn decide_recorded(&self, alert: &Alert, recorder: &Recorder) -> ResponseAction {
        let action = self.decide(alert);
        recorder.record_at(
            alert.at,
            Event::Response {
                action: Label::new(action.as_str()),
            },
        );
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::time::SimTime;

    fn alert(kind: AlertKind) -> Alert {
        Alert::new(kind, "fw-01", SimTime::ZERO, "t".into())
    }

    #[test]
    fn safety_defeating_attacks_stop_the_machine() {
        let p = ResponsePolicy::default();
        assert_eq!(
            p.decide(&alert(AlertKind::SensorBlinding)),
            ResponseAction::SafeStop
        );
        assert_eq!(
            p.decide(&alert(AlertKind::GnssSpoofing)),
            ResponseAction::SafeStop
        );
    }

    #[test]
    fn availability_attacks_degrade() {
        let p = ResponsePolicy::default();
        assert_eq!(
            p.decide(&alert(AlertKind::Jamming)),
            ResponseAction::DegradedMode
        );
        assert_eq!(
            p.decide(&alert(AlertKind::DeauthFlood)),
            ResponseAction::DegradedMode
        );
        assert_eq!(
            p.decide(&alert(AlertKind::GnssJamming)),
            ResponseAction::DegradedMode
        );
    }

    #[test]
    fn auth_failures_trigger_rekey() {
        let p = ResponsePolicy::default();
        assert_eq!(
            p.decide(&alert(AlertKind::AuthFailureStorm)),
            ResponseAction::RekeyAndReauth
        );
    }

    #[test]
    fn severity_override_escalates() {
        let p = ResponsePolicy {
            safe_stop_severity: Severity::High,
        };
        // Jamming is High by default → escalated to SafeStop.
        assert_eq!(
            p.decide(&alert(AlertKind::Jamming)),
            ResponseAction::SafeStop
        );
    }

    #[test]
    fn action_ordering_reflects_escalation() {
        assert!(ResponseAction::LogOnly < ResponseAction::DegradedMode);
        assert!(ResponseAction::DegradedMode < ResponseAction::RekeyAndReauth);
        assert!(ResponseAction::RekeyAndReauth < ResponseAction::SafeStop);
    }
}
