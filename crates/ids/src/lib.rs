//! Intrusion detection for the forestry worksite.
//!
//! The paper's Table I calls for remote-monitoring security and threat
//! profiles; its survey (Sec. IV-C) enumerates the concrete attack
//! classes — de-auth floods, RF jamming, GNSS spoofing/jamming, camera
//! attacks. This crate is the detection side of that catalog: a set of
//! lightweight detectors over the telemetry the worksite already produces
//! (radio link statistics, navigation cross-checks, sensor health), plus
//! alert correlation and response policies. Forestry's "remote and
//! isolated locations" characteristic means everything runs *inside* the
//! worksite — there is no cloud SOC to stream events to.
//!
//! * [`alert`] — alert and incident types.
//! * [`radio`] — de-auth flood, jamming and auth-failure detectors.
//! * [`nav`] — the GNSS/odometry consistency monitor.
//! * [`sensor_health`] — detection-rate collapse (camera blinding).
//! * [`correlate`] — alert deduplication and incident formation.
//! * [`response`] — alert → response-action policy.
//!
//! # Example
//!
//! ```
//! use silvasec_ids::prelude::*;
//! use silvasec_sim::time::SimTime;
//!
//! let mut ids = WorksiteIds::new(IdsConfig::default());
//! // A burst of de-auth frames within one window trips the detector.
//! let mut alerts = Vec::new();
//! for i in 0..10 {
//!     alerts.extend(ids.observe_radio(&RadioObservation {
//!         node_label: "forwarder-01".into(),
//!         at: SimTime::from_millis(100 * i),
//!         noise_dbm: Some(-94.0),
//!         delivery_ratio: 1.0,
//!         deauth_frames: 3,
//!         auth_failures: 0,
//!         unknown_assoc_requests: 0,
//!     }));
//! }
//! assert!(alerts.iter().any(|a| a.kind == AlertKind::DeauthFlood));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod correlate;
pub mod nav;
pub mod radio;
pub mod response;
pub mod sensor_health;

pub use alert::{Alert, AlertKind, Severity};
pub use correlate::{AlertCorrelator, Incident};
pub use response::{ResponseAction, ResponsePolicy};

use nav::{NavConsistencyMonitor, NavObservation};
use radio::{RadioDetectors, RadioObservation};
use sensor_health::{SensorHealthMonitor, SensorObservation};
use silvasec_telemetry::{Event, Label, Recorder};
use std::collections::HashMap;

/// Tuning for all detectors.
#[derive(Debug, Clone, Default)]
pub struct IdsConfig {
    /// Radio-detector tuning.
    pub radio: radio::RadioConfig,
    /// Navigation-monitor tuning.
    pub nav: nav::NavConfig,
    /// Sensor-health tuning.
    pub sensor: sensor_health::SensorHealthConfig,
}

/// The worksite IDS: per-entity detector instances behind one facade.
///
/// Detector maps are keyed by [`Label`] (fixed-capacity, `Copy`), so
/// routing an observation to its detector on the steady-state tick path
/// never allocates.
#[derive(Debug, Default)]
pub struct WorksiteIds {
    config: IdsConfig,
    radio: HashMap<Label, RadioDetectors>,
    nav: HashMap<Label, NavConsistencyMonitor>,
    sensor: HashMap<Label, SensorHealthMonitor>,
    alerts_raised: u64,
    recorder: Recorder,
}

impl WorksiteIds {
    /// Creates an IDS with the given tuning.
    #[must_use]
    pub fn new(config: IdsConfig) -> Self {
        WorksiteIds {
            config,
            ..WorksiteIds::default()
        }
    }

    /// Attaches a telemetry recorder; every raised alert is then
    /// mirrored as an `IdsAlert` event.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Feeds one radio telemetry observation; returns any new alerts.
    pub fn observe_radio(&mut self, obs: &RadioObservation) -> Vec<Alert> {
        let detector = self
            .radio
            .entry(obs.node_label)
            .or_insert_with(|| RadioDetectors::new(self.config.radio.clone()));
        let alerts = detector.observe(obs);
        self.account(&alerts);
        alerts
    }

    /// Feeds one navigation observation; returns any new alerts.
    pub fn observe_nav(&mut self, obs: &NavObservation) -> Vec<Alert> {
        let monitor = self
            .nav
            .entry(obs.machine_label)
            .or_insert_with(|| NavConsistencyMonitor::new(self.config.nav.clone()));
        let alerts = monitor.observe(obs);
        self.account(&alerts);
        alerts
    }

    /// Feeds one sensor-health observation; returns any new alerts.
    pub fn observe_sensor(&mut self, obs: &SensorObservation) -> Vec<Alert> {
        let monitor = self
            .sensor
            .entry(obs.sensor_label)
            .or_insert_with(|| SensorHealthMonitor::new(self.config.sensor.clone()));
        let alerts = monitor.observe(obs);
        self.account(&alerts);
        alerts
    }

    fn account(&mut self, alerts: &[Alert]) {
        self.alerts_raised += alerts.len() as u64;
        for alert in alerts {
            self.recorder.record_at(
                alert.at,
                Event::IdsAlert {
                    class: Label::new(alert.kind.as_str()),
                    severity: Label::new(alert.severity.as_str()),
                },
            );
        }
    }

    /// Total alerts raised since construction.
    #[must_use]
    pub fn alerts_raised(&self) -> u64 {
        self.alerts_raised
    }
}

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::alert::{Alert, AlertKind, Severity};
    pub use crate::correlate::{AlertCorrelator, Incident};
    pub use crate::nav::{NavConfig, NavObservation};
    pub use crate::radio::{RadioConfig, RadioObservation};
    pub use crate::response::{ResponseAction, ResponsePolicy};
    pub use crate::sensor_health::{SensorHealthConfig, SensorObservation};
    pub use crate::{IdsConfig, WorksiteIds};
}
