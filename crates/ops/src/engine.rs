//! The ops engine: queue + workflow + run store + gates, speaking to
//! the host in commands.
//!
//! The engine deliberately knows nothing about the fleet: containment
//! and remediation are expressed as [`OpsCommand`]s returned from
//! [`OpsEngine::tick`] (and from [`OpsEngine::complete`], which may
//! unblock the next step of a workflow). The host — the fleet layer,
//! or a synthetic harness in `exp13_ops` — executes each command
//! against real subsystems and reports the outcome via
//! [`OpsEngine::complete`]. This keeps the dependency arrow pointing
//! `fleet → ops` and makes the engine testable against a scripted
//! executor.
//!
//! # Pump loop
//!
//! ```text
//! let mut cmds = engine.tick(now);
//! while let Some(cmd) = cmds.pop() {
//!     let ok = host_execute(&cmd);
//!     cmds.extend(engine.complete(cmd.id, ok, now));
//! }
//! ```
//!
//! # Failure discipline
//!
//! A failed command fails the step's current attempt; the Silas ladder
//! ([`crate::workflow::LadderPolicy`]) decides retry / consult /
//! re-plan / escalate, and the queue's nack backoff provides the
//! deterministic inter-attempt delay. A workflow that stalls without
//! failing (the host never completes a command) is caught by lease
//! expiry and redelivered; a run that exhausts its delivery budget is
//! dead-lettered. Every one of those paths is a recorded `Ops*` event,
//! so the whole cascade replays from the trace.

use crate::gate::{GateDecision, GatePolicy};
use crate::incident::{Incident, FLEET_SITE};
use crate::queue::{DurableQueue, QueueConfig, QueueCounters};
use crate::run_store::{OpenOutcome, RunStore, Transition};
use crate::workflow::{LadderAction, LadderPolicy, Step};
use silvasec_ids::alert::Severity;
use silvasec_sim::SimTime;
use silvasec_telemetry::{Event, Label, Recorder};
use std::collections::BTreeMap;

/// Engine tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpsConfig {
    /// Durable-queue tuning.
    pub queue: QueueConfig,
    /// Failure-ladder tuning.
    pub ladder: LadderPolicy,
    /// Review-gate policy.
    pub gate: GatePolicy,
    /// Leases granted per [`OpsEngine::tick`] call — bounds per-tick
    /// work so a 10k-incident backlog drains over ticks, not in one.
    pub max_leases_per_tick: u32,
    /// Seed keying the queue's deterministic backoff jitter.
    pub seed: u64,
}

impl Default for OpsConfig {
    fn default() -> Self {
        OpsConfig {
            queue: QueueConfig::default(),
            ladder: LadderPolicy::default(),
            gate: GatePolicy::default(),
            max_leases_per_tick: 64,
            seed: 0,
        }
    }
}

/// What the host is asked to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Containment: stop draining `site`'s alerts into the SIEM and
    /// hold its traffic.
    QuarantineSite {
        /// Site to quarantine.
        site: u32,
    },
    /// Containment: quarantine every site currently reporting `class`.
    QuarantineReporting {
        /// Alert class whose reporters are quarantined.
        class: String,
    },
    /// Containment: revoke the fleet's update-signing certificate and
    /// publish a CRL (for campaigns implying signer compromise).
    RevokeSigner,
    /// Containment: halt any staged rollout in progress.
    HaltRollout,
    /// Remediation: push a fixed firmware version through the staged
    /// rollout machinery.
    OtaRollout,
    /// Verification: report whether the SIEM has been quiet for
    /// `class` since `since_ms`.
    CheckQuiet {
        /// Alert class to re-check.
        class: String,
        /// Start of the quiet window (remediation completion).
        since_ms: u64,
    },
    /// Notification (fire-and-forget, no completion expected): the run
    /// closed verified, the host may lower continuous risk for `class`.
    MitigateRisk {
        /// Alert class whose risk is mitigated.
        class: String,
    },
}

/// One command issued to the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpsCommand {
    /// Completion handle for [`OpsEngine::complete`].
    pub id: u64,
    /// Run the command belongs to.
    pub run: u64,
    /// What to do.
    pub action: Action,
}

/// The response plan triage derives for a run.
#[derive(Debug, Clone)]
struct Plan {
    contain: Vec<Action>,
}

fn derive_plan(class: &str, site: u32) -> Plan {
    let mut contain = Vec::new();
    if site == FLEET_SITE {
        contain.push(Action::HaltRollout);
        contain.push(Action::QuarantineReporting {
            class: class.to_string(),
        });
        if class == "auth-failure-storm" {
            // A fleet-wide storm of cryptographic failures implies the
            // update-signing key may be talking to impostors: revoke it.
            contain.push(Action::RevokeSigner);
        }
    } else {
        contain.push(Action::QuarantineSite { site });
    }
    Plan { contain }
}

fn widen_plan(plan: &mut Plan, class: &str, site: u32) {
    let fallback = if site == FLEET_SITE {
        Action::RevokeSigner
    } else {
        Action::QuarantineReporting {
            class: class.to_string(),
        }
    };
    if !plan.contain.contains(&fallback) {
        plan.contain.push(fallback);
    }
}

/// Per-run live control state (the run store holds the durable state;
/// this is the engine's working memory and is reconstructible from the
/// store record).
#[derive(Debug)]
struct RunCtl {
    step: Step,
    attempt: u32,
    class: String,
    severity: Severity,
    site: u32,
    plan: Plan,
    consulted: bool,
    replanned: bool,
    /// Outstanding command ids for the current attempt.
    pending: Vec<u64>,
    /// Whether any command of the current attempt failed.
    failed: bool,
    awaiting_review: bool,
    review_deadline: u64,
    remediated_at_ms: u64,
}

/// The deterministic incident-response engine.
#[derive(Debug)]
pub struct OpsEngine {
    config: OpsConfig,
    queue: DurableQueue,
    store: RunStore,
    recorder: Recorder,
    ctl: BTreeMap<u64, RunCtl>,
    /// Outstanding command id → owning run.
    outstanding: BTreeMap<u64, u64>,
    next_cmd: u64,
}

impl OpsEngine {
    /// Creates an engine recording its audit trail into `recorder`.
    #[must_use]
    pub fn new(config: OpsConfig, recorder: Recorder) -> Self {
        OpsEngine {
            queue: DurableQueue::new(config.queue, config.seed),
            store: RunStore::new(),
            recorder,
            config,
            ctl: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            next_cmd: 0,
        }
    }

    fn record(&self, now_ms: u64, event: Event) {
        self.recorder.record_at(SimTime::from_millis(now_ms), event);
    }

    /// Accepts an incident: opens a run and queues it, or folds the
    /// report into the identity's open run. Returns the run id.
    pub fn enqueue_incident(&mut self, incident: &Incident, now_ms: u64) -> u64 {
        match self.store.open_or_fold(incident, now_ms) {
            OpenOutcome::Opened(run) => {
                let (site, sites) = incident.scope.flatten();
                self.record(
                    now_ms,
                    Event::OpsEnqueue {
                        run,
                        class: Label::new(&incident.class),
                        severity: Label::new(incident.severity.as_str()),
                        site,
                        sites,
                    },
                );
                let accepted = self.queue.enqueue(run, now_ms);
                debug_assert!(accepted, "fresh run already queued");
                run
            }
            OpenOutcome::Folded(run, duplicates) => {
                self.record(now_ms, Event::OpsDedup { run, duplicates });
                run
            }
        }
    }

    /// Advances the engine: expires leases (redelivery / dead-letter),
    /// times out stale reviews, grants new leases and drives the leased
    /// workflows until each blocks. Returns the commands the host must
    /// execute (see the module docs for the pump loop).
    pub fn tick(&mut self, now_ms: u64) -> Vec<OpsCommand> {
        let mut out = Vec::new();
        let qt = self.queue.tick(now_ms);
        for &(run, deliveries) in &qt.dead {
            self.record(now_ms, Event::OpsDeadLetter { run, deliveries });
            self.store.record_dead_letter(run, deliveries);
            self.forget(run);
        }
        for &(run, _) in &qt.expired {
            // The abandoned attempt's commands can no longer complete.
            self.outstanding.retain(|_, &mut owner| owner != run);
            if let Some(ctl) = self.ctl.get_mut(&run) {
                ctl.pending.clear();
                ctl.failed = false;
                ctl.awaiting_review = false;
            }
        }
        // Review timeouts: nobody answered the gate — escalate.
        let timed_out: Vec<u64> = self
            .ctl
            .iter()
            .filter(|(_, c)| c.awaiting_review && c.review_deadline <= now_ms)
            .map(|(&run, _)| run)
            .collect();
        for run in timed_out {
            self.record(
                now_ms,
                Event::OpsGate {
                    run,
                    decision: Label::new("timeout"),
                    auto: true,
                },
            );
            self.store.record_gate(run, "timeout", true);
            let attempt = self.ctl[&run].attempt;
            self.transit(run, now_ms, Step::Gate, Step::Escalate, attempt, false);
        }
        for _ in 0..self.config.max_leases_per_tick {
            let Some((run, delivery)) = self.queue.lease(now_ms) else {
                break;
            };
            self.record(now_ms, Event::OpsLease { run, delivery });
            self.store.record_lease(run, delivery);
            self.ensure_ctl(run);
            self.drive(run, now_ms, &mut out);
        }
        out
    }

    /// Reports a command outcome. Returns follow-on commands (the next
    /// step's actions when this completion finished a step). Stale
    /// completions — the command's lease expired or its run settled —
    /// are ignored and return no commands.
    pub fn complete(&mut self, cmd_id: u64, ok: bool, now_ms: u64) -> Vec<OpsCommand> {
        let mut out = Vec::new();
        let Some(run) = self.outstanding.remove(&cmd_id) else {
            return out;
        };
        let Some(ctl) = self.ctl.get_mut(&run) else {
            return out;
        };
        ctl.pending.retain(|&id| id != cmd_id);
        if !ok {
            ctl.failed = true;
        }
        if !ctl.pending.is_empty() {
            return out;
        }
        // Progress resets the abandonment clock.
        self.queue
            .extend_until(run, now_ms + self.config.queue.visibility_timeout_ms);
        let ctl = self.ctl.get_mut(&run).expect("ctl checked above");
        let (step, attempt, failed) = (ctl.step, ctl.attempt, ctl.failed);
        ctl.failed = false;
        if failed {
            self.fail_step(run, now_ms, step, attempt);
            return out;
        }
        match step {
            Step::Contain => {
                self.transit(run, now_ms, Step::Contain, Step::Gate, attempt, true);
                if !self.settled(run) {
                    self.ctl.get_mut(&run).expect("live run").attempt = 1;
                    self.drive(run, now_ms, &mut out);
                }
            }
            Step::Remediate => {
                self.ctl.get_mut(&run).expect("live run").remediated_at_ms = now_ms;
                self.transit(run, now_ms, Step::Remediate, Step::Verify, attempt, true);
                self.ctl.get_mut(&run).expect("live run").attempt = 1;
                self.drive(run, now_ms, &mut out);
            }
            Step::Verify => {
                let class = self.ctl[&run].class.clone();
                self.transit(run, now_ms, Step::Verify, Step::Close, attempt, true);
                // Fire-and-forget: no outstanding entry, no completion.
                let id = self.next_cmd;
                self.next_cmd += 1;
                out.push(OpsCommand {
                    id,
                    run,
                    action: Action::MitigateRisk { class },
                });
            }
            other => unreachable!("completion in non-command step {}", other.as_str()),
        }
        out
    }

    /// Delivers an explicit reviewer verdict for a run awaiting its
    /// gate. Returns follow-on commands (remediation on approve).
    /// Ignored (empty) when the run is not awaiting review.
    pub fn review(&mut self, run: u64, decision: GateDecision, now_ms: u64) -> Vec<OpsCommand> {
        let mut out = Vec::new();
        let Some(ctl) = self.ctl.get_mut(&run) else {
            return out;
        };
        if !ctl.awaiting_review {
            return out;
        }
        ctl.awaiting_review = false;
        let attempt = ctl.attempt;
        self.record(
            now_ms,
            Event::OpsGate {
                run,
                decision: Label::new(decision.as_str()),
                auto: false,
            },
        );
        self.store.record_gate(run, decision.as_str(), false);
        match decision {
            GateDecision::Approve => {
                self.transit(run, now_ms, Step::Gate, Step::Remediate, attempt, true);
                self.ctl.get_mut(&run).expect("live run").attempt = 1;
                self.drive(run, now_ms, &mut out);
            }
            GateDecision::Reject => {
                self.transit(run, now_ms, Step::Gate, Step::Escalate, attempt, true);
            }
        }
        out
    }

    /// Runs currently blocked on an explicit review, in run-id order.
    #[must_use]
    pub fn pending_reviews(&self) -> Vec<u64> {
        self.ctl
            .iter()
            .filter(|(_, c)| c.awaiting_review)
            .map(|(&run, _)| run)
            .collect()
    }

    /// `true` when no work remains: the queue holds nothing and every
    /// opened run has settled.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.queue.ready_len() == 0 && self.queue.in_flight_len() == 0 && self.ctl.is_empty()
    }

    /// The audit-trail run store.
    #[must_use]
    pub fn store(&self) -> &RunStore {
        &self.store
    }

    /// Queue accounting counters.
    #[must_use]
    pub fn queue_counters(&self) -> QueueCounters {
        self.queue.counters()
    }

    /// The queue's conservation invariant (see
    /// [`DurableQueue::conserves`]).
    #[must_use]
    pub fn queue_conserves(&self) -> bool {
        self.queue.conserves()
    }

    // -- internals ----------------------------------------------------

    fn ensure_ctl(&mut self, run: u64) {
        if self.ctl.contains_key(&run) {
            return;
        }
        // Rebuild working memory from the durable record (first lease,
        // or an engine that lost its state between leases).
        let record = self.store.run(run).expect("leased run recorded");
        let severity =
            Severity::from_str_name(&record.severity).expect("store severities are canonical");
        self.ctl.insert(
            run,
            RunCtl {
                step: record.state,
                attempt: 1,
                class: record.class.clone(),
                severity,
                site: record.site,
                plan: derive_plan(&record.class, record.site),
                consulted: false,
                replanned: false,
                pending: Vec::new(),
                failed: false,
                awaiting_review: false,
                review_deadline: 0,
                remediated_at_ms: record.opened_at_ms,
            },
        );
    }

    /// Drives `run` from its current step until it blocks on commands,
    /// a review, or settles.
    fn drive(&mut self, run: u64, now_ms: u64, out: &mut Vec<OpsCommand>) {
        loop {
            let Some(ctl) = self.ctl.get(&run) else {
                return; // settled
            };
            if !ctl.pending.is_empty() || ctl.awaiting_review {
                return; // blocked
            }
            match ctl.step {
                Step::Triage => {
                    let attempt = ctl.attempt;
                    if ctl.severity == Severity::Low {
                        // Informational: log-only, no automated response.
                        self.transit(run, now_ms, Step::Triage, Step::Reject, attempt, true);
                        return;
                    }
                    self.transit(run, now_ms, Step::Triage, Step::Contain, attempt, true);
                    if self.settled(run) {
                        return;
                    }
                    self.ctl.get_mut(&run).expect("live run").attempt = 1;
                }
                Step::Contain => {
                    let actions = self.ctl[&run].plan.contain.clone();
                    self.issue(run, now_ms, actions, out);
                    return;
                }
                Step::Gate => {
                    let severity = ctl.severity;
                    let attempt = ctl.attempt;
                    match self.config.gate.auto_decision(severity) {
                        Some(decision) => {
                            self.record(
                                now_ms,
                                Event::OpsGate {
                                    run,
                                    decision: Label::new(decision.as_str()),
                                    auto: true,
                                },
                            );
                            self.store.record_gate(run, decision.as_str(), true);
                            match decision {
                                GateDecision::Approve => {
                                    self.transit(
                                        run,
                                        now_ms,
                                        Step::Gate,
                                        Step::Remediate,
                                        attempt,
                                        true,
                                    );
                                    if self.settled(run) {
                                        return;
                                    }
                                    self.ctl.get_mut(&run).expect("live run").attempt = 1;
                                }
                                GateDecision::Reject => {
                                    self.transit(
                                        run,
                                        now_ms,
                                        Step::Gate,
                                        Step::Escalate,
                                        attempt,
                                        true,
                                    );
                                    return;
                                }
                            }
                        }
                        None => {
                            let ctl = self.ctl.get_mut(&run).expect("live run");
                            ctl.awaiting_review = true;
                            ctl.review_deadline = now_ms + self.config.gate.review_timeout_ms;
                            let deadline = ctl.review_deadline;
                            // Hold the lease across the whole review
                            // window so the gate, not the queue, owns
                            // the timeout.
                            self.queue.extend_until(
                                run,
                                deadline + self.config.queue.visibility_timeout_ms,
                            );
                            return;
                        }
                    }
                }
                Step::Remediate => {
                    self.issue(run, now_ms, vec![Action::OtaRollout], out);
                    return;
                }
                Step::Verify => {
                    let class = ctl.class.clone();
                    let since_ms = ctl.remediated_at_ms;
                    self.issue(
                        run,
                        now_ms,
                        vec![Action::CheckQuiet { class, since_ms }],
                        out,
                    );
                    return;
                }
                terminal => unreachable!("driving terminal step {}", terminal.as_str()),
            }
        }
    }

    /// Issues one attempt's commands and blocks the run on them.
    fn issue(&mut self, run: u64, now_ms: u64, actions: Vec<Action>, out: &mut Vec<OpsCommand>) {
        debug_assert!(!actions.is_empty(), "steps always have actions");
        let ctl = self.ctl.get_mut(&run).expect("live run");
        for action in actions {
            let id = self.next_cmd;
            self.next_cmd += 1;
            ctl.pending.push(id);
            self.outstanding.insert(id, run);
            out.push(OpsCommand { id, run, action });
        }
        self.queue
            .extend_until(run, now_ms + self.config.queue.visibility_timeout_ms);
    }

    /// Handles a failed step attempt: climbs the ladder, records the
    /// matching transition, and either re-queues the run (retry /
    /// consult / re-plan, with the queue's nack backoff as the
    /// deterministic delay) or escalates / dead-letters it.
    fn fail_step(&mut self, run: u64, now_ms: u64, step: Step, attempt: u32) {
        let ctl = self.ctl.get(&run).expect("live run");
        let mut action = self.config.ladder.on_failure(attempt);
        // Each advisory rung is taken at most once per run; a rung
        // already spent falls through to the next.
        if action == LadderAction::Consult && ctl.consulted {
            action = if self.config.ladder.allow_replan && !ctl.replanned {
                LadderAction::Replan
            } else {
                LadderAction::Escalate
            };
        }
        if action == LadderAction::Replan && ctl.replanned {
            action = LadderAction::Escalate;
        }
        match action {
            LadderAction::Retry | LadderAction::Consult => {
                self.transit(run, now_ms, step, step, attempt, false);
                if self.settled(run) {
                    return;
                }
                let ctl = self.ctl.get_mut(&run).expect("live run");
                ctl.attempt += 1;
                if action == LadderAction::Consult {
                    // Consult = re-derive the plan from current state.
                    ctl.consulted = true;
                    ctl.plan = derive_plan(&ctl.class.clone(), ctl.site);
                }
                self.requeue(run, now_ms);
            }
            LadderAction::Replan => {
                if step == Step::Verify {
                    // Verification keeps failing: the fix did not take.
                    // Fall back to remediation with a widened plan.
                    self.transit(run, now_ms, Step::Verify, Step::Remediate, attempt, false);
                    if self.settled(run) {
                        return;
                    }
                    let ctl = self.ctl.get_mut(&run).expect("live run");
                    ctl.replanned = true;
                    ctl.attempt = 1;
                    let (class, site) = (ctl.class.clone(), ctl.site);
                    widen_plan(&mut ctl.plan, &class, site);
                    self.requeue(run, now_ms);
                } else {
                    self.transit(run, now_ms, step, step, attempt, false);
                    if self.settled(run) {
                        return;
                    }
                    let ctl = self.ctl.get_mut(&run).expect("live run");
                    ctl.replanned = true;
                    ctl.attempt += 1;
                    let (class, site) = (ctl.class.clone(), ctl.site);
                    widen_plan(&mut ctl.plan, &class, site);
                    self.requeue(run, now_ms);
                }
            }
            LadderAction::Escalate => {
                self.transit(run, now_ms, step, Step::Escalate, attempt, false);
            }
        }
    }

    /// Nacks the run back to the queue for a backed-off redelivery;
    /// dead-letters it when the delivery budget is spent.
    fn requeue(&mut self, run: u64, now_ms: u64) {
        if !self.queue.nack(run, now_ms) {
            let deliveries = self
                .queue
                .dead_letters()
                .iter()
                .find(|&&(r, _)| r == run)
                .map_or(0, |&(_, d)| d);
            self.record(now_ms, Event::OpsDeadLetter { run, deliveries });
            self.store.record_dead_letter(run, deliveries);
            self.forget(run);
        }
    }

    /// Commits a transition to the store and the trace; settles the run
    /// when the transition is terminal.
    fn transit(&mut self, run: u64, now_ms: u64, from: Step, to: Step, attempt: u32, ok: bool) {
        self.record(
            now_ms,
            Event::OpsStep {
                run,
                from: Label::new(from.as_str()),
                to: Label::new(to.as_str()),
                attempt,
                ok,
            },
        );
        self.store.record_transition(
            run,
            Transition {
                at_ms: now_ms,
                from,
                to,
                attempt,
                ok,
            },
        );
        if to.is_terminal() {
            self.queue.ack(run);
            self.forget(run);
        } else if let Some(ctl) = self.ctl.get_mut(&run) {
            ctl.step = to;
        }
    }

    /// `true` when the run no longer has live control state.
    fn settled(&self, run: u64) -> bool {
        !self.ctl.contains_key(&run)
    }

    /// Drops all live state for a settled or dead-lettered run.
    fn forget(&mut self, run: u64) {
        self.ctl.remove(&run);
        self.outstanding.retain(|_, &mut owner| owner != run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::IncidentScope;
    use silvasec_telemetry::EventFilter;

    fn incident(class: &str, severity: Severity, scope: IncidentScope) -> Incident {
        Incident {
            class: class.to_string(),
            severity,
            scope,
            detected_at_ms: 0,
        }
    }

    struct Harness {
        engine: OpsEngine,
        recorder: Recorder,
        sub: silvasec_telemetry::SubscriberId,
        now: u64,
    }

    impl Harness {
        fn new(config: OpsConfig) -> Self {
            let recorder = Recorder::new();
            let sub = recorder.subscribe_filtered("ops", 1 << 16, EventFilter::security());
            Harness {
                engine: OpsEngine::new(config, recorder.clone()),
                recorder,
                sub,
                now: 0,
            }
        }

        /// Ticks once and completes every command with `verdict(action)`.
        fn pump(&mut self, verdict: &mut dyn FnMut(&Action) -> bool) {
            let mut cmds = self.engine.tick(self.now);
            while let Some(cmd) = cmds.pop() {
                if matches!(cmd.action, Action::MitigateRisk { .. }) {
                    continue;
                }
                let ok = verdict(&cmd.action);
                cmds.extend(self.engine.complete(cmd.id, ok, self.now));
            }
        }

        /// Pumps with all-succeed until idle or `max_ticks` elapse.
        fn run_to_idle(&mut self, verdict: &mut dyn FnMut(&Action) -> bool, max_ticks: u32) {
            for _ in 0..max_ticks {
                if self.engine.idle() {
                    return;
                }
                self.pump(verdict);
                self.now += 500;
            }
            panic!("engine not idle after {max_ticks} ticks");
        }

        fn trace(&self) -> String {
            self.recorder.export_jsonl(self.sub)
        }
    }

    #[test]
    fn happy_path_closes_and_replays() {
        let mut h = Harness::new(OpsConfig::default());
        let run = h.engine.enqueue_incident(
            &incident("jamming", Severity::High, IncidentScope::Site(3)),
            0,
        );
        let mut seen = Vec::new();
        h.run_to_idle(
            &mut |a| {
                seen.push(a.clone());
                true
            },
            100,
        );
        let record = h.engine.store().run(run).unwrap();
        assert_eq!(record.state, Step::Close);
        assert_eq!(record.gate, Some(("approve".to_string(), true)));
        assert!(seen.contains(&Action::QuarantineSite { site: 3 }));
        assert!(seen.contains(&Action::OtaRollout));
        assert!(seen.iter().any(|a| matches!(a, Action::CheckQuiet { .. })));
        // Replay the trace: digest-identical store.
        let replayed = RunStore::replay_from_jsonl(&h.trace()).unwrap();
        assert_eq!(replayed.digest(), h.engine.store().digest());
        assert_eq!(h.engine.store().first_divergence(&replayed), None);
        assert!(h.engine.queue_conserves());
    }

    #[test]
    fn low_severity_rejects_at_triage() {
        let mut h = Harness::new(OpsConfig::default());
        let run = h.engine.enqueue_incident(
            &incident("rogue-association", Severity::Low, IncidentScope::Site(1)),
            0,
        );
        h.run_to_idle(&mut |_| true, 10);
        assert_eq!(h.engine.store().run(run).unwrap().state, Step::Reject);
        assert_eq!(h.engine.store().counters().rejected, 1);
    }

    #[test]
    fn dedup_folds_while_open_reopens_after_close() {
        let mut h = Harness::new(OpsConfig::default());
        let inc = incident("jamming", Severity::High, IncidentScope::Site(3));
        let run = h.engine.enqueue_incident(&inc, 0);
        assert_eq!(h.engine.enqueue_incident(&inc, 10), run);
        assert_eq!(h.engine.store().run(run).unwrap().duplicates, 1);
        h.run_to_idle(&mut |_| true, 100);
        let run2 = h.engine.enqueue_incident(&inc, h.now);
        assert_ne!(run, run2);
        assert_eq!(h.engine.store().counters().opened, 2);
    }

    #[test]
    fn persistent_failure_climbs_ladder_to_escalate() {
        let config = OpsConfig {
            queue: QueueConfig {
                max_deliveries: 32, // keep dead-letter out of the way
                ..QueueConfig::default()
            },
            ..OpsConfig::default()
        };
        let mut h = Harness::new(config);
        let run = h.engine.enqueue_incident(
            &incident("jamming", Severity::High, IncidentScope::Site(3)),
            0,
        );
        // Containment always fails.
        h.run_to_idle(&mut |a| !matches!(a, Action::QuarantineSite { .. }), 500);
        let record = h.engine.store().run(run).unwrap();
        assert_eq!(record.state, Step::Escalate);
        // Ladder: 2 retries + consult + replan = 4 failed self-loops,
        // then the escalate edge.
        let self_loops = record
            .transitions
            .iter()
            .filter(|t| t.from == Step::Contain && t.to == Step::Contain && !t.ok)
            .count();
        assert_eq!(self_loops, 4);
        assert_eq!(h.engine.store().counters().escalated, 1);
        // The replan widened containment to quarantine-reporting.
        let replayed = RunStore::replay_from_jsonl(&h.trace()).unwrap();
        assert_eq!(replayed.digest(), h.engine.store().digest());
    }

    #[test]
    fn critical_fleet_incident_waits_for_review_and_reject_escalates() {
        let mut h = Harness::new(OpsConfig::default());
        let run = h.engine.enqueue_incident(
            &incident(
                "gnss-spoofing",
                Severity::Critical,
                IncidentScope::Fleet { sites: 5 },
            ),
            0,
        );
        // Pump until the gate blocks.
        for _ in 0..20 {
            h.pump(&mut |_| true);
            h.now += 500;
            if h.engine.pending_reviews() == vec![run] {
                break;
            }
        }
        assert_eq!(h.engine.pending_reviews(), vec![run]);
        assert_eq!(h.engine.store().run(run).unwrap().state, Step::Gate);
        let cmds = h.engine.review(run, GateDecision::Reject, h.now);
        assert!(cmds.is_empty());
        let record = h.engine.store().run(run).unwrap();
        assert_eq!(record.state, Step::Escalate);
        assert_eq!(record.gate, Some(("reject".to_string(), false)));
        let replayed = RunStore::replay_from_jsonl(&h.trace()).unwrap();
        assert_eq!(replayed.digest(), h.engine.store().digest());
    }

    #[test]
    fn unanswered_review_times_out_to_escalate() {
        let config = OpsConfig {
            gate: GatePolicy {
                auto_approve_max: None,
                review_timeout_ms: 3_000,
            },
            ..OpsConfig::default()
        };
        let mut h = Harness::new(config);
        let run = h.engine.enqueue_incident(
            &incident("jamming", Severity::High, IncidentScope::Site(1)),
            0,
        );
        h.run_to_idle(&mut |_| true, 100);
        let record = h.engine.store().run(run).unwrap();
        assert_eq!(record.state, Step::Escalate);
        assert_eq!(record.gate, Some(("timeout".to_string(), true)));
    }

    #[test]
    fn abandoned_commands_redeliver_and_exhaustion_dead_letters() {
        let config = OpsConfig {
            queue: QueueConfig {
                visibility_timeout_ms: 1_000,
                max_deliveries: 3,
                backoff_base_ms: 100,
                backoff_jitter_ms: 50,
            },
            ..OpsConfig::default()
        };
        let mut h = Harness::new(config);
        let run = h.engine.enqueue_incident(
            &incident("jamming", Severity::High, IncidentScope::Site(1)),
            0,
        );
        // Never complete any command: every lease expires.
        for _ in 0..200 {
            let _ = h.engine.tick(h.now);
            h.now += 500;
            if h.engine.idle() {
                break;
            }
        }
        assert!(h.engine.idle(), "dead-letter settles the run");
        let record = h.engine.store().run(run).unwrap();
        assert!(record.dead_lettered);
        assert_eq!(record.deliveries, 3);
        assert_eq!(h.engine.store().counters().dead_lettered, 1);
        assert_eq!(h.engine.queue_counters().dead_lettered, 1);
        assert!(h.engine.queue_conserves());
        let replayed = RunStore::replay_from_jsonl(&h.trace()).unwrap();
        assert_eq!(replayed.digest(), h.engine.store().digest());
    }

    #[test]
    fn failed_verify_replans_back_to_remediate() {
        let mut quiet_checks = 0u32;
        let mut h = Harness::new(OpsConfig::default());
        let run = h.engine.enqueue_incident(
            &incident("jamming", Severity::High, IncidentScope::Site(1)),
            0,
        );
        h.run_to_idle(
            &mut |a| match a {
                Action::CheckQuiet { .. } => {
                    quiet_checks += 1;
                    // Quiet only after the re-remediation.
                    quiet_checks > 4
                }
                _ => true,
            },
            2_000,
        );
        let record = h.engine.store().run(run).unwrap();
        assert_eq!(record.state, Step::Close);
        assert!(
            record
                .transitions
                .iter()
                .any(|t| t.from == Step::Verify && t.to == Step::Remediate),
            "replan edge taken"
        );
        let replayed = RunStore::replay_from_jsonl(&h.trace()).unwrap();
        assert_eq!(replayed.digest(), h.engine.store().digest());
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let run_once = || {
            let mut h = Harness::new(OpsConfig::default());
            for site in 0..10u32 {
                h.engine.enqueue_incident(
                    &incident("jamming", Severity::High, IncidentScope::Site(site)),
                    0,
                );
            }
            // Deterministic flakiness: fail quarantines on odd sites once.
            let mut h2 = 0u64;
            h.run_to_idle(
                &mut |a| {
                    h2 = h2.wrapping_add(1);
                    !matches!(a, Action::QuarantineSite { site } if site % 2 == 1 && h2 % 3 == 0)
                },
                2_000,
            );
            (h.engine.store().digest(), h.trace())
        };
        let (d1, t1) = run_once();
        let (d2, t2) = run_once();
        assert_eq!(d1, d2);
        assert_eq!(t1, t2);
    }
}
