//! The replayable run store: the audit trail of every incident run.
//!
//! Runs are keyed by a deterministic run id derived from the canonical
//! incident hash ([`crate::incident::Incident::canonical_hash`]) and an
//! occurrence index. While a run is open, further reports of the same
//! identity *fold into it* (dedup) instead of opening a second run; a
//! closed identity that recurs opens a fresh run with the next
//! occurrence index.
//!
//! # Replay contract
//!
//! Every mutation of the store is mirrored 1:1 by an `Ops*` telemetry
//! event the engine records, and [`RunStore::replay_from_jsonl`]
//! rebuilds a store from nothing but those events. The contract —
//! asserted by `exp13_ops` and `trace_compare --ops` on every CI run —
//! is `replay(trace(live)).digest() == live.digest()`: the digest
//! covers every run's metadata and every step transition, so a live
//! store and its replay cannot silently disagree about anything the
//! audit trail records. [`RunStore::first_divergence`] is the
//! debugging counterpart: the first canonical line where two stores
//! disagree.

use crate::incident::{Incident, IncidentScope, FLEET_SITE};
use crate::workflow::Step;
use silvasec_crypto::sha256;
use silvasec_telemetry::{export::parse_jsonl_records, Event};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One committed step transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Fleet milliseconds at which the transition was committed.
    pub at_ms: u64,
    /// Step transitioned from.
    pub from: Step,
    /// Step transitioned to (`from == to` records a failed attempt).
    pub to: Step,
    /// 1-based attempt number of the `from` step.
    pub attempt: u32,
    /// Whether the `from` step's action succeeded.
    pub ok: bool,
}

/// The full audit record of one incident run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Deterministic run id.
    pub run: u64,
    /// Incident alert class.
    pub class: String,
    /// Severity label the run was opened with.
    pub severity: String,
    /// Affected site ([`FLEET_SITE`] = fleet scope).
    pub site: u32,
    /// Distinct sites involved.
    pub sites: u32,
    /// When the run was opened.
    pub opened_at_ms: u64,
    /// Duplicate reports folded into this run while it was open.
    pub duplicates: u32,
    /// Highest delivery attempt the queue granted for this run.
    pub deliveries: u32,
    /// Gate verdict `(decision, auto)` once decided.
    pub gate: Option<(String, bool)>,
    /// Every committed transition, in commit order.
    pub transitions: Vec<Transition>,
    /// Current (or final) step.
    pub state: Step,
    /// Whether the queue dead-lettered this run.
    pub dead_lettered: bool,
}

/// Monotonic run accounting. `opened == closed + escalated + rejected +
/// dead_lettered` once every run has settled — the "no incident lost,
/// none handled twice" ledger `exp13_ops` asserts at 10k incidents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Runs opened.
    pub opened: u64,
    /// Runs that reached `Close`.
    pub closed: u64,
    /// Runs that reached `Escalate`.
    pub escalated: u64,
    /// Runs that reached `Reject`.
    pub rejected: u64,
    /// Runs the queue dead-lettered.
    pub dead_lettered: u64,
    /// Duplicate reports folded into open runs.
    pub duplicates_folded: u64,
    /// Queue leases recorded (first deliveries and redeliveries).
    pub leases: u64,
}

impl StoreCounters {
    /// Runs that reached a settled outcome.
    #[must_use]
    pub fn settled(&self) -> u64 {
        self.closed + self.escalated + self.rejected + self.dead_lettered
    }
}

/// Outcome of [`RunStore::open_or_fold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenOutcome {
    /// A new run was opened.
    Opened(u64),
    /// The report folded into an already-open run; the second field is
    /// the run's updated duplicate count.
    Folded(u64, u32),
}

/// The run store.
#[derive(Debug, Clone, Default)]
pub struct RunStore {
    runs: BTreeMap<u64, RunRecord>,
    /// Next occurrence index per canonical incident identity.
    occurrences: BTreeMap<u64, u32>,
    /// Canonical identity → currently-open run.
    open_by_identity: BTreeMap<u64, u64>,
    counters: StoreCounters,
}

impl RunStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        RunStore::default()
    }

    /// Opens a run for `incident`, or folds the report into the
    /// identity's already-open run.
    pub fn open_or_fold(&mut self, incident: &Incident, now_ms: u64) -> OpenOutcome {
        let canonical = incident.canonical_hash();
        if let Some(&run) = self.open_by_identity.get(&canonical) {
            let record = self.runs.get_mut(&run).expect("open run exists");
            record.duplicates += 1;
            // The recorded blast radius stays what the run was opened
            // with: the dedup telemetry event carries only the fold
            // count, so widening here would make live and replayed
            // stores disagree.
            self.counters.duplicates_folded += 1;
            return OpenOutcome::Folded(run, record.duplicates);
        }
        let occurrence = self.occurrences.entry(canonical).or_insert(0);
        let run = incident.run_id(*occurrence);
        *occurrence += 1;
        let (site, sites) = incident.scope.flatten();
        let previous = self.runs.insert(
            run,
            RunRecord {
                run,
                class: incident.class.clone(),
                severity: incident.severity.as_str().to_string(),
                site,
                sites,
                opened_at_ms: now_ms,
                duplicates: 0,
                deliveries: 0,
                gate: None,
                transitions: Vec::new(),
                state: Step::Triage,
                dead_lettered: false,
            },
        );
        assert!(previous.is_none(), "run id collision: {run:#018x}");
        self.open_by_identity.insert(canonical, run);
        self.counters.opened += 1;
        OpenOutcome::Opened(run)
    }

    /// Records a queue lease for `run`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown run.
    pub fn record_lease(&mut self, run: u64, delivery: u32) {
        let record = self.runs.get_mut(&run).expect("lease for unknown run");
        record.deliveries = record.deliveries.max(delivery);
        self.counters.leases += 1;
    }

    /// Commits a step transition.
    ///
    /// # Panics
    ///
    /// Panics on an unknown run, a `from` that does not match the run's
    /// current state, or an edge outside [`Step::can_transition`] — the
    /// store is the typed backstop for the engine.
    pub fn record_transition(&mut self, run: u64, transition: Transition) {
        let record = self.runs.get_mut(&run).expect("transition for unknown run");
        assert_eq!(
            record.state,
            transition.from,
            "run {run:#018x}: transition from {} but state is {}",
            transition.from.as_str(),
            record.state.as_str()
        );
        assert!(
            transition.from.can_transition(transition.to),
            "run {run:#018x}: invalid edge {} -> {}",
            transition.from.as_str(),
            transition.to.as_str()
        );
        record.transitions.push(transition);
        record.state = transition.to;
        if transition.to.is_terminal() {
            match transition.to {
                Step::Close => self.counters.closed += 1,
                Step::Escalate => self.counters.escalated += 1,
                Step::Reject => self.counters.rejected += 1,
                _ => unreachable!(),
            }
            self.release_identity(run);
        }
    }

    /// Records the gate verdict for `run`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown run or a second gate verdict.
    pub fn record_gate(&mut self, run: u64, decision: &str, auto: bool) {
        let record = self.runs.get_mut(&run).expect("gate for unknown run");
        assert!(record.gate.is_none(), "run {run:#018x}: gate decided twice");
        record.gate = Some((decision.to_string(), auto));
    }

    /// Records that the queue dead-lettered `run` after `deliveries`
    /// attempts.
    ///
    /// # Panics
    ///
    /// Panics on an unknown run.
    pub fn record_dead_letter(&mut self, run: u64, deliveries: u32) {
        let record = self
            .runs
            .get_mut(&run)
            .expect("dead-letter for unknown run");
        record.dead_lettered = true;
        record.deliveries = record.deliveries.max(deliveries);
        self.counters.dead_lettered += 1;
        self.release_identity(run);
    }

    /// Frees the canonical identity so a recurrence opens a new run.
    fn release_identity(&mut self, run: u64) {
        self.open_by_identity.retain(|_, &mut open| open != run);
    }

    /// The record for `run`, if any.
    #[must_use]
    pub fn run(&self, run: u64) -> Option<&RunRecord> {
        self.runs.get(&run)
    }

    /// All runs in run-id order.
    pub fn runs(&self) -> impl Iterator<Item = &RunRecord> {
        self.runs.values()
    }

    /// Number of runs in the store.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when no run has been opened.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Runs still in a non-terminal step and not dead-lettered.
    #[must_use]
    pub fn open_runs(&self) -> usize {
        self.runs
            .values()
            .filter(|r| !r.state.is_terminal() && !r.dead_lettered)
            .count()
    }

    /// Monotonic accounting counters.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// The canonical text serialization the digest and differ operate
    /// on: one `run` header line per run (run-id order) followed by one
    /// indented line per transition, every field in a fixed order.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        for record in self.runs.values() {
            let gate = match &record.gate {
                Some((decision, auto)) => {
                    format!("{decision}/{}", if *auto { "auto" } else { "review" })
                }
                None => "none".to_string(),
            };
            let _ = writeln!(
                out,
                "run {:016x} class={} severity={} site={} sites={} opened={} dupes={} deliveries={} gate={} state={} dead={}",
                record.run,
                record.class,
                record.severity,
                record.site,
                record.sites,
                record.opened_at_ms,
                record.duplicates,
                record.deliveries,
                gate,
                record.state.as_str(),
                record.dead_lettered
            );
            for t in &record.transitions {
                let _ = writeln!(
                    out,
                    "  t {} {}->{} attempt={} ok={}",
                    t.at_ms,
                    t.from.as_str(),
                    t.to.as_str(),
                    t.attempt,
                    t.ok
                );
            }
        }
        out
    }

    /// SHA-256 over [`RunStore::canonical_text`].
    #[must_use]
    pub fn digest(&self) -> [u8; 32] {
        sha256::digest(self.canonical_text().as_bytes())
    }

    /// The first canonical line where `self` and `other` disagree:
    /// `(line number, self's line, other's line)` with `"<end>"`
    /// standing in for a missing line. `None` when the stores agree.
    #[must_use]
    pub fn first_divergence(&self, other: &RunStore) -> Option<(usize, String, String)> {
        let left = self.canonical_text();
        let right = other.canonical_text();
        let mut l = left.lines();
        let mut r = right.lines();
        let mut line = 0usize;
        loop {
            line += 1;
            match (l.next(), r.next()) {
                (None, None) => return None,
                (a, b) if a == b => {}
                (a, b) => {
                    return Some((
                        line,
                        a.unwrap_or("<end>").to_string(),
                        b.unwrap_or("<end>").to_string(),
                    ))
                }
            }
        }
    }

    /// Rebuilds a store from a telemetry JSONL trace, consuming only
    /// the `Ops*` events (everything else is skipped). The result is
    /// digest-identical to the live store that produced the trace —
    /// the replay half of the determinism contract.
    ///
    /// # Errors
    ///
    /// Returns a message when the trace fails to parse or the event
    /// stream violates the run-store protocol (e.g. a transition for a
    /// run that was never enqueued).
    pub fn replay_from_jsonl(trace: &str) -> Result<RunStore, String> {
        let records = parse_jsonl_records(trace).map_err(|e| format!("trace parse: {e:?}"))?;
        let mut store = RunStore::new();
        for record in records {
            let at_ms = record.at.as_millis();
            match record.event {
                Event::OpsEnqueue {
                    run,
                    class,
                    severity,
                    site,
                    sites,
                } => {
                    let incident = Incident {
                        class: class.as_str().to_string(),
                        severity: silvasec_ids::alert::Severity::from_str_name(severity.as_str())
                            .ok_or_else(|| {
                            format!("run {run:#018x}: unknown severity {severity}")
                        })?,
                        scope: if site == FLEET_SITE {
                            IncidentScope::Fleet { sites }
                        } else {
                            IncidentScope::Site(site)
                        },
                        detected_at_ms: at_ms,
                    };
                    match store.open_or_fold(&incident, at_ms) {
                        OpenOutcome::Opened(opened) if opened == run => {}
                        other => {
                            return Err(format!("run {run:#018x}: enqueue replayed as {other:?}"))
                        }
                    }
                }
                Event::OpsDedup { run, duplicates } => {
                    let rec = store
                        .runs
                        .get_mut(&run)
                        .ok_or_else(|| format!("dedup for unknown run {run:#018x}"))?;
                    rec.duplicates = rec.duplicates.max(duplicates);
                    store.counters.duplicates_folded += 1;
                }
                Event::OpsLease { run, delivery } => {
                    if !store.runs.contains_key(&run) {
                        return Err(format!("lease for unknown run {run:#018x}"));
                    }
                    store.record_lease(run, delivery);
                }
                Event::OpsStep {
                    run,
                    from,
                    to,
                    attempt,
                    ok,
                } => {
                    let from = Step::from_str_name(from.as_str())
                        .ok_or_else(|| format!("unknown step {from}"))?;
                    let to = Step::from_str_name(to.as_str())
                        .ok_or_else(|| format!("unknown step {to}"))?;
                    if !store.runs.contains_key(&run) {
                        return Err(format!("step for unknown run {run:#018x}"));
                    }
                    store.record_transition(
                        run,
                        Transition {
                            at_ms,
                            from,
                            to,
                            attempt,
                            ok,
                        },
                    );
                }
                Event::OpsGate {
                    run,
                    decision,
                    auto,
                } => {
                    if !store.runs.contains_key(&run) {
                        return Err(format!("gate for unknown run {run:#018x}"));
                    }
                    store.record_gate(run, decision.as_str(), auto);
                }
                Event::OpsDeadLetter { run, deliveries } => {
                    if !store.runs.contains_key(&run) {
                        return Err(format!("dead-letter for unknown run {run:#018x}"));
                    }
                    store.record_dead_letter(run, deliveries);
                }
                _ => {}
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_ids::alert::Severity;

    fn incident(class: &str, site: u32) -> Incident {
        Incident {
            class: class.to_string(),
            severity: Severity::High,
            scope: IncidentScope::Site(site),
            detected_at_ms: 100,
        }
    }

    fn transition(from: Step, to: Step, at_ms: u64, ok: bool) -> Transition {
        Transition {
            at_ms,
            from,
            to,
            attempt: 1,
            ok,
        }
    }

    #[test]
    fn open_fold_and_reopen() {
        let mut store = RunStore::new();
        let inc = incident("jamming", 3);
        let OpenOutcome::Opened(run) = store.open_or_fold(&inc, 100) else {
            panic!("first report opens");
        };
        assert_eq!(store.open_or_fold(&inc, 150), OpenOutcome::Folded(run, 1));
        assert_eq!(store.open_or_fold(&inc, 160), OpenOutcome::Folded(run, 2));
        assert_eq!(store.counters().duplicates_folded, 2);
        // Close the run: the identity is free again.
        store.record_transition(run, transition(Step::Triage, Step::Reject, 200, true));
        let OpenOutcome::Opened(run2) = store.open_or_fold(&inc, 300) else {
            panic!("recurrence reopens");
        };
        assert_ne!(run, run2, "occurrence index separates the runs");
        assert_eq!(store.counters().opened, 2);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn invalid_edge_panics() {
        let mut store = RunStore::new();
        let OpenOutcome::Opened(run) = store.open_or_fold(&incident("jamming", 1), 0) else {
            panic!();
        };
        store.record_transition(run, transition(Step::Triage, Step::Verify, 10, true));
    }

    #[test]
    #[should_panic(expected = "state is")]
    fn stale_from_state_panics() {
        let mut store = RunStore::new();
        let OpenOutcome::Opened(run) = store.open_or_fold(&incident("jamming", 1), 0) else {
            panic!();
        };
        store.record_transition(run, transition(Step::Contain, Step::Gate, 10, true));
    }

    #[test]
    fn digest_and_divergence() {
        let mut a = RunStore::new();
        let mut b = RunStore::new();
        for store in [&mut a, &mut b] {
            let OpenOutcome::Opened(run) = store.open_or_fold(&incident("jamming", 1), 0) else {
                panic!();
            };
            store.record_lease(run, 1);
            store.record_transition(run, transition(Step::Triage, Step::Contain, 5, true));
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.first_divergence(&b), None);
        let run = a.runs().next().unwrap().run;
        b.record_transition(run, transition(Step::Contain, Step::Gate, 9, true));
        assert_ne!(a.digest(), b.digest());
        // The run header diverges first: it carries the current state.
        let (line, left, right) = a.first_divergence(&b).unwrap();
        assert_eq!(line, 1);
        assert!(left.contains("state=contain"), "{left}");
        assert!(right.contains("state=gate"), "{right}");
    }

    #[test]
    fn settled_ledger() {
        let mut store = RunStore::new();
        let classes = ["a", "b", "c", "d"];
        let mut runs = Vec::new();
        for class in classes {
            let OpenOutcome::Opened(run) = store.open_or_fold(&incident(class, 1), 0) else {
                panic!();
            };
            runs.push(run);
        }
        store.record_transition(runs[0], transition(Step::Triage, Step::Reject, 1, true));
        store.record_transition(runs[1], transition(Step::Triage, Step::Escalate, 1, false));
        store.record_transition(runs[2], transition(Step::Triage, Step::Contain, 1, true));
        store.record_transition(runs[2], transition(Step::Contain, Step::Gate, 2, true));
        store.record_gate(runs[2], "approve", true);
        store.record_transition(runs[2], transition(Step::Gate, Step::Remediate, 3, true));
        store.record_transition(runs[2], transition(Step::Remediate, Step::Verify, 4, true));
        store.record_transition(runs[2], transition(Step::Verify, Step::Close, 5, true));
        store.record_dead_letter(runs[3], 6);
        let c = store.counters();
        assert_eq!(c.opened, 4);
        assert_eq!(c.settled(), 4);
        assert_eq!(
            (c.closed, c.escalated, c.rejected, c.dead_lettered),
            (1, 1, 1, 1)
        );
        assert_eq!(store.open_runs(), 0);
    }
}
