//! Incident identity: what the ops engine works on and how two reports
//! of the same trouble are recognised as one incident.

use silvasec_crypto::sha256;
use silvasec_ids::alert::Severity;
use silvasec_sim::rng::hash3;

/// Sentinel site index meaning "the whole fleet", used where an
/// incident's scope is flattened to a single `u32` (telemetry events,
/// run records).
pub const FLEET_SITE: u32 = u32::MAX;

/// Domain-separation salt for run-id derivation.
const SALT_RUN: u64 = 0x0b5;

/// What part of the fleet an incident concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentScope {
    /// One worksite.
    Site(u32),
    /// A correlated fleet-level campaign.
    Fleet {
        /// Distinct sites reporting the correlated class.
        sites: u32,
    },
}

impl IncidentScope {
    /// Flattens the scope to the `(site, sites)` pair used by telemetry
    /// events and run records ([`FLEET_SITE`] marks fleet scope).
    #[must_use]
    pub fn flatten(self) -> (u32, u32) {
        match self {
            IncidentScope::Site(site) => (site, 1),
            IncidentScope::Fleet { sites } => (FLEET_SITE, sites),
        }
    }
}

/// One security incident entering the response pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Alert class ("jamming", "auth-failure-storm", ...).
    pub class: String,
    /// Severity the incident was triaged at ingest with.
    pub severity: Severity,
    /// Scope of the incident.
    pub scope: IncidentScope,
    /// Detection instant in fleet milliseconds.
    pub detected_at_ms: u64,
}

impl Incident {
    /// The canonical identity hash: two incidents with the same class
    /// and scope are *the same incident* for dedup purposes, no matter
    /// when they were detected or how severe each report was. The hash
    /// is the first eight little-endian bytes of a SHA-256 over a
    /// canonical byte encoding, so it is stable across processes and
    /// sessions.
    #[must_use]
    pub fn canonical_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.class.len() + 16);
        bytes.extend_from_slice(b"silvasec-ops-incident/1|");
        bytes.extend_from_slice(self.class.as_bytes());
        match self.scope {
            IncidentScope::Site(site) => {
                bytes.extend_from_slice(b"|site|");
                bytes.extend_from_slice(&site.to_le_bytes());
            }
            IncidentScope::Fleet { .. } => {
                // Site count is evidence strength, not identity: a
                // campaign seen on 3 sites and re-reported on 5 is one
                // campaign.
                bytes.extend_from_slice(b"|fleet");
            }
        }
        let digest = sha256::digest(&bytes);
        u64::from_le_bytes(digest[..8].try_into().expect("8-byte prefix"))
    }

    /// Derives the run id for the `occurrence`-th run opened for this
    /// identity (dedup folds concurrent reports into the open run; a
    /// *closed* identity that recurs opens a fresh run with the next
    /// occurrence index).
    #[must_use]
    pub fn run_id(&self, occurrence: u32) -> u64 {
        hash3(self.canonical_hash(), u64::from(occurrence), SALT_RUN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incident(class: &str, scope: IncidentScope) -> Incident {
        Incident {
            class: class.to_string(),
            severity: Severity::High,
            scope,
            detected_at_ms: 1_000,
        }
    }

    #[test]
    fn identity_ignores_time_severity_and_campaign_size() {
        let a = incident("jamming", IncidentScope::Fleet { sites: 3 });
        let mut b = incident("jamming", IncidentScope::Fleet { sites: 5 });
        b.severity = Severity::Low;
        b.detected_at_ms = 99_000;
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn identity_separates_class_and_scope() {
        let base = incident("jamming", IncidentScope::Site(4));
        assert_ne!(
            base.canonical_hash(),
            incident("replay", IncidentScope::Site(4)).canonical_hash()
        );
        assert_ne!(
            base.canonical_hash(),
            incident("jamming", IncidentScope::Site(5)).canonical_hash()
        );
        assert_ne!(
            base.canonical_hash(),
            incident("jamming", IncidentScope::Fleet { sites: 1 }).canonical_hash()
        );
    }

    #[test]
    fn occurrences_get_distinct_run_ids() {
        let a = incident("jamming", IncidentScope::Site(4));
        assert_ne!(a.run_id(0), a.run_id(1));
        assert_eq!(a.run_id(0), a.run_id(0));
    }

    #[test]
    fn scope_flattening() {
        assert_eq!(IncidentScope::Site(7).flatten(), (7, 1));
        assert_eq!(
            IncidentScope::Fleet { sites: 12 }.flatten(),
            (FLEET_SITE, 12)
        );
    }
}
