//! Deterministic incident-response operations for the silvasec fleet.
//!
//! The paper's CE-certification argument assumes detections are
//! *handled*: an alert that nobody triages, contains, remediates and
//! verifies is not operational evidence. This crate turns the one-shot
//! `ids::response` actions into a full incident lifecycle with an audit
//! trail that replays byte-identically from the telemetry trace:
//!
//! * [`queue`] — a durable in-sim queue: SimTime-stamped, lease-based
//!   (visibility timeout, max-delivery → dead-letter), deterministic
//!   backoff with SplitMix64 hash jitter. No wall clock, no threads —
//!   "durable" means every state change is also a telemetry event, so
//!   the queue's history is exactly reconstructible from the JSONL
//!   trace.
//! * [`workflow`] — the typed step machine `Triage → Contain → Gate →
//!   Remediate → Verify → Close` with `Escalate`/`Reject` edges and the
//!   Silas retry → consult → re-plan → escalate failure ladder.
//! * [`run_store`] — the replayable run store: runs keyed by canonical
//!   incident hash with dedup, a content digest, a
//!   `first_divergence`-style run differ, and
//!   [`run_store::RunStore::replay_from_jsonl`] which rebuilds the
//!   whole store from nothing but recorded `Ops*` events.
//! * [`gate`] — review gates between containment and remediation:
//!   severity-based auto-approve policies, explicit reviewer verdicts,
//!   and a review timeout that escalates instead of stalling.
//! * [`engine`] — [`engine::OpsEngine`] ties the above together and
//!   speaks to the host (the fleet layer, or a synthetic harness) in
//!   commands: `tick(now)` returns [`engine::OpsCommand`]s to execute,
//!   the host reports each outcome via `complete(id, ok, now)`. The
//!   engine never touches fleet types, so `fleet → ops` is the only
//!   dependency direction.
//!
//! # Determinism contract
//!
//! Given the same seed, configuration and incident arrivals, two runs
//! produce byte-identical run stores ([`run_store::RunStore::digest`])
//! and byte-identical `Ops*` telemetry JSONL; and a store replayed from
//! that JSONL is digest-identical to the live one. `exp13_ops` and
//! `trace_compare --ops` assert all three in CI.

pub mod engine;
pub mod gate;
pub mod incident;
pub mod queue;
pub mod run_store;
pub mod workflow;

pub use engine::{Action, OpsCommand, OpsConfig, OpsEngine};
pub use gate::{GateDecision, GatePolicy};
pub use incident::{Incident, IncidentScope, FLEET_SITE};
pub use queue::{DurableQueue, QueueConfig, QueueCounters};
pub use run_store::{RunRecord, RunStore, StoreCounters, Transition};
pub use workflow::{LadderAction, LadderPolicy, Step};
